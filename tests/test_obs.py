"""The observability layer: tracers, phase scopes, metrics, trace reports.

Covers the three guarantees the layer makes:

* **Null by default** — an unconfigured service carries :data:`NULL_TRACER`
  and emits nothing; attaching a recorder (even an empty, falsy one) turns
  every instrumented site on.
* **Deterministic events** — the same seed and config produce the same
  event stream, whichever process (or pool worker) ran it; merged matrix
  traces are byte-identical across ``--jobs`` values.
* **Self-contained traces** — the Fig. 14 GC breakdown re-derives from the
  trace file alone, and metrics payloads survive the persistent run cache.
"""

from __future__ import annotations

import json

import pytest

from repro.backup.approaches import make_service
from repro.backup.options import ServiceOptions
from repro.backup.driver import RotationResult
from repro.backup.service import ServiceStats
from repro.experiments import clear_cache
from repro.experiments.cache import RunCache
from repro.experiments.common import run_protocol
from repro.experiments.matrix import cells_for, run_matrix
from repro.obs.metrics import MetricsRegistry, rotation_metrics
from repro.obs.report import collect_cells, gc_breakdown
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    TraceRecorder,
    event_line,
    read_trace,
    write_trace,
)
from repro.simio.disk import DiskModel
from repro.simio.stats import IOStats


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_cache()
    yield
    clear_cache()


class TestTracerBasics:
    def test_base_tracer_is_abstract_in_spirit(self):
        with pytest.raises(NotImplementedError):
            Tracer().emit("x", sim_time=0.0)

    def test_null_tracer_is_disabled_and_silent(self):
        assert NullTracer.enabled is False
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.emit("ingest", sim_time=1.0, fields={"a": 1}) is None

    def test_services_default_to_null_tracer(self):
        for approach in ("naive", "mfdedup"):
            service = make_service(approach)
            assert service.tracer is NULL_TRACER
            assert service.disk.tracer is NULL_TRACER

    def test_empty_recorder_still_attaches(self):
        """Regression: an empty TraceRecorder is falsy (len == 0); the
        wiring must test for None, not truthiness."""
        recorder = TraceRecorder()
        assert not recorder  # the trap
        for approach in ("naive", "mfdedup"):
            service = make_service(approach, options=ServiceOptions(tracer=recorder))
            assert service.tracer is recorder
            assert service.disk.tracer is recorder

    def test_recorder_assigns_dense_sequence_ids(self):
        recorder = TraceRecorder()
        recorder.emit("a", sim_time=0.0)
        recorder.emit("b", sim_time=1.0, duration=0.5, io={"read_ops": 1})
        assert [e.seq for e in recorder.events] == [0, 1]
        assert len(recorder) == 2

    def test_recorder_feeds_metrics(self):
        metrics = MetricsRegistry()
        recorder = TraceRecorder(metrics=metrics)
        recorder.emit("container.read", sim_time=0.0, fields={"bytes": 10})
        recorder.emit("restore", sim_time=0.0, duration=2.0, io={"read_ops": 1})
        recorder.emit("restore", sim_time=2.0, duration=4.0, io={"read_ops": 1})
        assert metrics.counter("events.container.read") == 1
        assert metrics.counter("events.restore") == 2
        # Only io-carrying spans observe durations.
        assert metrics.histogram("span_seconds.container.read") is None
        assert metrics.histogram("span_seconds.restore") == {
            "count": 2,
            "sum": 6.0,
            "min": 2.0,
            "max": 4.0,
        }

    def test_event_round_trips_through_dict(self):
        event = TraceEvent(
            seq=3, name="gc.sweep", sim_time=1.5, duration=0.25,
            io={"read_ops": 2}, fields={"round_index": 0},
        )
        assert TraceEvent.from_dict(event.to_dict()) == event
        point = TraceEvent(seq=0, name="container.read", sim_time=0.0)
        assert point.to_dict().get("io") is None
        assert TraceEvent.from_dict(point.to_dict()) == point

    def test_write_read_trace_round_trip(self, tmp_path):
        recorder = TraceRecorder()
        recorder.emit("ingest", sim_time=0.0, duration=1.0,
                      io={"write_ops": 3}, fields={"backup_id": 0})
        recorder.emit("container.write", sim_time=1.0, fields={"bytes": 42})
        path = tmp_path / "trace.jsonl"
        assert write_trace(path, recorder.to_dicts()) == 2
        assert list(read_trace(path)) == recorder.to_dicts()
        # Canonical line form: sorted keys, compact separators.
        first = path.read_text().splitlines()[0]
        assert first == event_line(recorder.to_dicts()[0])
        assert json.loads(first) == recorder.to_dicts()[0]


class TestIOStatsAndPhases:
    def test_diff_subtracts_counterwise(self):
        disk = DiskModel()
        disk.read(100)
        before = disk.stats.snapshot()
        disk.read(50)
        disk.write(25)
        delta = disk.stats.diff(before)
        assert delta.read_ops == 1
        assert delta.read_bytes == 50
        assert delta.write_ops == 1
        assert delta.write_bytes == 25
        assert delta.total_seconds == pytest.approx(
            disk.stats.total_seconds - before.total_seconds
        )

    def test_diff_is_the_only_delta_primitive(self):
        stats = IOStats(read_ops=5, read_bytes=500)
        earlier = IOStats(read_ops=2, read_bytes=200)
        assert stats.diff(earlier) == IOStats(read_ops=3, read_bytes=300)
        assert not hasattr(stats, "since")  # the deprecated alias is gone

    def test_to_dict_lists_all_six_counters(self):
        data = IOStats(read_ops=1, write_ops=2).to_dict()
        assert set(data) == {
            "read_ops", "read_bytes", "read_seconds",
            "write_ops", "write_bytes", "write_seconds",
        }

    def test_phase_scope_measures_and_emits(self):
        recorder = TraceRecorder()
        disk = DiskModel(tracer=recorder)
        disk.read(10)
        start = disk.sim_time
        with disk.phase("restore") as ph:
            disk.read(100)
            ph.annotate(backup_id=7)
        assert ph.delta.read_bytes == 100
        (event,) = recorder.events
        assert event.name == "restore"
        assert event.sim_time == pytest.approx(start)
        assert event.duration == pytest.approx(ph.delta.total_seconds)
        assert event.io == ph.delta.to_dict()
        assert event.fields == {"backup_id": 7}

    def test_phase_scope_with_null_tracer_is_pure_accounting(self):
        disk = DiskModel()
        with disk.phase("ingest") as ph:
            disk.write(64)
            ph.annotate(ignored=True)
        assert ph.delta.write_bytes == 64
        assert ph.fields is None  # annotate() allocated nothing

    def test_phase_scope_suppresses_event_on_exception(self):
        recorder = TraceRecorder()
        disk = DiskModel(tracer=recorder)
        with pytest.raises(RuntimeError):
            with disk.phase("ingest"):
                disk.write(1)
                raise RuntimeError("boom")
        assert recorder.events == []


class TestMetricsRegistry:
    def test_counters_and_histograms(self):
        registry = MetricsRegistry()
        registry.count("a")
        registry.count("a", 4)
        registry.observe("h", 2.0)
        registry.observe("h", 6.0)
        assert registry.counter("a") == 5
        assert registry.counter("missing") == 0
        assert registry.histogram("h") == {"count": 2, "sum": 8.0, "min": 2.0, "max": 6.0}
        assert registry.mean("h") == 4.0
        assert registry.mean("missing") == 0.0
        assert len(registry) == 2

    def test_merge_and_round_trip(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.count("n", 1)
        left.observe("h", 1.0)
        right.count("n", 2)
        right.count("only_right", 3)
        right.observe("h", 5.0)
        left.merge(right)
        assert left.counter("n") == 3
        assert left.counter("only_right") == 3
        assert left.histogram("h") == {"count": 2, "sum": 6.0, "min": 1.0, "max": 5.0}
        again = MetricsRegistry.from_dict(json.loads(json.dumps(left.to_dict())))
        assert again.to_dict() == left.to_dict()


class TestServiceStats:
    def test_dedup_ratio_conventions(self):
        assert ServiceStats(100, 50, 50).dedup_ratio == 2.0
        assert ServiceStats(0, 0, 0).dedup_ratio == 1.0
        assert ServiceStats(100, 0, 0).dedup_ratio == float("inf")

    def test_to_dict_includes_derived_ratio(self):
        data = ServiceStats(100, 25, 25).to_dict()
        assert data["dedup_ratio"] == 4.0
        assert data["cumulative_logical_bytes"] == 100

    def test_deprecated_shims_delegate_to_stats(self):
        service = make_service("naive")
        service.ingest([])
        stats = service.stats()
        assert service.cumulative_logical_bytes == stats.cumulative_logical_bytes
        assert service.cumulative_stored_bytes == stats.cumulative_stored_bytes
        assert service.physical_bytes == stats.physical_bytes
        assert service.dedup_ratio == stats.dedup_ratio

    def test_rotation_metrics_is_pure_over_report_round_trip(self):
        result = run_protocol("gccdf", "web", "quick")
        assert result.metrics  # populated by the driver
        rebuilt = RotationResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert rebuilt.metrics == result.metrics
        # Recomputing from the round-tripped reports changes nothing.
        assert rotation_metrics(rebuilt) == rotation_metrics(result)
        assert result.metrics["counters"]["gc.rounds"] == len(result.gc_reports)
        assert result.metrics["counters"]["restore.backups"] == len(result.restore_reports)

    def test_metrics_survive_the_run_cache(self, tmp_path):
        result = run_protocol("naive", "web", "quick")
        cache = RunCache(tmp_path / "cache")
        cache.store("ab" * 32, result)
        loaded = cache.load("ab" * 32)
        assert loaded is not None
        assert loaded.metrics == result.metrics
        assert loaded.metrics["counters"]["ingest.backups"] == len(result.ingest_reports)


class TestTraceDeterminism:
    def test_same_run_same_events(self):
        streams = []
        for _ in range(2):
            clear_cache()
            recorder = TraceRecorder()
            run_protocol("gccdf", "web", "quick", use_cache=False, tracer=recorder)
            streams.append(recorder.to_dicts())
        assert streams[0] == streams[1]
        names = {event["name"] for event in streams[0]}
        assert {"ingest", "gc.mark", "gc.sweep", "restore", "container.write"} <= names

    def test_matrix_trace_identical_across_jobs(self, tmp_path):
        """The acceptance guard: --jobs 1 and --jobs 2 merge to the same bytes."""
        serial = tmp_path / "serial.jsonl"
        pooled = tmp_path / "pooled.jsonl"
        run_matrix(["fig02"], "quick", jobs=1, use_cache=False, trace_path=serial)
        clear_cache()
        run_matrix(["fig02"], "quick", jobs=2, use_cache=False, trace_path=pooled)
        assert serial.read_bytes() == pooled.read_bytes()
        headers = [e for e in read_trace(serial) if e["name"] == "cell"]
        assert len(headers) == len(cells_for(["fig02"], "quick"))

    def test_tracing_bypasses_caches_but_still_stores(self, tmp_path):
        cache_dir = tmp_path / "cache"
        warm = run_matrix(["fig02"], "quick", jobs=1, cache_dir=cache_dir)
        assert warm.executed == len(warm.outcomes)
        clear_cache()
        traced = run_matrix(
            ["fig02"], "quick", jobs=1, cache_dir=cache_dir,
            trace_path=tmp_path / "t.jsonl",
        )
        # Every cell re-executed (cached results carry no events) ...
        assert traced.executed == len(traced.outcomes)
        assert traced.disk_hits == 0 and traced.memo_hits == 0
        # ... and the trace is not headers-only.
        events = list(read_trace(tmp_path / "t.jsonl"))
        assert sum(1 for e in events if e["name"] != "cell") > 0
        assert [e["seq"] for e in events] == list(range(len(events)))


class TestTraceReport:
    def test_breakdown_from_trace_matches_gc_reports(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        run_matrix(["fig02"], "quick", jobs=1, use_cache=False, trace_path=trace)
        cells = collect_cells(read_trace(trace))
        by_key = {(c.approach, c.dataset): c for c in cells}
        for cell in cells_for(["fig02"], "quick"):
            result = run_protocol(cell.approach, cell.dataset, "quick")
            stages = by_key[(cell.approach, cell.dataset)].stages
            assert stages.mark == pytest.approx(
                sum(r.mark_seconds for r in result.gc_reports)
            )
            assert stages.sweep_write == pytest.approx(
                sum(r.sweep_write_seconds for r in result.gc_reports)
            )
        text = gc_breakdown(read_trace(trace))
        assert "GC time breakdown from trace" in text
        assert "(cpu)" not in text  # wall time never enters the trace

    def test_alias_cells_inherit_representative_totals(self):
        events = [
            {"seq": 0, "name": "cell", "sim_time": 0.0, "duration": 0.0,
             "fields": {"label": "a/web@quick", "approach": "a",
                        "dataset": "web", "scale": "quick"}},
            {"seq": 1, "name": "gc.mark", "sim_time": 0.0, "duration": 2.0,
             "fields": {}, "io": {}},
            {"seq": 2, "name": "cell", "sim_time": 0.0, "duration": 0.0,
             "fields": {"label": "a/web@quick [x=1]", "approach": "a",
                        "dataset": "web", "scale": "quick",
                        "alias_of": "a/web@quick"}},
        ]
        plain, alias = collect_cells(events)
        assert alias.alias_of == "a/web@quick"
        assert alias.stages is plain.stages
        assert alias.stages.mark == 2.0
