"""Property-based end-to-end invariants of the backup system.

The heavyweight guarantee: under *any* interleaving of ingest / delete / GC
(with either migration strategy, any packing, exact or Bloom VC table),
every live backup remains restorable with its exact chunk sequence, and the
metadata stays mutually consistent.
"""

from hypothesis import given, settings, strategies as st

from repro.backup.system import DedupBackupService
from repro.backup.verify import verify_service
from repro.config import ChunkingConfig, RetentionConfig, SystemConfig
from repro.core.gccdf import GCCDFMigration
from repro.dedup.keys import logical_fp
from repro.errors import SimulatedCrash
from repro.faults import FaultPlan, points_for, recover_service
from repro.gc.migration import NaiveMigration

from tests.conftest import refs


def make_config(vc_table: str) -> SystemConfig:
    config = SystemConfig(
        container_size=4096,
        chunking=ChunkingConfig(min_size=128, avg_size=512, max_size=1024),
        retention=RetentionConfig(retained=6, turnover=2),
        vc_table=vc_table,
    )
    config.validate()
    return config


# One operation = ingest a window of the chunk-id space, or delete+GC.
operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("ingest"),
            st.integers(min_value=0, max_value=60),  # window start
            st.integers(min_value=4, max_value=40),  # window length
        ),
        st.tuples(st.just("gc"), st.just(0), st.just(0)),
    ),
    min_size=1,
    max_size=12,
)

strategies_to_test = st.sampled_from(["naive", "gccdf", "gccdf-random", "gccdf-tree"])
vc_tables = st.sampled_from(["exact", "bloom"])


def build_service(strategy: str, vc_table: str) -> DedupBackupService:
    config = make_config(vc_table)
    if strategy == "naive":
        return DedupBackupService(config=config, migration=NaiveMigration())
    packing = {"gccdf": "greedy", "gccdf-random": "random", "gccdf-tree": "tree"}[strategy]
    return DedupBackupService(
        config=config.with_gccdf(packing=packing, segment_size=2),
        migration=GCCDFMigration(),
    )


@given(operations, strategies_to_test, vc_tables)
@settings(max_examples=60, deadline=None)
def test_live_backups_always_restorable(ops, strategy, vc_table):
    service = build_service(strategy, vc_table)
    expected: dict[int, list[bytes]] = {}

    for op, start, length in ops:
        if op == "ingest":
            stream = refs("prop", range(start, start + length))
            result = service.ingest(stream)
            expected[result.backup_id] = [r.fp for r in stream]
        else:
            service.delete_oldest(1)
            service.run_gc()

    # Every live backup restores to its exact logical chunk sequence.
    for backup_id in service.live_backup_ids():
        recipe = service.recipes.get(backup_id)
        assert [logical_fp(e.fp) for e in recipe.entries] == expected[backup_id]
        report = service.restore(backup_id)
        assert report.logical_bytes == recipe.logical_size
        # And every recipe key resolves to a live container that really
        # holds that key.
        for entry in recipe.entries:
            placement = service.index.get(entry.fp)
            container = service.store.peek(placement.container_id)
            assert entry.fp in container.fingerprints()


@given(operations, strategies_to_test)
@settings(max_examples=40, deadline=None)
def test_store_and_index_mutually_consistent(ops, strategy):
    service = build_service(strategy, "exact")
    for op, start, length in ops:
        if op == "ingest":
            service.ingest(refs("prop", range(start, start + length)))
        else:
            service.delete_oldest(1)
            service.run_gc()

    # Index placements point at live containers holding the key.
    for key, placement in service.index.items():
        assert placement.container_id in service.store
        assert key in service.store.peek(placement.container_id).fingerprints()

    # With an exact VC table, GC leaves no unreferenced keys behind after
    # the most recent collection *if* one ran with no later ingests; in
    # general the index may lead the store only via the open container, so
    # we check the weaker direction: store keys are a subset of the index.
    store_keys = set()
    for container in service.store.containers():
        store_keys.update(container.fingerprints())
    index_keys = {key for key, _ in service.index.items()}
    assert store_keys == index_keys


@given(
    operations,
    strategies_to_test,
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=1, max_value=3),
)
@settings(max_examples=50, deadline=None)
def test_injected_crash_recovery_keeps_system_consistent(
    ops, strategy, point_index, occurrence
):
    """Crash at an arbitrary armed point mid-sequence, recover in place,
    and keep executing the remaining operations: every surviving backup
    must stay restorable and the verifier must stay clean throughout."""
    points = points_for("gccdf" if strategy.startswith("gccdf") else "naive")
    plan = FaultPlan.single(points[point_index % len(points)], occurrence=occurrence)
    service = build_service(strategy, "exact")
    service.disk.faults = plan
    expected: dict[int, list[bytes]] = {}

    crashed = False
    for op, start, length in ops:
        try:
            if op == "ingest":
                stream = refs("prop", range(start, start + length))
                result = service.ingest(stream)
                expected[result.backup_id] = [r.fp for r in stream]
            else:
                service.delete_oldest(1)
                service.run_gc()
        except SimulatedCrash:
            crashed = True
            recover_service(service)
            assert verify_service(service).errors == []

    assert verify_service(service).errors == []
    assert len(service.store.journal) == 0
    for backup_id in service.live_backup_ids():
        recipe = service.recipes.get(backup_id)
        assert [logical_fp(e.fp) for e in recipe.entries] == expected[backup_id]
        report = service.restore(backup_id)
        assert report.logical_bytes == recipe.logical_size
    if not crashed:
        # The plan never fired: the armed run must match an unarmed one.
        assert plan.fired is None


@given(operations)
@settings(max_examples=30, deadline=None)
def test_gc_reclaims_identically_across_strategies(ops):
    """Naive and GCCDF sweeps must free exactly the same bytes."""
    stored = {}
    for strategy in ("naive", "gccdf"):
        service = build_service(strategy, "exact")
        for op, start, length in ops:
            if op == "ingest":
                service.ingest(refs("prop", range(start, start + length)))
            else:
                service.delete_oldest(1)
                service.run_gc()
        stored[strategy] = service.store.stored_bytes
        assert service.dedup_ratio >= 1.0
    assert stored["naive"] == stored["gccdf"]
