"""Tests for result tables and series helpers."""

import pytest

from repro.metrics.series import bucket_means, series_summary
from repro.metrics.table import Column, ResultTable, fmt_float, fmt_mib


class TestResultTable:
    def test_render_aligns_columns(self):
        table = ResultTable(
            title="T",
            columns=[Column("name", align="<"), Column("value", format=fmt_float(1))],
        )
        table.add_row("alpha", 1.0)
        table.add_row("b", 12.25)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "12.2" in text
        # All data lines have equal width.
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1

    def test_wrong_arity_rejected(self):
        table = ResultTable(title="T", columns=[Column("a"), Column("b")])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_empty_table_renders_headers(self):
        table = ResultTable(title="T", columns=[Column("a")])
        assert "a" in table.render()

    def test_fmt_mib(self):
        assert fmt_mib()(2 * 1024 * 1024) == "2.0"


class TestBucketMeans:
    def test_even_split(self):
        assert bucket_means([1, 1, 2, 2], 2) == [1.0, 2.0]

    def test_uneven_tail(self):
        assert bucket_means([1, 2, 3], 2) == [1.5, 3.0]

    def test_fewer_values_than_buckets(self):
        assert bucket_means([5.0], 4) == [5.0]

    def test_empty(self):
        assert bucket_means([], 3) == []

    def test_rejects_zero_buckets(self):
        with pytest.raises(ValueError):
            bucket_means([1.0], 0)

    def test_mean_preserved_for_uniform_buckets(self):
        values = [float(i) for i in range(100)]
        buckets = bucket_means(values, 10)
        assert sum(buckets) / len(buckets) == pytest.approx(sum(values) / 100)


class TestSeriesSummary:
    def test_odd_median(self):
        summary = series_summary([3.0, 1.0, 2.0])
        assert summary["median"] == 2.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == pytest.approx(2.0)

    def test_even_median(self):
        assert series_summary([1.0, 2.0, 3.0, 4.0])["median"] == pytest.approx(2.5)

    def test_empty(self):
        assert series_summary([]) == {"min": 0.0, "mean": 0.0, "median": 0.0, "max": 0.0}
