"""Property-based tests for chunking invariants."""

import io

from hypothesis import given, settings, strategies as st

from repro.chunking.base import chunk_stream, reassemble, split
from repro.chunking.fastcdc import FastCDC
from repro.chunking.fixed import FixedChunker
from repro.config import ChunkingConfig

CONFIG = ChunkingConfig(min_size=64, avg_size=256, max_size=1024)
CDC = FastCDC(CONFIG)

payloads = st.binary(min_size=0, max_size=20_000)


@given(payloads)
@settings(max_examples=50)
def test_fastcdc_reassembly_identity(data):
    assert reassemble(split(CDC, data)) == data


@given(payloads)
@settings(max_examples=50)
def test_fastcdc_chunk_size_bounds(data):
    chunks = list(split(CDC, data))
    for chunk in chunks[:-1]:
        assert CONFIG.min_size <= chunk.size <= CONFIG.max_size
    if chunks:
        assert 0 < chunks[-1].size <= CONFIG.max_size


@given(payloads)
@settings(max_examples=30)
def test_fastcdc_deterministic(data):
    first = [c.ref for c in split(CDC, data)]
    second = [c.ref for c in split(CDC, data)]
    assert first == second


@given(payloads, st.integers(min_value=512, max_value=8192))
@settings(max_examples=30)
def test_streamed_chunking_matches_whole_buffer(data, read_size):
    whole = [c.ref for c in split(CDC, data)]
    streamed = [c.ref for c in chunk_stream(CDC, io.BytesIO(data), read_size=read_size)]
    assert streamed == whole


@given(payloads, st.integers(min_value=1, max_value=500))
@settings(max_examples=30)
def test_fixed_chunker_identity_and_sizes(data, size):
    chunks = list(split(FixedChunker(size), data))
    assert reassemble(chunks) == data
    for chunk in chunks[:-1]:
        assert chunk.size == size


@given(payloads, st.binary(min_size=1, max_size=300))
@settings(max_examples=25)
def test_suffix_chunks_mostly_stable_under_prefix_insertion(data, prefix):
    """CDC boundary-shift resistance, property form: the chunks fully inside
    the shared suffix reappear after prepending arbitrary bytes."""
    if len(data) < 5 * CONFIG.max_size:
        return  # too small for a meaningful suffix statement
    original = {c.fp for c in split(CDC, data)}
    shifted = {c.fp for c in split(CDC, prefix + data)}
    shared = len(original & shifted) / len(original)
    assert shared > 0.5
