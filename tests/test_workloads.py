"""Tests for workload sources and dataset presets."""

import pytest

from repro.config import ChunkingConfig
from repro.errors import ConfigError
from repro.util.rng import DeterministicRng
from repro.workloads.datasets import DATASET_NAMES, dataset
from repro.workloads.sizes import ChunkSizeSampler
from repro.workloads.source import MutatingSource, MutationProfile

CHUNKING = ChunkingConfig(min_size=256, avg_size=1024, max_size=4096)


def make_source(seed=1, **profile_kwargs) -> MutatingSource:
    return MutatingSource(
        name="unit",
        chunking=CHUNKING,
        target_bytes=256 * 1024,
        file_size_mean=16 * 1024,
        profile=MutationProfile(**profile_kwargs),
        seed=seed,
    )


class TestChunkSizeSampler:
    def test_bounds(self):
        sampler = ChunkSizeSampler(CHUNKING, DeterministicRng(1))
        sizes = [sampler.sample() for _ in range(2000)]
        assert all(CHUNKING.min_size <= s <= CHUNKING.max_size for s in sizes)

    def test_mean_near_average(self):
        sampler = ChunkSizeSampler(CHUNKING, DeterministicRng(1))
        sizes = [sampler.sample() for _ in range(5000)]
        mean = sum(sizes) / len(sizes)
        assert CHUNKING.avg_size * 0.6 <= mean <= CHUNKING.avg_size * 1.4

    def test_sample_total_close(self):
        sampler = ChunkSizeSampler(CHUNKING, DeterministicRng(1))
        sizes = sampler.sample_total(100_000)
        assert abs(sum(sizes) - 100_000) <= CHUNKING.max_size


class TestMutationProfile:
    def test_validation(self):
        with pytest.raises(ConfigError):
            MutationProfile(modify_file_fraction=1.5).validate()
        with pytest.raises(ConfigError):
            MutationProfile(hotspot_probability=-0.1).validate()
        MutationProfile().validate()


class TestMutatingSource:
    def test_snapshot_determinism(self):
        a = make_source(seed=9)
        b = make_source(seed=9)
        for _ in range(3):
            assert a.snapshot() == b.snapshot()

    def test_seed_sensitivity(self):
        assert make_source(seed=1).snapshot() != make_source(seed=2).snapshot()

    def test_consecutive_snapshots_share_most_chunks(self):
        source = make_source(modify_file_fraction=0.2, modify_chunk_fraction=0.1)
        first = {r.fp for r in source.snapshot()}
        second = {r.fp for r in source.snapshot()}
        shared = len(first & second) / len(first)
        assert shared > 0.8

    def test_mutation_changes_something(self):
        source = make_source()
        first = {r.fp for r in source.snapshot()}
        second = {r.fp for r in source.snapshot()}
        assert first != second

    def test_working_set_roughly_stationary(self):
        source = make_source(create_file_fraction=0.05, delete_file_fraction=0.05)
        initial = source.working_set_bytes
        for _ in range(20):
            source.snapshot()
        assert 0.4 * initial < source.working_set_bytes < 3.0 * initial

    def test_sizes_within_chunking_bounds(self):
        source = make_source()
        for ref in source.snapshot():
            assert CHUNKING.min_size <= ref.size <= CHUNKING.max_size

    def test_snapshot_counter(self):
        source = make_source()
        source.snapshot()
        source.snapshot()
        assert source.snapshots_taken == 2

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigError):
            MutatingSource(
                name="bad",
                chunking=CHUNKING,
                target_bytes=0,
                file_size_mean=10,
                profile=MutationProfile(),
                seed=1,
            )


class TestDatasets:
    def test_registry_names(self):
        assert set(DATASET_NAMES) == {"web", "wiki", "code", "mix", "syn"}

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            dataset("tape-archive")

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_presets_yield_requested_backups(self, name):
        ds = dataset(name, scale=0.05, num_backups=8)
        backups = list(ds)
        assert len(backups) == 8
        assert all(b.chunks for b in backups)

    def test_reiteration_is_identical(self):
        ds = dataset("mix", scale=0.05, num_backups=6)
        first = [(b.source, b.chunks) for b in ds]
        second = [(b.source, b.chunks) for b in ds]
        assert first == second

    def test_seed_changes_content(self):
        a = list(dataset("web", scale=0.05, num_backups=4, seed=1))
        b = list(dataset("web", scale=0.05, num_backups=4, seed=2))
        assert a != b

    def test_sources_interleave_round_robin(self):
        ds = dataset("mix", scale=0.05, num_backups=6)
        sources = [b.source for b in ds]
        assert sources[0] != sources[1]
        assert sources[0] == sources[2]

    def test_web_is_single_source(self):
        ds = dataset("web", scale=0.05, num_backups=4)
        assert len({b.source for b in ds}) == 1

    def test_cross_source_streams_share_nothing(self):
        ds = dataset("mix", scale=0.05, num_backups=4)
        backups = list(ds)
        news = {r.fp for b in backups if "news" in b.source for r in b.chunks}
        redis = {r.fp for b in backups if "redis" in b.source for r in b.chunks}
        assert news and redis
        assert not news & redis

    def test_same_source_consecutive_rounds_share(self):
        ds = dataset("wiki", scale=0.05, num_backups=12)
        backups = list(ds)
        first = {r.fp for r in backups[0].chunks}   # source en, round 0
        later = {r.fp for r in backups[4].chunks}   # source en, round 1
        assert len(first & later) / len(first) > 0.5

    def test_logical_bytes_estimate_positive(self):
        assert dataset("syn", scale=0.05, num_backups=8).logical_bytes_estimate > 0
