"""GC edge cases and failure-mode coverage across both migration strategies."""

import pytest

from repro.backup.system import DedupBackupService
from repro.backup.verify import assert_consistent
from repro.core.gccdf import GCCDFMigration
from repro.dedup.rewriting import HARRewriting
from repro.gc.migration import NaiveMigration

from tests.conftest import refs

STRATEGIES = [
    ("naive", NaiveMigration),
    ("gccdf", GCCDFMigration),
]


@pytest.fixture(params=STRATEGIES, ids=[name for name, _ in STRATEGIES])
def service(request, tiny_config) -> DedupBackupService:
    _, strategy_cls = request.param
    return DedupBackupService(config=tiny_config, migration=strategy_cls())


class TestEmptyAndDegenerate:
    def test_gc_on_empty_system(self, service):
        report = service.run_gc()
        assert report.involved_containers == 0
        assert report.backups_purged == 0

    def test_gc_twice_in_a_row(self, service):
        first = service.ingest(refs("e", range(16)))
        service.ingest(refs("e", range(0, 16, 2)))
        service.delete_backup(first.backup_id)
        service.run_gc()
        second = service.run_gc()
        assert second.reclaimed_containers == 0
        assert_consistent(service)

    def test_delete_everything_then_gc(self, service):
        for start in (0, 8, 16):
            service.ingest(refs("e", range(start, start + 8)))
        for backup_id in list(service.live_backup_ids()):
            service.delete_backup(backup_id)
        service.run_gc()
        assert len(service.store) == 0
        assert len(service.index) == 0
        assert service.live_backup_ids() == []

    def test_reingest_after_total_deletion(self, service):
        first = service.ingest(refs("e", range(8)))
        service.delete_backup(first.backup_id)
        service.run_gc()
        again = service.ingest(refs("e", range(8)))
        report = service.restore(again.backup_id)
        assert report.logical_bytes == 8 * 512
        assert_consistent(service)

    def test_single_chunk_backup(self, service):
        result = service.ingest(refs("e", [1]))
        service.delete_backup(result.backup_id)
        service.run_gc()
        assert len(service.store) == 0


class TestInterleavedOperations:
    def test_delete_middle_backup(self, service):
        a = service.ingest(refs("e", range(8)))
        b = service.ingest(refs("e", range(4, 12)))
        c = service.ingest(refs("e", range(8, 16)))
        service.delete_backup(b.backup_id)
        service.run_gc()
        # a and c must survive intact; chunks 4..7 stay (a holds them).
        assert service.restore(a.backup_id).logical_bytes == 8 * 512
        assert service.restore(c.backup_id).logical_bytes == 8 * 512
        assert_consistent(service)

    def test_ingest_between_delete_and_gc(self, service):
        a = service.ingest(refs("e", range(8)))
        service.delete_backup(a.backup_id)
        # New backup resurrects half of the dying chunks before GC runs.
        b = service.ingest(refs("e", range(4, 12)))
        service.run_gc()
        report = service.restore(b.backup_id)
        assert report.logical_bytes == 8 * 512
        assert_consistent(service)

    def test_many_rounds_accumulate_consistently(self, service):
        for round_index in range(8):
            service.ingest(refs("e", range(round_index * 4, round_index * 4 + 16)))
            if round_index % 2 == 1:
                service.delete_oldest(1)
                service.run_gc()
        assert_consistent(service)
        for backup_id in service.live_backup_ids():
            service.restore(backup_id)


class TestRewritingPlusGC:
    def test_har_copies_reclaimed_when_unreferenced(self, tiny_config):
        """Old copies pinned only by deleted backups must be reclaimed."""
        service = DedupBackupService(config=tiny_config)
        service.pipeline.rewriting = HARRewriting(
            service.store, utilization_threshold=0.9
        )
        a = service.ingest(refs("r", range(16)))
        b = service.ingest(refs("r", [0, 1]))  # observes sparse containers
        c = service.ingest(refs("r", [0, 1]))  # rewrites copies
        stored_with_copies = service.physical_bytes
        service.delete_backup(a.backup_id)
        service.delete_backup(b.backup_id)
        service.run_gc()
        # Only c remains; it references the *rewritten* copies, so the
        # originals (and a's unique chunks) are gone.
        assert service.physical_bytes < stored_with_copies
        report = service.restore(c.backup_id)
        assert report.logical_bytes == 2 * 512
        assert_consistent(service)

    def test_dedup_against_rewritten_copy_survives_gc(self, tiny_config):
        service = DedupBackupService(config=tiny_config)
        service.pipeline.rewriting = HARRewriting(
            service.store, utilization_threshold=0.9
        )
        service.ingest(refs("r", range(16)))
        service.ingest(refs("r", [0, 1]))
        service.ingest(refs("r", [0, 1]))
        d = service.ingest(refs("r", [0, 1]))  # dedups against newest copy
        service.delete_oldest(2)
        service.run_gc()
        assert service.restore(d.backup_id).logical_bytes == 2 * 512
        assert_consistent(service)


class TestGCCDFSpecificEdges:
    def test_single_container_segment(self, tiny_config):
        config = tiny_config.with_gccdf(segment_size=1)
        service = DedupBackupService(config=config, migration=GCCDFMigration())
        first = service.ingest(refs("s", range(32)))
        service.ingest(refs("s", range(0, 32, 2)))
        service.delete_backup(first.backup_id)
        service.run_gc()
        assert_consistent(service)

    def test_huge_segment_covers_everything(self, tiny_config):
        config = tiny_config.with_gccdf(segment_size=10_000)
        service = DedupBackupService(config=config, migration=GCCDFMigration())
        first = service.ingest(refs("s", range(32)))
        service.ingest(refs("s", range(0, 32, 2)))
        service.delete_backup(first.backup_id)
        report = service.run_gc()
        assert report.reclaimed_containers > 0
        assert_consistent(service)

    def test_exact_reference_check_mode(self, tiny_config):
        config = tiny_config.with_gccdf(exact_reference_check=True)
        service = DedupBackupService(config=config, migration=GCCDFMigration())
        first = service.ingest(refs("s", range(32)))
        keep = service.ingest(refs("s", range(0, 32, 2)))
        service.delete_backup(first.backup_id)
        service.run_gc()
        assert service.restore(keep.backup_id).logical_bytes == 16 * 512
        assert_consistent(service)
