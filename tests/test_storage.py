"""Unit tests for containers, the container store, writer, and cache."""

import pytest

from repro.config import DiskConfig
from repro.errors import (
    ConfigError,
    ContainerFullError,
    ContainerSealedError,
    UnknownContainerError,
)
from repro.hashing.fingerprints import synthetic_fingerprint
from repro.model import ChunkRef
from repro.simio.disk import DiskModel
from repro.storage.cache import ContainerCache
from repro.storage.container import Container
from repro.storage.store import ContainerStore
from repro.storage.writer import ContainerWriter


def ref(i: int, size: int = 100) -> ChunkRef:
    return ChunkRef(fp=synthetic_fingerprint("t", i), size=size)


@pytest.fixture
def store() -> ContainerStore:
    return ContainerStore(capacity=1000, disk=DiskModel(DiskConfig(bandwidth=1e9)))


class TestContainer:
    def test_append_tracks_usage(self):
        container = Container(0, 1000)
        container.append(ref(1, 300))
        container.append(ref(2, 200))
        assert container.used_bytes == 500
        assert len(container) == 2
        assert container.utilization == pytest.approx(0.5)

    def test_fits_boundary(self):
        container = Container(0, 1000)
        container.append(ref(1, 900))
        assert container.fits(100)
        assert not container.fits(101)

    def test_overflow_rejected(self):
        container = Container(0, 1000)
        container.append(ref(1, 900))
        with pytest.raises(ContainerFullError):
            container.append(ref(2, 200))

    def test_sealed_rejects_appends(self):
        container = Container(0, 1000)
        container.seal()
        with pytest.raises(ContainerSealedError):
            container.append(ref(1))

    def test_payload_storage_optional(self):
        container = Container(0, 1000)
        container.append(ref(1), payload=b"abc")
        container.append(ref(2))
        assert container.payload(ref(1).fp) == b"abc"
        assert container.payload(ref(2).fp) is None

    def test_fingerprints_set(self):
        container = Container(0, 1000)
        container.append(ref(1))
        container.append(ref(2))
        assert container.fingerprints() == {ref(1).fp, ref(2).fp}

    def test_iteration_preserves_order(self):
        container = Container(0, 1000)
        entries = [ref(i) for i in range(5)]
        for entry in entries:
            container.append(entry)
        assert list(container) == entries


class TestContainerStore:
    def test_commit_charges_write_io(self, store):
        container = store.allocate()
        container.append(ref(1, 600))
        store.commit(container)
        assert store.disk.stats.write_bytes == 600
        assert store.containers_written == 1

    def test_commit_empty_container_is_noop(self, store):
        container = store.allocate()
        store.commit(container)
        assert len(store) == 0
        assert store.containers_written == 0

    def test_read_charges_container_read(self, store):
        container = store.allocate()
        container.append(ref(1, 600))
        store.commit(container)
        before = store.disk.stats.read_bytes
        store.read_container(container.container_id)
        assert store.disk.stats.read_bytes - before == 600

    def test_peek_charges_nothing(self, store):
        container = store.allocate()
        container.append(ref(1, 600))
        store.commit(container)
        before = store.disk.stats.read_bytes
        store.peek(container.container_id)
        assert store.disk.stats.read_bytes == before

    def test_ids_monotonically_increase(self, store):
        a = store.allocate()
        b = store.allocate()
        assert b.container_id == a.container_id + 1

    def test_delete_reclaims(self, store):
        container = store.allocate()
        container.append(ref(1, 600))
        store.commit(container)
        store.delete_container(container.container_id)
        assert container.container_id not in store
        assert store.stored_bytes == 0
        assert store.containers_deleted == 1

    def test_unknown_container_raises(self, store):
        with pytest.raises(UnknownContainerError):
            store.read_container(404)
        with pytest.raises(UnknownContainerError):
            store.delete_container(404)

    def test_stored_bytes_sums_live_containers(self, store):
        for i in range(3):
            container = store.allocate()
            container.append(ref(i, 100))
            store.commit(container)
        assert store.stored_bytes == 300


class TestContainerWriter:
    def test_rolls_over_when_full(self, store):
        writer = ContainerWriter(store)
        placements = [writer.append(ref(i, 400)) for i in range(5)]
        writer.flush()
        # 1000-byte capacity → 2 chunks per container.
        assert placements == [0, 0, 1, 1, 2]
        assert len(store) == 3

    def test_flush_commits_partial_container(self, store):
        writer = ContainerWriter(store)
        writer.append(ref(1, 100))
        committed = writer.flush()
        assert len(committed) == 1
        assert store.peek(committed[0]).used_bytes == 100

    def test_flush_idempotent(self, store):
        writer = ContainerWriter(store)
        writer.append(ref(1, 100))
        first = writer.flush()
        assert writer.flush() == first

    def test_commit_hook_invoked_per_seal(self, store):
        sealed = []
        writer = ContainerWriter(store, on_commit=lambda c: sealed.append(c.container_id))
        for i in range(5):
            writer.append(ref(i, 400))
        writer.flush()
        assert sealed == [0, 1, 2]

    def test_open_container_id_visible(self, store):
        writer = ContainerWriter(store)
        assert writer.open_container_id is None
        writer.append(ref(1, 100))
        assert writer.open_container_id == 0


class TestContainerCache:
    def _committed(self, store, n):
        ids = []
        for i in range(n):
            container = store.allocate()
            container.append(ref(i, 500))
            store.commit(container)
            ids.append(container.container_id)
        return ids

    def test_hit_avoids_io(self, store):
        (cid,) = self._committed(store, 1)
        cache = ContainerCache(store, capacity=2)
        cache.get(cid)
        before = store.disk.stats.read_ops
        cache.get(cid)
        assert store.disk.stats.read_ops == before
        assert cache.hits == 1

    def test_lru_eviction_order(self, store):
        ids = self._committed(store, 3)
        cache = ContainerCache(store, capacity=2)
        cache.get(ids[0])
        cache.get(ids[1])
        cache.get(ids[0])  # refresh 0 → 1 is now LRU
        cache.get(ids[2])  # evicts 1
        assert ids[1] not in cache
        assert ids[0] in cache

    def test_unbounded_cache_never_evicts(self, store):
        ids = self._committed(store, 5)
        cache = ContainerCache(store, capacity=None)
        for cid in ids:
            cache.get(cid)
        assert all(cid in cache for cid in ids)
        assert cache.misses == 5

    def test_invalidate(self, store):
        (cid,) = self._committed(store, 1)
        cache = ContainerCache(store, capacity=2)
        cache.get(cid)
        cache.invalidate(cid)
        assert cid not in cache

    def test_store_deletion_invalidates_registered_caches(self, store):
        ids = self._committed(store, 2)
        cache = ContainerCache(store, capacity=4)
        other = ContainerCache(store, capacity=4)
        cache.get(ids[0])
        other.get(ids[0])
        store.delete_container(ids[0])
        assert ids[0] not in cache
        assert ids[0] not in other
        with pytest.raises(UnknownContainerError):
            cache.get(ids[0])

    def test_store_discard_invalidates_registered_caches(self, store):
        (cid,) = self._committed(store, 1)
        cache = ContainerCache(store, capacity=4)
        cache.get(cid)
        store.discard_container(cid)
        assert cid not in cache
        # Discard is idempotent: a second call is a no-op.
        store.discard_container(cid)

    def test_hit_rate(self, store):
        (cid,) = self._committed(store, 1)
        cache = ContainerCache(store, capacity=2)
        cache.get(cid)
        cache.get(cid)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_zero_capacity_rejected(self, store):
        with pytest.raises(ConfigError):
            ContainerCache(store, capacity=0)
