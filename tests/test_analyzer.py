"""Unit tests for the GCCDF Analyzer (ownership clustering, §5.3)."""

import pytest

from repro.config import GCCDFConfig
from repro.core.analyzer import Analyzer, ReferenceChecker
from repro.dedup.keys import storage_key
from repro.hashing.fingerprints import synthetic_fingerprint
from repro.index.recipe import Recipe, RecipeStore
from repro.model import ChunkRef


def key_ref(i: int, size: int = 100) -> ChunkRef:
    return ChunkRef(fp=storage_key(synthetic_fingerprint("an", i)), size=size)


def build_recipes(memberships: dict[int, list[int]]) -> RecipeStore:
    """memberships: backup_id → chunk ids it references."""
    store = RecipeStore()
    for backup_id in sorted(memberships):
        assert store.new_backup_id() == backup_id
        store.add(
            Recipe(
                backup_id=backup_id,
                entries=tuple(key_ref(i) for i in memberships[backup_id]),
            )
        )
    return store


def exact_config(**kwargs) -> GCCDFConfig:
    defaults = dict(exact_reference_check=True, split_denial_threshold=0)
    defaults.update(kwargs)
    return GCCDFConfig(**defaults)


class TestReferenceChecker:
    def test_exact_membership(self):
        recipes = build_recipes({0: [1, 2], 1: [2, 3]})
        checker = ReferenceChecker(recipes, exact_config())
        assert checker.membership(0)(key_ref(1).fp)
        assert not checker.membership(0)(key_ref(3).fp)

    def test_bloom_membership_no_false_negatives(self):
        recipes = build_recipes({0: list(range(50))})
        checker = ReferenceChecker(recipes, GCCDFConfig())
        member = checker.membership(0)
        assert all(member(key_ref(i).fp) for i in range(50))

    def test_filters_built_once_per_backup(self):
        recipes = build_recipes({0: [1], 1: [2]})
        checker = ReferenceChecker(recipes, exact_config())
        checker.membership(0)
        checker.membership(0)
        checker.membership(1)
        assert checker.filters_built == 2


class TestAnalyzerClustering:
    def test_paper_figure_6_example(self):
        """Chunks 1,5,7 owned by all; 2,4,8 by {α,β}; 3,6,9 by {α} (§4.1)."""
        alpha, beta, gamma = 0, 1, 2
        recipes = build_recipes(
            {
                alpha: [1, 5, 7, 2, 4, 8, 3, 6, 9],
                beta: [1, 5, 7, 2, 4, 8],
                gamma: [1, 5, 7],
            }
        )
        analyzer = Analyzer(ReferenceChecker(recipes, exact_config()), exact_config())
        chunks = [key_ref(i) for i in range(1, 10)]
        clusters = analyzer.cluster(chunks, (alpha, beta, gamma))
        by_ownership = {c.ownership: sorted(ch.fp for ch in c.chunks) for c in clusters}
        assert by_ownership[(alpha, beta, gamma)] == sorted(key_ref(i).fp for i in (1, 5, 7))
        assert by_ownership[(alpha, beta)] == sorted(key_ref(i).fp for i in (2, 4, 8))
        assert by_ownership[(alpha,)] == sorted(key_ref(i).fp for i in (3, 6, 9))

    def test_clusters_ordered_by_recency(self):
        """The first cluster must be the one owned by the newest backups
        (reverse checking order + referenced-goes-left)."""
        recipes = build_recipes({0: [1, 2], 1: [2, 3]})
        analyzer = Analyzer(ReferenceChecker(recipes, exact_config()), exact_config())
        clusters = analyzer.cluster([key_ref(i) for i in (1, 2, 3)], (0, 1))
        # Chunk 2 is owned by both; chunk 3 only by backup 1 (newest);
        # chunk 1 only by backup 0.  Order: {0,1}, {1}, {0}.
        assert [c.ownership for c in clusters] == [(0, 1), (1,), (0,)]

    def test_all_chunks_preserved_exactly_once(self):
        recipes = build_recipes({0: [1, 3, 5], 1: [2, 3, 6], 2: [1, 2, 3]})
        analyzer = Analyzer(ReferenceChecker(recipes, exact_config()), exact_config())
        chunks = [key_ref(i) for i in range(1, 7)]
        clusters = analyzer.cluster(chunks, (0, 1, 2))
        flattened = [ch.fp for c in clusters for ch in c.chunks]
        assert sorted(flattened) == sorted(ch.fp for ch in chunks)
        assert len(flattened) == len(set(flattened))

    def test_same_ownership_same_cluster(self):
        recipes = build_recipes({0: [1, 2, 3, 4], 1: [1, 2]})
        analyzer = Analyzer(ReferenceChecker(recipes, exact_config()), exact_config())
        clusters = analyzer.cluster([key_ref(i) for i in range(1, 5)], (0, 1))
        assert len(clusters) == 2  # {0,1} and {0}

    def test_empty_input(self):
        recipes = build_recipes({0: [1]})
        analyzer = Analyzer(ReferenceChecker(recipes, exact_config()), exact_config())
        assert analyzer.cluster([], (0,)) == []
        assert analyzer.last_leaf_count == 0

    def test_no_involved_backups_single_cluster(self):
        recipes = build_recipes({0: [1]})
        analyzer = Analyzer(ReferenceChecker(recipes, exact_config()), exact_config())
        clusters = analyzer.cluster([key_ref(7), key_ref(8)], ())
        assert len(clusters) == 1
        assert clusters[0].ownership == ()

    def test_unreferenced_chunks_form_ownerless_cluster(self):
        recipes = build_recipes({0: [1]})
        analyzer = Analyzer(ReferenceChecker(recipes, exact_config()), exact_config())
        clusters = analyzer.cluster([key_ref(1), key_ref(99)], (0,))
        ownerless = [c for c in clusters if c.ownership == ()]
        assert len(ownerless) == 1
        assert ownerless[0].chunks == [key_ref(99)]


class TestSplitDenial:
    def test_small_leaves_stop_splitting(self):
        """With a threshold of 2 the initial 2-chunk node never splits, even
        though the chunks have different ownership."""
        recipes = build_recipes({0: [1], 1: [2]})
        config = exact_config(split_denial_threshold=2)
        analyzer = Analyzer(ReferenceChecker(recipes, config), config)
        clusters = analyzer.cluster([key_ref(1), key_ref(2)], (0, 1))
        assert len(clusters) == 1
        assert clusters[0].denied

    def test_zero_threshold_disables_denial(self):
        recipes = build_recipes({0: [1], 1: [2]})
        config = exact_config(split_denial_threshold=0)
        analyzer = Analyzer(ReferenceChecker(recipes, config), config)
        clusters = analyzer.cluster([key_ref(1), key_ref(2)], (0, 1))
        assert len(clusters) == 2
        assert not any(c.denied for c in clusters)

    def test_denial_bounds_cluster_count(self):
        """With n backups of disjoint chunks, denial keeps leaves ≥ threshold."""
        memberships = {b: [10 * b + i for i in range(8)] for b in range(6)}
        recipes = build_recipes(memberships)
        config = exact_config(split_denial_threshold=4)
        analyzer = Analyzer(ReferenceChecker(recipes, config), config)
        chunks = [key_ref(i) for ids in memberships.values() for i in ids]
        clusters = analyzer.cluster(chunks, tuple(range(6)))
        assert all(c.num_chunks >= 1 for c in clusters)
        total = sum(c.num_chunks for c in clusters)
        assert total == len(chunks)
