"""The serving layer: offset columns, the tiered read cache, readers,
read/restore equivalence, fleet read traffic, and the consolidated
ServiceOptions / umbrella-CLI API surface."""

from __future__ import annotations

from bisect import bisect_left, bisect_right

import pytest
from hypothesis import given, settings, strategies as st

from repro.backup.approaches import APPROACHES, make_service, service_factory
from repro.backup.options import DEFAULT_OPTIONS, ServiceOptions
from repro.backup.system import DedupBackupService
from repro.config import ChunkingConfig, RetentionConfig, SystemConfig
from repro.errors import (
    BackupAlreadyDeletedError,
    ConfigError,
    IntegrityError,
    UnknownBackupError,
)
from repro.fleet.result import FleetResult, ShardResult
from repro.fleet.scheduler import KIND_PRIORITY, shard_schedule
from repro.fleet.topology import FleetConfig, TenantSpec
from repro.hashing.fingerprints import synthetic_fingerprint
from repro.index.columnar import ColumnarRecipe
from repro.index.recipe import Recipe
from repro.model import Chunk, ChunkRef
from repro.obs.tracer import TraceRecorder
from repro.serve.cache import TieredReadCache
from repro.storage.store import ContainerStore

from tests.conftest import refs


def tiny_config(retained: int = 6, turnover: int = 2) -> SystemConfig:
    config = SystemConfig(
        container_size=4096,
        chunking=ChunkingConfig(min_size=128, avg_size=512, max_size=1024),
        retention=RetentionConfig(retained=retained, turnover=turnover),
    )
    config.validate()
    return config


def sized_refs(namespace: str, sizes) -> list[ChunkRef]:
    return [
        ChunkRef(fp=synthetic_fingerprint(namespace, i), size=size)
        for i, size in enumerate(sizes)
    ]


def payload_chunks(namespace: str, sizes) -> tuple[list[Chunk], bytes]:
    """Payload-carrying chunks with distinct repeating content, plus the
    backup's whole logical buffer."""
    chunks = []
    buffer = bytearray()
    for i, size in enumerate(sizes):
        data = bytes([(i * 37 + 11) % 256]) * size
        chunks.append(
            Chunk(ref=ChunkRef(fp=synthetic_fingerprint(namespace, i), size=size), data=data)
        )
        buffer.extend(data)
    return chunks, bytes(buffer)


# ----------------------------------------------------------------------
# Offset columns
# ----------------------------------------------------------------------


class TestChunkStarts:
    def test_prefix_sums(self):
        entries = tuple(sized_refs("cs", [10, 20, 30, 5]))
        recipe = Recipe(backup_id=1, entries=entries, source="s")
        assert list(recipe.chunk_starts) == [0, 10, 30, 60]
        assert recipe.logical_size == 65

    def test_columnar_matches_legacy(self):
        from repro.index.interning import FingerprintInterner

        entries = tuple(sized_refs("cs2", [512, 128, 1024, 1]))
        legacy = Recipe(backup_id=1, entries=entries, source="s")
        interner = FingerprintInterner()
        columnar = ColumnarRecipe(
            1,
            interner,
            [interner.intern(ref.fp) for ref in entries],
            [ref.size for ref in entries],
            source="s",
        )
        assert list(columnar.chunk_starts) == list(legacy.chunk_starts)

    def test_empty_recipe(self):
        recipe = Recipe(backup_id=1, entries=(), source="s")
        assert list(recipe.chunk_starts) == []

    def test_cached(self):
        recipe = Recipe(backup_id=1, entries=tuple(sized_refs("cs3", [7])), source="s")
        assert recipe.chunk_starts is recipe.chunk_starts


# ----------------------------------------------------------------------
# Tiered read cache
# ----------------------------------------------------------------------


class TestTieredReadCache:
    def test_chunk_tier_hits_misses_evictions(self):
        cache = TieredReadCache(store=None, chunk_capacity=2)
        assert cache.get_chunk(b"a") is None
        cache.put_chunk(b"a", 10, None)
        cache.put_chunk(b"b", 20, None)
        assert cache.get_chunk(b"a") == (10, None)  # refresh: "b" is now LRU
        cache.put_chunk(b"c", 30, None)
        assert cache.get_chunk(b"b") is None
        assert cache.get_chunk(b"a") == (10, None)
        assert cache.chunk_hits == 2
        assert cache.chunk_misses == 2
        assert cache.chunk_evictions == 1

    def test_put_chunk_refreshes_recency(self):
        # Regression: re-inserting a cached fingerprint must move it to
        # the MRU end — plain dict assignment leaves it at its old LRU
        # position, so a hot, repeatedly-fetched chunk could be evicted.
        cache = TieredReadCache(store=None, chunk_capacity=2)
        cache.put_chunk(b"a", 10, None)
        cache.put_chunk(b"b", 20, None)
        cache.put_chunk(b"a", 11, None)  # refresh (and update payload)
        cache.put_chunk(b"c", 30, None)  # must evict "b", not "a"
        assert cache.get_chunk(b"a") == (11, None)
        assert cache.get_chunk(b"b") is None
        assert cache.chunk_evictions == 1

    def test_put_chunk_refresh_does_not_evict(self):
        cache = TieredReadCache(store=None, chunk_capacity=2)
        cache.put_chunk(b"a", 10, None)
        cache.put_chunk(b"b", 20, None)
        cache.put_chunk(b"b", 21, None)  # at capacity: refresh, no eviction
        assert cache.chunk_evictions == 0
        assert len(cache) == 2

    def test_no_container_tier(self):
        cache = TieredReadCache(store=None)
        assert cache.container_hits == 0
        assert cache.container_misses == 0
        assert cache.container_evictions == 0
        with pytest.raises(ConfigError):
            cache.get_container(0)

    def test_container_tier_counters(self, tiny_config):
        service = DedupBackupService(config=tiny_config)
        service.ingest(refs("trc", range(20)))
        ids = sorted(service.store.ids())
        cache = TieredReadCache(service.store, container_capacity=1)
        cache.get_container(ids[0])
        cache.get_container(ids[0])
        cache.get_container(ids[1])  # evicts ids[0]
        assert cache.container_hits == 1
        assert cache.container_misses == 2
        assert cache.container_evictions == 1

    def test_counters_payload(self):
        cache = TieredReadCache(store=None)
        cache.put_chunk(b"x", 1, None)
        cache.get_chunk(b"x")
        counters = cache.counters()
        assert counters["read_cache.chunk_hits"] == 1
        assert counters["read_cache.chunk_misses"] == 0
        assert set(counters) == {
            "read_cache.chunk_hits",
            "read_cache.chunk_misses",
            "read_cache.chunk_evictions",
            "read_cache.container_hits",
            "read_cache.container_misses",
            "read_cache.container_evictions",
        }

    def test_clear_keeps_counters(self):
        cache = TieredReadCache(store=None)
        cache.put_chunk(b"x", 1, None)
        cache.get_chunk(b"x")
        cache.clear()
        assert len(cache) == 0
        assert cache.chunk_hits == 1

    def test_invalid_capacity(self):
        with pytest.raises(ConfigError):
            TieredReadCache(store=None, chunk_capacity=0)


# ----------------------------------------------------------------------
# BackupReader
# ----------------------------------------------------------------------


def reference_window(sizes, offset, length):
    """Independent model of a window's accounting: chunks whose byte span
    intersects [offset, end), and the clamped byte count."""
    total = sum(sizes)
    end = min(offset + length, total)
    if offset >= total or end <= offset:
        return 0, 0
    touched = 0
    start = 0
    for size in sizes:
        if start < end and start + size > offset:
            touched += 1
        start += size
    return touched, end - offset


class TestBackupReader:
    def make_reader(self, sizes, approach="naive"):
        service = make_service(approach, tiny_config())
        result = service.ingest(sized_refs("br", sizes))
        return service, service.open_backup(result.backup_id)

    def test_pread_accounting_matches_reference(self):
        sizes = [512, 128, 1024, 300, 512, 700]
        service, reader = self.make_reader(sizes)
        total = sum(sizes)
        windows = [
            (0, total), (0, 1), (511, 2), (512, 128), (640, 1), (total - 1, 1),
            (100, 2000), (1664, 300),
        ]
        for offset, length in windows:
            report = reader.pread(offset, length)
            chunks, nbytes = reference_window(sizes, offset, length)
            assert report.num_chunks == chunks, (offset, length)
            assert report.bytes_read == nbytes, (offset, length)
        assert reader.size == total
        assert reader.num_chunks == len(sizes)

    def test_pread_bytes_equals_buffer(self):
        sizes = [512, 128, 1024, 300]
        chunks, buffer = payload_chunks("brb", sizes)
        service = make_service("naive", tiny_config())
        result = service.ingest(chunks)
        with service.open_backup(result.backup_id) as reader:
            for offset, length in [(0, len(buffer)), (100, 700), (511, 2), (0, 1)]:
                report, data = reader.pread_bytes(offset, length)
                assert data == buffer[offset : offset + length]
                assert report.bytes_read == len(data)

    def test_pread_bytes_without_payloads_raises(self):
        service, reader = self.make_reader([512, 512])
        with pytest.raises(IntegrityError):
            reader.pread_bytes(0, 10)

    def test_zero_and_past_eof_reads(self):
        service, reader = self.make_reader([512])
        before = service.disk.sim_time
        for offset, length in [(512, 10), (5000, 1), (0, 0), (100, 0)]:
            report = reader.pread(offset, length)
            assert report.num_chunks == 0
            assert report.bytes_read == 0
            assert report.read_seconds == 0.0
        assert service.disk.sim_time == before

    def test_invalid_windows(self):
        _, reader = self.make_reader([512])
        with pytest.raises(ValueError):
            reader.pread(-1, 10)
        with pytest.raises(ValueError):
            reader.pread(0, -1)

    def test_closed_reader(self):
        _, reader = self.make_reader([512])
        reader.close()
        reader.close()  # idempotent
        assert reader.closed
        with pytest.raises(ValueError):
            reader.pread(0, 1)
        with pytest.raises(ValueError):
            reader.read_all()
        with pytest.raises(ValueError):
            with reader:
                pass

    def test_context_manager_closes(self):
        service, reader = self.make_reader([512])
        with reader as handle:
            assert handle is reader
        assert reader.closed

    def test_open_unknown_and_deleted(self):
        service = make_service("naive", tiny_config())
        with pytest.raises(UnknownBackupError):
            service.open_backup(999)
        result = service.ingest(refs("del", range(4)))
        service.delete_backup(result.backup_id)
        with pytest.raises(BackupAlreadyDeletedError):
            service.open_backup(result.backup_id)

    def test_chunk_cache_hit_on_repeat_read(self):
        service, reader = self.make_reader([512, 512])
        first = reader.pread(0, 1024)
        second = reader.pread(0, 1024)
        assert first.chunk_hits == 0
        assert second.chunk_hits == 2
        assert second.containers_read == 0
        assert second.read_seconds == 0.0

    def test_mfdedup_pread(self):
        service = make_service("mfdedup", tiny_config())
        result = service.ingest(refs("mf", range(16)))
        with service.open_backup(result.backup_id) as reader:
            report = reader.pread(0, reader.size)
            assert report.num_chunks == 16
            assert report.containers_read >= 1
            assert report.read_seconds > 0.0
            # Warm chunk tier: the repeat read is free.
            assert reader.pread(0, reader.size).read_seconds == 0.0
            with pytest.raises(IntegrityError):
                reader.pread_bytes(0, 10)

    def test_read_emits_trace_span(self):
        recorder = TraceRecorder()
        service = make_service(
            "naive", tiny_config(), ServiceOptions(tracer=recorder)
        )
        result = service.ingest(refs("sp", range(4)))
        with service.open_backup(result.backup_id) as reader:
            reader.pread(0, 1024)
        spans = [e for e in recorder.events if e.name == "read"]
        assert len(spans) == 1
        assert spans[0].fields["backup_id"] == result.backup_id
        assert spans[0].fields["chunks"] > 0

    def test_runtime_metrics_lazy(self):
        service = make_service("naive", tiny_config())
        result = service.ingest(refs("rm", range(4)))
        assert not any(
            name.startswith("read_cache.") for name in service.runtime_metrics()
        )
        service.open_backup(result.backup_id).pread(0, 100)
        metrics = service.runtime_metrics()
        assert metrics["read_cache.chunk_misses"] > 0

    def test_base_service_open_backup_unsupported(self):
        from repro.backup.service import BackupService

        class Stub(BackupService):
            def ingest(self, stream, source=""):
                raise NotImplementedError

            def restore(self, backup_id):
                raise NotImplementedError

            def delete_backup(self, backup_id):
                raise NotImplementedError

            def run_gc(self):
                raise NotImplementedError

            def live_backup_ids(self):
                return []

            def stats(self):
                raise NotImplementedError

        with pytest.raises(NotImplementedError, match="read serving"):
            Stub().open_backup(1)

    def test_read_cache_knobs_thread_through(self):
        options = ServiceOptions(read_cache_containers=3, read_cache_chunks=5)
        service = make_service("naive", tiny_config(), options)
        assert service.read_cache.containers.capacity == 3
        assert service.read_cache.chunk_capacity == 5
        mf = make_service("mfdedup", tiny_config(), options)
        assert mf.read_cache.chunk_capacity == 5
        assert mf.read_cache.containers is None


# ----------------------------------------------------------------------
# Property: pread accounting and bytes vs. a reference model
# ----------------------------------------------------------------------


size_lists = st.lists(st.integers(min_value=1, max_value=1024), min_size=1, max_size=24)
windows = st.tuples(
    st.integers(min_value=0, max_value=8192), st.integers(min_value=0, max_value=8192)
)


@given(size_lists, st.lists(windows, min_size=1, max_size=6))
@settings(max_examples=40, deadline=None)
def test_prop_pread_accounting(sizes, window_list):
    service = make_service("naive", tiny_config())
    result = service.ingest(sized_refs("pp", sizes))
    with service.open_backup(result.backup_id) as reader:
        for offset, length in window_list:
            report = reader.pread(offset, length)
            chunks, nbytes = reference_window(sizes, offset, length)
            assert report.num_chunks == chunks
            assert report.bytes_read == nbytes


@given(size_lists, windows)
@settings(max_examples=40, deadline=None)
def test_prop_pread_bytes_matches_buffer(sizes, window):
    chunks, buffer = payload_chunks("pb", sizes)
    service = make_service("naive", tiny_config())
    result = service.ingest(chunks)
    offset, length = window
    with service.open_backup(result.backup_id) as reader:
        _, data = reader.pread_bytes(offset, length)
        assert data == buffer[offset : offset + length]


@pytest.mark.parametrize("approach", APPROACHES)
@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=8, deadline=None)
def test_prop_pread_accounting_every_approach(approach, probe_seed):
    """Every approach's reader agrees with the size-list reference model,
    including after a second, overlapping backup deduplicates chunks into
    containers written for the first."""
    from repro.util.rng import DeterministicRng

    rng = DeterministicRng(probe_seed)
    sizes = [rng.randint(1, 1024) for _ in range(rng.randint(4, 16))]
    service = make_service(approach, tiny_config())
    service.ingest(sized_refs("pa", sizes))
    result = service.ingest(sized_refs("pa", sizes) + sized_refs("pa2", [256, 256]))
    full = sizes + [256, 256]
    total = sum(full)
    with service.open_backup(result.backup_id) as reader:
        for _ in range(4):
            offset = rng.randint(0, total)
            length = rng.randint(0, total)
            report = reader.pread(offset, length)
            chunks, nbytes = reference_window(full, offset, length)
            assert report.num_chunks == chunks
            assert report.bytes_read == nbytes


# ----------------------------------------------------------------------
# read_all ≡ restore, every approach
# ----------------------------------------------------------------------


@pytest.mark.parametrize("approach", APPROACHES)
def test_read_all_counter_identical_to_restore(approach):
    def run_protocol():
        service = make_service(approach, tiny_config(retained=4, turnover=2))
        for round_index in range(5):
            service.ingest(refs("eq", range(round_index * 6, round_index * 6 + 24)))
        live = service.live_backup_ids()
        for victim in live[:2]:
            service.delete_backup(victim)
        service.run_gc()
        return service

    restore_service = run_protocol()
    serve_service = run_protocol()
    live = sorted(restore_service.live_backup_ids())
    assert live == sorted(serve_service.live_backup_ids())
    assert live
    for backup_id in live:
        expected = restore_service.restore(backup_id)
        with serve_service.open_backup(backup_id) as reader:
            assert reader.read_all() == expected


# ----------------------------------------------------------------------
# ServiceOptions and the make_service surface
# ----------------------------------------------------------------------


class TestServiceOptions:
    def test_defaults(self):
        assert DEFAULT_OPTIONS == ServiceOptions()
        assert DEFAULT_OPTIONS.gc_mode == "stw"
        assert DEFAULT_OPTIONS.read_cache_containers == 8

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_OPTIONS.gc_mode = "incremental"

    def test_validate_rejects_bad_gc_mode(self):
        with pytest.raises(ConfigError):
            ServiceOptions(gc_mode="eager").validate()

    def test_validate_rejects_bad_cache_knobs(self):
        with pytest.raises(ConfigError):
            ServiceOptions(read_cache_containers=0).validate()
        with pytest.raises(ConfigError):
            ServiceOptions(read_cache_chunks=-1).validate()

    def test_with_overrides(self):
        options = ServiceOptions().with_overrides(gc_mode="incremental")
        assert options.gc_mode == "incremental"
        with pytest.raises(ConfigError):
            ServiceOptions().with_overrides(no_such_knob=1)

    def test_deprecated_keywords_fold_and_warn(self):
        recorder = TraceRecorder()
        with pytest.warns(DeprecationWarning, match="tracer"):
            service = make_service("naive", tiny_config(), tracer=recorder)
        assert service.tracer is recorder

    def test_deprecated_keyword_overrides_options(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigError):
                make_service("naive", tiny_config(), gc_mode="eager")

    def test_service_factory_shim_warns(self):
        with pytest.warns(DeprecationWarning, match="gc_mode"):
            build = service_factory("naive", tiny_config(), gc_mode="stw")
        assert build().name == "naive"

    def test_unknown_policy_kwarg_named(self):
        with pytest.raises(ConfigError, match=r"capping.*valid knobs.*cap"):
            make_service("capping", tiny_config(), capp=20)

    def test_policy_kwargs_rejected_for_plain_approaches(self):
        with pytest.raises(ConfigError, match="takes no policy kwargs"):
            make_service("naive", tiny_config(), cap=20)
        with pytest.raises(ConfigError, match="takes no policy kwargs"):
            service_factory("gccdf", tiny_config(), utilization_threshold=0.5)

    def test_valid_policy_kwargs_still_work(self):
        service = make_service("capping", tiny_config(), cap=4)
        assert service.pipeline.rewriting is not None

    def test_unknown_approach_still_value_error(self):
        with pytest.raises(ValueError, match="unknown approach"):
            make_service("bogus", tiny_config())


# ----------------------------------------------------------------------
# Fleet read traffic
# ----------------------------------------------------------------------


def read_fleet(**overrides) -> FleetConfig:
    params = dict(
        datasets=("web", "mix"),
        workload_scale=0.02,
        backups_per_tenant=5,
        stream_pool=3,
        retained=3,
        turnover=1,
        read_requests=2,
        seed=11,
    )
    params.update(overrides)
    return FleetConfig.synthetic(6, 2, **params)


class TestFleetReads:
    def test_schedule_reads_after_restore(self):
        tenants = (
            TenantSpec(name="a", dataset="web", workload_scale=0.02, num_backups=4),
            TenantSpec(name="b", dataset="mix", workload_scale=0.02, num_backups=4),
        )
        schedule = shard_schedule(tenants, 3, 1, 1.0, 4.0, 7, read_requests=3)
        reads = [r for r in schedule if r.kind == "read"]
        assert len(reads) == 6
        assert KIND_PRIORITY["read"] == 5
        for tenant in ("a", "b"):
            restore_at = next(
                r.time for r in schedule if r.kind == "restore" and r.tenant == tenant
            )
            tenant_reads = [r for r in reads if r.tenant == tenant]
            assert [r.backup_index for r in tenant_reads] == [0, 1, 2]
            assert all(r.time > restore_at for r in tenant_reads)

    def test_no_reads_by_default(self):
        tenants = (
            TenantSpec(name="a", dataset="web", workload_scale=0.02, num_backups=4),
        )
        schedule = shard_schedule(tenants, 3, 1, 1.0, 4.0, 7)
        assert not any(r.kind == "read" for r in schedule)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            read_fleet(read_requests=-1)
        with pytest.raises(ConfigError):
            read_fleet(read_fraction=0.0)
        with pytest.raises(ConfigError):
            read_fleet(read_fraction=1.5)

    def test_jobs_independent_and_counted(self):
        from repro.fleet.runner import run_fleet

        serial = run_fleet(read_fleet(), jobs=1)
        pooled = run_fleet(read_fleet(), jobs=2)
        assert serial.canonical_json() == pooled.canonical_json()
        counters = serial.metrics["counters"]
        assert counters["read.requests"] == 12
        assert counters["read.chunks"] > 0
        assert counters["runtime.read_cache.chunk_misses"] > 0
        samples = [s for shard in serial.shards for s in shard.read_latencies]
        assert len(samples) == 12
        quantiles = serial.read_latency_quantiles()
        assert quantiles["max"] == max(samples)
        assert quantiles["p50"] <= quantiles["p99"] <= quantiles["max"]

    def test_read_latency_quantiles_empty(self):
        result = FleetResult(
            approach="naive", dedup_domain="shared",
            num_tenants=0, num_shards=0, seed=0,
        )
        assert result.read_latency_quantiles() == {
            "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0,
        }

    def test_read_latency_quantiles_exact(self):
        shard = ShardResult(shard_id=0, read_latencies=[0.4, 0.1, 0.2, 0.3])
        result = FleetResult(
            approach="naive", dedup_domain="shared",
            num_tenants=1, num_shards=1, seed=0, shards=[shard],
        )
        quantiles = result.read_latency_quantiles()
        assert quantiles == {"p50": 0.2, "p90": 0.4, "p99": 0.4, "max": 0.4}

    def test_shard_result_roundtrip(self):
        shard = ShardResult(shard_id=3, read_latencies=[0.5])
        assert ShardResult.from_dict(shard.to_dict()).read_latencies == [0.5]
        assert ShardResult.from_dict({
            "shard_id": 0, "tenants": [], "requests": {}, "stats": {},
            "tenant_summaries": {}, "metrics": {},
        }).read_latencies == []


# ----------------------------------------------------------------------
# Umbrella CLI
# ----------------------------------------------------------------------


class TestUmbrellaCli:
    @pytest.mark.parametrize("tool", ["bench", "experiments", "fleet", "serve"])
    def test_forwarded_help(self, tool, capsys):
        from repro.tools import main

        with pytest.raises(SystemExit) as excinfo:
            main([tool, "--help"])
        assert excinfo.value.code == 0
        assert "usage" in capsys.readouterr().out

    def test_forwarded_fleet_run(self, capsys):
        from repro.tools import main

        assert main([
            "fleet", "--preset", "quick", "--tenants", "4", "--shards", "2",
            "--backups", "3", "--workload-scale", "0.01", "--retained", "2",
            "--turnover", "1", "--reads", "1", "--jobs", "1",
        ]) == 0
        output = capsys.readouterr().out
        assert "read latency:" in output

    def test_existing_subcommands_unaffected(self, capsys):
        from repro.tools import main

        assert main([
            "simulate", "--dataset", "web", "--backups", "3", "--scale", "0.02",
            "--retained", "2", "--turnover", "1", "--approach", "naive",
        ]) == 0
        assert "dedup ratio" in capsys.readouterr().out

    def test_help_lists_forwarded_tools(self, capsys):
        from repro.tools import main

        with pytest.raises(SystemExit):
            main(["--help"])
        output = capsys.readouterr().out
        for tool in ("bench", "experiments", "fleet", "serve", "faults"):
            assert tool in output


# ----------------------------------------------------------------------
# Serve benchmark plumbing
# ----------------------------------------------------------------------


class TestServeBench:
    def test_quantile_nearest_rank(self):
        from repro.serve.bench import _quantile

        samples = [1.0, 2.0, 3.0, 4.0]
        assert _quantile(samples, 0.50) == 2.0
        assert _quantile(samples, 0.99) == 4.0
        assert _quantile([], 0.5) == 0.0

    def test_smoke(self, tmp_path):
        import json

        from repro.serve.bench import main

        out = tmp_path / "BENCH_serve.json"
        assert main([
            "--scale", "quick", "--reads", "2", "--out", str(out),
        ]) == 0
        payload = json.loads(out.read_text())
        assert payload["equivalence"]["all_equal"] is True
        assert set(payload["latency"]["approaches"]) == {
            "naive", "capping", "gccdf", "mfdedup",
        }
