"""Tests for the analysis package: fragmentation, ownership, layout, GC stats."""

import pytest

from repro.analysis.fragmentation import fragmentation_profile, system_fragmentation
from repro.analysis.gcstats import produced_ratio, summarize_gc_history
from repro.analysis.layout import ownership_histogram, render_layout
from repro.analysis.ownership import (
    container_purity,
    mean_purity,
    ownership_stats,
)
from repro.backup.system import DedupBackupService
from repro.core.gccdf import GCCDFMigration

from tests.conftest import refs


@pytest.fixture
def service(tiny_config) -> DedupBackupService:
    return DedupBackupService(config=tiny_config)


class TestFragmentationProfile:
    def test_fresh_backup_is_unfragmented(self, service):
        result = service.ingest(refs("f", range(32)))
        profile = fragmentation_profile(service, result.backup_id)
        assert profile.read_amplification == pytest.approx(1.0)
        assert profile.mean_utilization == pytest.approx(1.0)
        assert profile.containers_touched == 4  # 32 × 512 B / 4 KiB

    def test_partial_sharing_shows_low_utilization(self, service):
        service.ingest(refs("f", range(32)))
        second = service.ingest(refs("f", range(0, 32, 4)))
        profile = fragmentation_profile(service, second.backup_id)
        assert profile.read_amplification > 2.0
        assert profile.mean_utilization < 0.5

    def test_matches_restore_accounting(self, service):
        """The metadata profile must equal the restore engine's measurement
        under the read-once model."""
        service.ingest(refs("f", range(32)))
        second = service.ingest(refs("f", list(range(0, 32, 2)) + list(range(50, 58))))
        profile = fragmentation_profile(service, second.backup_id)
        report = service.restore(second.backup_id)
        assert profile.read_amplification == pytest.approx(report.read_amplification)
        assert profile.containers_touched == report.containers_read

    def test_worst_containers_sorted(self, service):
        service.ingest(refs("f", range(32)))
        second = service.ingest(refs("f", list(range(0, 8)) + [16]))
        profile = fragmentation_profile(service, second.backup_id)
        worst = profile.worst_containers(2)
        assert worst[0].utilization <= worst[-1].utilization

    def test_system_fragmentation_covers_live(self, service):
        a = service.ingest(refs("f", range(8)))
        b = service.ingest(refs("f", range(4, 12)))
        profiles = system_fragmentation(service)
        assert set(profiles) == {a.backup_id, b.backup_id}

    def test_utilization_summary_keys(self, service):
        result = service.ingest(refs("f", range(8)))
        summary = fragmentation_profile(service, result.backup_id).utilization_summary()
        assert set(summary) == {"min", "mean", "median", "max"}


class TestOwnershipAnalytics:
    def test_single_backup_single_group(self, service):
        service.ingest(refs("o", range(16)))
        stats = ownership_stats(service)
        assert stats.distinct_ownerships == 1
        assert stats.total_chunks == 16
        assert "1 ownership" in stats.describe()

    def test_sharing_creates_groups(self, service):
        service.ingest(refs("o", range(16)))
        service.ingest(refs("o", range(8, 24)))
        stats = ownership_stats(service)
        # {b0}, {b0,b1}, {b1}
        assert stats.distinct_ownerships == 3

    def test_container_purity_of_fresh_ingest(self, service):
        service.ingest(refs("o", range(32)))
        purities = container_purity(service)
        assert all(p.dominant_share == pytest.approx(1.0) for p in purities)
        assert mean_purity(purities) == pytest.approx(1.0)

    def test_purity_drops_with_mixed_ownership(self, service):
        service.ingest(refs("o", range(32)))
        service.ingest(refs("o", range(0, 32, 2)))
        purities = container_purity(service)
        assert any(p.distinct_ownerships > 1 for p in purities)
        assert mean_purity(purities) < 1.0

    def test_gccdf_gc_raises_purity(self, tiny_config):
        outcomes = {}
        from repro.gc.migration import NaiveMigration

        for name, migration in (("naive", NaiveMigration()), ("gccdf", GCCDFMigration())):
            service = DedupBackupService(config=tiny_config, migration=migration)
            base = service.ingest(refs("o", range(64)))
            service.ingest(refs("o", [i for i in range(64) if i % 4 in (0, 1)]))
            service.ingest(refs("o", [i for i in range(64) if i % 4 in (0, 2)]))
            service.delete_backup(base.backup_id)
            service.run_gc()
            outcomes[name] = mean_purity(container_purity(service))
        assert outcomes["gccdf"] > outcomes["naive"]

    def test_empty_system(self, service):
        assert ownership_stats(service).total_chunks == 0
        assert container_purity(service) == []
        assert mean_purity([]) == 0.0


class TestLayoutRendering:
    def test_render_contains_containers_and_legend(self, service):
        service.ingest(refs("l", range(16)))
        text = render_layout(service)
        assert "container" in text
        assert "legend" in text
        assert "A" in text

    def test_max_containers_truncates(self, service):
        service.ingest(refs("l", range(32)))  # 4 containers
        text = render_layout(service, max_containers=2)
        assert "more containers" in text

    def test_dead_chunks_render_as_dots(self, service):
        first = service.ingest(refs("l", range(8)))
        service.ingest(refs("l", range(4, 12)))
        service.delete_backup(first.backup_id)  # chunks 0..3 now unreferenced
        text = render_layout(service)
        assert "." in text.splitlines()[0]

    def test_histogram(self, service):
        service.ingest(refs("l", range(8)))
        service.ingest(refs("l", range(4, 12)))
        text = ownership_histogram(service)
        assert "owners" in text
        assert "█" in text

    def test_histogram_empty(self, service):
        assert "no referenced chunks" in ownership_histogram(service)


class TestGCStats:
    def _run_rounds(self, service):
        first = service.ingest(refs("g", range(32)))
        service.ingest(refs("g", range(0, 32, 2)))
        service.delete_backup(first.backup_id)
        service.run_gc()
        return service

    def test_summary_totals(self, service):
        self._run_rounds(service)
        summary = summarize_gc_history(service.gc_history)
        assert summary.rounds == 1
        assert summary.backups_purged == 1
        assert summary.reclaimed_containers > 0
        assert summary.total_seconds > 0
        assert "GC rounds" in summary.describe()

    def test_empty_history(self):
        summary = summarize_gc_history([])
        assert summary.rounds == 0
        assert summary.total_seconds == 0.0

    def test_produced_ratio(self, service):
        self._run_rounds(service)
        summary = summarize_gc_history(service.gc_history)
        assert produced_ratio(summary, summary) == pytest.approx(1.0)
        empty = summarize_gc_history([])
        assert produced_ratio(empty, summary) == 0.0
