"""The exception hierarchy is a public contract: everything derives from
ReproError so callers can catch the family."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ConfigError,
    errors.ChunkingError,
    errors.StorageError,
    errors.ContainerSealedError,
    errors.ContainerFullError,
    errors.UnknownContainerError,
    errors.UnknownChunkError,
    errors.UnknownBackupError,
    errors.BackupAlreadyDeletedError,
    errors.GCError,
    errors.IntegrityError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_derives_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)
    assert issubclass(exc, Exception)


def test_container_errors_are_storage_errors():
    for exc in (
        errors.ContainerSealedError,
        errors.ContainerFullError,
        errors.UnknownContainerError,
    ):
        assert issubclass(exc, errors.StorageError)


def test_catching_the_family():
    with pytest.raises(errors.ReproError):
        raise errors.UnknownChunkError("gone")
