"""The sharded multi-tenant fleet: placement, scheduling, determinism.

The headline guard is jobs-count independence: a fleet executed over a
process pool must serialize byte-identically (``canonical_json`` and the
merged JSONL trace) to a serial in-process run.  Everything the fleet
serializes is a pure function of its :class:`FleetConfig`, so the guard is
a straight byte comparison, no tolerance.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.fleet import (
    DEDUP_DOMAINS,
    FleetConfig,
    FleetResult,
    ShardResult,
    TenantSpec,
    plan_shards,
    run_fleet,
    run_shard,
    shard_of,
    shard_schedule,
)
from repro.fleet.cli import main as fleet_main
from repro.fleet.scheduler import KIND_PRIORITY
from repro.workloads import WorkloadCache, dataset, materialize_dataset


def small_fleet(**overrides) -> FleetConfig:
    params = dict(
        num_tenants=12,
        num_shards=3,
        workload_scale=0.02,
        backups_per_tenant=6,
        stream_pool=4,
        retained=3,
        turnover=1,
    )
    num_tenants = params.pop("num_tenants")
    num_shards = params.pop("num_shards")
    for key in list(overrides):
        if key in ("num_tenants", "num_shards"):
            raise ValueError("override via params instead")
    return FleetConfig.synthetic(num_tenants, num_shards, **params).with_overrides(
        **overrides
    )


# ----------------------------------------------------------------------
# Topology
# ----------------------------------------------------------------------


class TestPlacement:
    def test_stable_across_calls(self):
        assert shard_of("t00000", 8) == shard_of("t00000", 8)

    def test_invalid_shard_count(self):
        with pytest.raises(ConfigError):
            shard_of("t", 0)

    def test_partition_is_exact_and_order_preserving(self):
        config = small_fleet()
        groups = config.shard_tenants()
        assert len(groups) == config.num_shards
        flattened = [t for group in groups for t in group]
        assert sorted(t.name for t in flattened) == sorted(
            t.name for t in config.tenants
        )
        order = {t.name: i for i, t in enumerate(config.tenants)}
        for group in groups:
            indices = [order[t.name] for t in group]
            assert indices == sorted(indices)
        for shard_id, group in enumerate(groups):
            for tenant in group:
                assert shard_of(tenant.name, config.num_shards) == shard_id

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=64, max_value=96),
        st.text(
            alphabet=st.characters(min_codepoint=97, max_codepoint=122),
            max_size=8,
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_placement_is_balanced(self, num_shards, per_shard, prefix):
        """The documented bound: T ≥ 64·S tenants ⇒ every shard holds
        between T/(2S) and 2T/S of them, for any naming scheme."""
        num_tenants = per_shard * num_shards
        counts = [0] * num_shards
        for i in range(num_tenants):
            counts[shard_of(f"{prefix}{i:05d}", num_shards)] += 1
        lo = num_tenants / (2 * num_shards)
        hi = 2 * num_tenants / num_shards
        assert all(lo <= count <= hi for count in counts), counts


class TestConfigValidation:
    def test_duplicate_tenant_names_rejected(self):
        tenant = TenantSpec("dup", "web", 0.02, 4)
        with pytest.raises(ConfigError, match="duplicate"):
            FleetConfig(tenants=(tenant, tenant)).validate()

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ConfigError, match="dataset"):
            FleetConfig(tenants=(TenantSpec("t", "nope", 0.02, 4),)).validate()

    def test_unknown_approach_and_domain_rejected(self):
        with pytest.raises(ConfigError, match="approach"):
            small_fleet(approach="zfs")
        with pytest.raises(ConfigError, match="dedup_domain"):
            small_fleet(dedup_domain="galaxy")

    def test_turnover_bounded_by_retention(self):
        with pytest.raises(ConfigError, match="turn over"):
            small_fleet(retained=2, turnover=3)

    def test_synthetic_stream_pool_correlates_tenants(self):
        config = small_fleet()
        keys = {t.stream_key() for t in config.tenants}
        # 12 tenants over 4 datasets × pool of 4 slots → lcm(4,4)=4 combos.
        assert len(keys) < len(config.tenants)

    def test_tenant_spec_round_trip(self):
        spec = TenantSpec("t1", "web", 0.05, 8, seed=99)
        assert TenantSpec.from_dict(spec.to_dict()) == spec


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------


class TestSchedule:
    def schedule(self, config: FleetConfig, shard_id: int = 0):
        tenants = config.shard_tenants()[shard_id]
        return tenants, shard_schedule(
            tenants,
            config.retained,
            config.turnover,
            config.backup_period,
            config.gc_period,
            config.seed,
        )

    def test_pure_function_of_inputs(self):
        config = small_fleet()
        _, first = self.schedule(config)
        _, second = self.schedule(config)
        assert first == second

    def test_totally_ordered(self):
        _, schedule = self.schedule(small_fleet())
        keys = [request.sort_key() for request in schedule]
        assert keys == sorted(keys)
        assert len(set(keys)) == len(keys)

    def test_every_backup_scheduled_once(self):
        tenants, schedule = self.schedule(small_fleet())
        ingests = [r for r in schedule if r.kind == "ingest"]
        expected = {
            (spec.name, k) for spec in tenants for k in range(spec.num_backups)
        }
        assert {(r.tenant, r.backup_index) for r in ingests} == expected

    def test_gc_epochs_and_final_epoch(self):
        config = small_fleet()
        _, schedule = self.schedule(config)
        gc_times = [r.time for r in schedule if r.kind == "gc"]
        horizon = max(r.time for r in schedule if r.kind == "rotate")
        assert gc_times[-1] == horizon
        for at in gc_times[:-1]:
            assert at % config.gc_period == 0

    def test_restores_after_final_gc(self):
        _, schedule = self.schedule(small_fleet())
        last_gc = max(r.time for r in schedule if r.kind == "gc")
        assert all(
            r.time > last_gc for r in schedule if r.kind == "restore"
        )

    def test_kind_priority_breaks_ties(self):
        assert (
            KIND_PRIORITY["rotate"]
            < KIND_PRIORITY["gc"]
            < KIND_PRIORITY["ingest"]
            < KIND_PRIORITY["restore"]
        )


# ----------------------------------------------------------------------
# Execution determinism — the tentpole guard
# ----------------------------------------------------------------------


class TestDeterminism:
    def test_parallel_matches_serial_byte_for_byte(self, tmp_path):
        """jobs=2 over a process pool ≡ jobs=1 in-process: identical
        canonical JSON *and* identical merged trace bytes."""
        config = small_fleet()
        serial_trace = tmp_path / "serial.jsonl"
        pooled_trace = tmp_path / "pooled.jsonl"
        serial = run_fleet(config, jobs=1, trace_path=serial_trace)
        pooled = run_fleet(config, jobs=2, trace_path=pooled_trace)
        assert serial.canonical_json() == pooled.canonical_json()
        assert serial_trace.read_bytes() == pooled_trace.read_bytes()
        assert serial.jobs == 1 and pooled.jobs == 2

    def test_wall_clock_and_jobs_not_serialized(self):
        result = run_fleet(small_fleet(), jobs=1)
        assert result.wall_seconds > 0
        data = result.to_dict()
        text = json.dumps(data)
        assert "wall_seconds" not in text and '"jobs"' not in text
        round_tripped = FleetResult.from_dict(data)
        assert round_tripped.canonical_json() == result.canonical_json()

    def test_run_shard_is_pure(self):
        task = plan_shards(small_fleet())[0]
        assert task.tenants  # shard 0 must be non-empty for this to bite
        first = run_shard(task)
        second = run_shard(task)
        assert first.to_dict() == second.to_dict()
        assert ShardResult.from_dict(first.to_dict()).to_dict() == first.to_dict()

    def test_trace_merges_in_shard_id_order(self, tmp_path):
        trace = tmp_path / "fleet.jsonl"
        run_fleet(small_fleet(), jobs=2, trace_path=trace)
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        assert [e["seq"] for e in events] == list(range(len(events)))
        headers = [e for e in events if e["name"] == "shard"]
        assert [h["fields"]["shard_id"] for h in headers] == [0, 1, 2]


# ----------------------------------------------------------------------
# Fleet semantics
# ----------------------------------------------------------------------


class TestFleetSemantics:
    def test_every_request_accounted(self):
        config = small_fleet()
        result = run_fleet(config, jobs=1)
        scheduled = sum(
            len(
                shard_schedule(
                    tenants,
                    config.retained,
                    config.turnover,
                    config.backup_period,
                    config.gc_period,
                    config.seed,
                )
            )
            for tenants in config.shard_tenants()
            if tenants
        )
        executed = result.total_requests
        # gc_skipped epochs are counted under their own key, so executed
        # request counts (incl. skips) exactly cover the schedule.
        assert executed == scheduled
        ingests = sum(s.requests.get("ingest", 0) for s in result.shards)
        assert ingests == sum(t.num_backups for t in config.tenants)

    def test_shared_domain_dedups_across_tenants(self):
        shared = run_fleet(small_fleet(dedup_domain="shared"), jobs=1)
        isolated = run_fleet(small_fleet(dedup_domain="tenant"), jobs=1)
        # stream_pool makes tenants share streams, so the shared domain
        # must strictly beat per-tenant isolation on dedup ratio.
        assert shared.dedup_ratio > isolated.dedup_ratio
        assert shared.canonical_json() != isolated.canonical_json()

    def test_tenant_domain_builds_one_service_per_tenant(self):
        result = run_fleet(small_fleet(dedup_domain="tenant"), jobs=1)
        counters = result.metrics["counters"]
        assert counters["fleet.services"] == result.num_tenants
        shared = run_fleet(small_fleet(), jobs=1)
        assert shared.metrics["counters"]["fleet.services"] == shared.num_shards

    def test_tenant_summaries_track_rotation(self):
        config = small_fleet()
        result = run_fleet(config, jobs=1)
        summaries = {
            name: summary
            for shard in result.shards
            for name, summary in shard.tenant_summaries.items()
        }
        assert set(summaries) == {t.name for t in config.tenants}
        for tenant in config.tenants:
            summary = summaries[tenant.name]
            assert summary["backups_ingested"] == tenant.num_backups
            assert summary["live_backups"] <= config.retained
            assert summary["backups_restored"] == summary["live_backups"]

    def test_aggregates_read_off_metrics(self):
        result = run_fleet(small_fleet(), jobs=1)
        assert result.dedup_ratio > 1.0
        assert result.mean_read_amplification >= 1.0
        assert result.restore_speed > 0
        assert result.chunk_ops > 0
        assert "dedup" in result.summary()

    def test_empty_shards_are_tolerated(self):
        # 1 tenant over 4 shards leaves 3 shards empty; the run must still
        # produce 4 shard results and merge cleanly at any job count.
        config = FleetConfig.synthetic(
            1, 4, workload_scale=0.02, backups_per_tenant=4, retained=2, turnover=1
        )
        serial = run_fleet(config, jobs=1)
        pooled = run_fleet(config, jobs=2)
        assert len(serial.shards) == 4
        assert serial.canonical_json() == pooled.canonical_json()


# ----------------------------------------------------------------------
# Workload-stream memoization (satellite)
# ----------------------------------------------------------------------


class TestWorkloadCache:
    def test_hit_and_miss_accounting(self):
        cache = WorkloadCache()
        first = cache.materialize("web", 0.02, 4, seed=7)
        again = cache.materialize("web", 0.02, 4, seed=7)
        other = cache.materialize("web", 0.02, 4, seed=8)
        assert first is again and first is not other
        assert cache.hits == 1 and cache.misses == 2
        assert cache.counters() == {
            "workload_cache.hits": 1,
            "workload_cache.misses": 2,
        }
        assert len(cache) == 2

    def test_materialize_matches_dataset(self):
        cache = WorkloadCache()
        stream = materialize_dataset("web", 0.02, 4, seed=7, cache=cache)
        plain = dataset("web", scale=0.02, num_backups=4, seed=7)
        assert [b.source for b in stream] == [b.source for b in plain]
        assert cache.misses == 1

    def test_fleet_counters_follow_stream_pool(self):
        result = run_fleet(small_fleet(), jobs=1)
        counters = result.metrics["counters"]
        hits = counters["runtime.workload_cache.hits"]
        misses = counters["runtime.workload_cache.misses"]
        assert hits + misses == result.num_tenants
        assert misses < result.num_tenants  # pool slots shared within a shard


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestCli:
    def test_smoke_with_out_json(self, tmp_path, capsys):
        out = tmp_path / "fleet.json"
        assert (
            fleet_main(
                [
                    "--preset", "quick",
                    "--tenants", "6",
                    "--shards", "2",
                    "--backups", "4",
                    "--workload-scale", "0.02",
                    "--jobs", "1",
                    "--verbose",
                    "--out", str(out),
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "fleet dedup ratio:" in captured.out
        assert "shard 0:" in captured.out
        data = json.loads(out.read_text())
        assert data["num_tenants"] == 6
        assert len(data["shards"]) == 2

    def test_rejects_bad_arguments(self):
        with pytest.raises(SystemExit):
            fleet_main(["--jobs", "0"])
        with pytest.raises(SystemExit):
            fleet_main(["--datasets", "web,unknown"])

    def test_domains_constant_matches_cli_choices(self):
        assert DEDUP_DOMAINS == ("shared", "tenant")


# ----------------------------------------------------------------------
# Incremental GC mode
# ----------------------------------------------------------------------


class TestIncrementalFleet:
    def test_gc_step_requests_only_in_incremental_mode(self):
        tenants = (TenantSpec("a", "web", 0.02, 6),)
        stw = shard_schedule(tenants, 3, 1, 1.0, 4.0, 7)
        inc = shard_schedule(
            tenants, 3, 1, 1.0, 4.0, 7, gc_mode="incremental", gc_step_period=0.5
        )
        assert all(request.kind != "gc_step" for request in stw)
        steps = [request for request in inc if request.kind == "gc_step"]
        assert steps
        # Stop-the-world schedules are bit-for-bit unaffected by the mode:
        # stripping the steps recovers the stw schedule exactly.
        assert [request for request in inc if request.kind != "gc_step"] == list(stw)
        # Steps never collide with an epoch instant (the epoch advances the
        # cycle itself) and always fall between rotate/gc and ingest.
        gc_times = {request.time for request in inc if request.kind == "gc"}
        assert all(request.time not in gc_times for request in steps)
        assert (
            KIND_PRIORITY["gc"]
            < KIND_PRIORITY["gc_step"]
            < KIND_PRIORITY["ingest"]
        )

    def test_gc_knob_validation(self):
        with pytest.raises(ConfigError):
            small_fleet(gc_mode="eager")
        with pytest.raises(ConfigError):
            small_fleet(gc_step_period=0.0)
        with pytest.raises(ConfigError):
            small_fleet(gc_mark_budget=0)
        with pytest.raises(ConfigError):
            small_fleet(gc_sweep_budget=0)
        with pytest.raises(ConfigError):
            small_fleet(gc_trigger_deleted=0)

    def test_plan_shards_threads_gc_knobs(self):
        config = small_fleet(
            gc_mode="incremental",
            gc_step_period=0.5,
            gc_mark_budget=5,
            gc_sweep_budget=3,
            gc_trigger_deleted=2,
        )
        for task in plan_shards(config):
            assert task.gc_mode == "incremental"
            assert task.gc_step_period == 0.5
            assert task.gc_mark_budget == 5
            assert task.gc_sweep_budget == 3
            assert task.gc_trigger_deleted == 2

    def test_incremental_parallel_matches_serial_byte_for_byte(self):
        config = small_fleet(gc_mode="incremental")
        serial = run_fleet(config, jobs=1)
        parallel = run_fleet(config, jobs=2)
        assert serial.canonical_json() == parallel.canonical_json()

    def test_incremental_executes_gc_steps(self):
        result = run_fleet(small_fleet(gc_mode="incremental"), jobs=1)
        requests = {}
        for shard in result.shards:
            for kind, count in shard.requests.items():
                requests[kind] = requests.get(kind, 0) + count
        assert requests.get("gc_step", 0) > 0
        assert result.metrics["counters"].get("gc.rounds", 0) > 0

    def test_incremental_matches_stw_final_storage(self):
        stw = run_fleet(small_fleet(), jobs=1)
        inc = run_fleet(small_fleet(gc_mode="incremental"), jobs=1)
        stw_counters = stw.metrics["counters"]
        inc_counters = inc.metrics["counters"]
        for name in (
            "service.physical_bytes",
            "service.cumulative_logical_bytes",
            "gc.rounds",
            "gc.backups_purged",
            "fleet.deleted_backups",
        ):
            assert inc_counters.get(name) == stw_counters.get(name), name
        # Mid-cycle ingests may dedup against chunks the open cycle has not
        # reclaimed yet (the live-reference barrier then revives them), so
        # incremental mode can only store *fewer* bytes — never more — and
        # correspondingly reclaims fewer.  Exact stop-the-world equality is
        # the drained (non-interleaved) contract, gated in
        # tests/test_incremental_gc.py and benchmarks/incgc.py.
        assert (
            inc_counters["service.cumulative_stored_bytes"]
            <= stw_counters["service.cumulative_stored_bytes"]
        )

    def test_stall_histogram_covers_every_ingest(self):
        result = run_fleet(small_fleet(gc_mode="incremental"), jobs=1)
        hist = result.metrics["histograms"]["fleet.ingest_stall"]
        assert hist["count"] == result.metrics["counters"]["ingest.backups"]
        quantiles = result.ingest_stall_quantiles()
        assert set(quantiles) == {"p50", "p90", "p99", "max"}
        assert (
            quantiles["p50"] <= quantiles["p90"] <= quantiles["p99"] <= quantiles["max"]
        )

    def test_shard_result_round_trips_stall_samples(self):
        result = ShardResult(shard_id=1, ingest_stalls=[0.5], gc_pauses=[0.1, 0.2])
        restored = ShardResult.from_dict(result.to_dict())
        assert restored.ingest_stalls == [0.5]
        assert restored.gc_pauses == [0.1, 0.2]
        # Payloads serialized before the stall model existed still load.
        legacy = result.to_dict()
        legacy.pop("ingest_stalls")
        legacy.pop("gc_pauses")
        assert ShardResult.from_dict(legacy).gc_pauses == []

    def test_unknown_preset_error_lists_valid_names(self, capsys):
        with pytest.raises(SystemExit):
            fleet_main(["--preset", "nope"])
        err = capsys.readouterr().err
        assert "unknown fleet preset 'nope'" in err
        for name in ("quick", "medium", "large"):
            assert name in err
