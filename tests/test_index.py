"""Unit tests for the fingerprint index and recipe store."""

import pytest

from repro.errors import (
    BackupAlreadyDeletedError,
    UnknownBackupError,
    UnknownChunkError,
)
from repro.hashing.fingerprints import synthetic_fingerprint
from repro.index.fingerprint_index import FingerprintIndex
from repro.index.recipe import Recipe, RecipeStore
from repro.model import ChunkRef


def fp(i: int) -> bytes:
    return synthetic_fingerprint("idx", i)


class TestFingerprintIndex:
    def test_insert_lookup_roundtrip(self):
        index = FingerprintIndex()
        index.insert(fp(1), container_id=7, size=100)
        placement = index.lookup(fp(1))
        assert placement is not None
        assert (placement.container_id, placement.size) == (7, 100)

    def test_lookup_miss_returns_none(self):
        assert FingerprintIndex().lookup(fp(1)) is None

    def test_get_raises_on_missing(self):
        with pytest.raises(UnknownChunkError):
            FingerprintIndex().get(fp(1))

    def test_relocate_preserves_size(self):
        index = FingerprintIndex()
        index.insert(fp(1), container_id=7, size=100)
        index.relocate(fp(1), container_id=9)
        placement = index.get(fp(1))
        assert (placement.container_id, placement.size) == (9, 100)

    def test_relocate_unknown_raises(self):
        with pytest.raises(UnknownChunkError):
            FingerprintIndex().relocate(fp(1), 3)

    def test_remove(self):
        index = FingerprintIndex()
        index.insert(fp(1), 1, 10)
        index.remove(fp(1))
        assert fp(1) not in index

    def test_remove_unknown_raises(self):
        with pytest.raises(UnknownChunkError):
            FingerprintIndex().remove(fp(1))

    def test_discard_is_idempotent(self):
        index = FingerprintIndex()
        index.discard(fp(1))  # no error
        index.insert(fp(1), 1, 10)
        index.discard(fp(1))
        index.discard(fp(1))
        assert len(index) == 0

    def test_hit_rate_tracking(self):
        index = FingerprintIndex()
        index.insert(fp(1), 1, 10)
        index.lookup(fp(1))
        index.lookup(fp(2))
        assert index.hit_rate == pytest.approx(0.5)

    def test_unique_bytes(self):
        index = FingerprintIndex()
        index.insert(fp(1), 1, 10)
        index.insert(fp(2), 1, 30)
        assert index.unique_bytes == 40


def make_recipe(store: RecipeStore, ids, source="src") -> Recipe:
    recipe = Recipe(
        backup_id=store.new_backup_id(),
        entries=tuple(ChunkRef(fp=fp(i), size=100) for i in ids),
        source=source,
    )
    store.add(recipe)
    return recipe


class TestRecipe:
    def test_logical_size_and_chunks(self):
        recipe = Recipe(backup_id=0, entries=tuple(ChunkRef(fp(i), 50) for i in range(4)))
        assert recipe.logical_size == 200
        assert recipe.num_chunks == 4

    def test_fingerprints_preserve_duplicates(self):
        entries = (ChunkRef(fp(1), 10), ChunkRef(fp(1), 10), ChunkRef(fp(2), 10))
        recipe = Recipe(backup_id=0, entries=entries)
        assert len(list(recipe.fingerprints())) == 3
        assert recipe.unique_fingerprints() == {fp(1), fp(2)}


class TestRecipeStore:
    def test_ids_are_sequential(self):
        store = RecipeStore()
        a = make_recipe(store, [1])
        b = make_recipe(store, [2])
        assert (a.backup_id, b.backup_id) == (0, 1)

    def test_duplicate_add_rejected(self):
        store = RecipeStore()
        recipe = make_recipe(store, [1])
        with pytest.raises(UnknownBackupError):
            store.add(recipe)

    def test_logical_deletion_keeps_recipe(self):
        store = RecipeStore()
        recipe = make_recipe(store, [1])
        store.mark_deleted(recipe.backup_id)
        assert not store.is_live(recipe.backup_id)
        assert store.is_deleted(recipe.backup_id)
        assert store.get(recipe.backup_id) is recipe  # still readable for GC

    def test_double_delete_rejected(self):
        store = RecipeStore()
        recipe = make_recipe(store, [1])
        store.mark_deleted(recipe.backup_id)
        with pytest.raises(BackupAlreadyDeletedError):
            store.mark_deleted(recipe.backup_id)

    def test_delete_unknown_rejected(self):
        with pytest.raises(UnknownBackupError):
            RecipeStore().mark_deleted(42)

    def test_purge_returns_and_clears(self):
        store = RecipeStore()
        a = make_recipe(store, [1])
        make_recipe(store, [2])
        store.mark_deleted(a.backup_id)
        purged = store.purge_deleted()
        assert [r.backup_id for r in purged] == [a.backup_id]
        assert store.deleted_ids() == []
        with pytest.raises(UnknownBackupError):
            store.get(a.backup_id)

    def test_live_ids_sorted_and_exclude_deleted(self):
        store = RecipeStore()
        ids = [make_recipe(store, [i]).backup_id for i in range(4)]
        store.mark_deleted(ids[1])
        assert store.live_ids() == [ids[0], ids[2], ids[3]]

    def test_len_counts_live_only(self):
        store = RecipeStore()
        a = make_recipe(store, [1])
        make_recipe(store, [2])
        store.mark_deleted(a.backup_id)
        assert len(store) == 1

    def test_live_logical_bytes(self):
        store = RecipeStore()
        make_recipe(store, [1, 2])
        make_recipe(store, [3])
        assert store.live_logical_bytes() == 300

    def test_referenced_fingerprints_union(self):
        store = RecipeStore()
        a = make_recipe(store, [1, 2])
        b = make_recipe(store, [2, 3])
        union = store.referenced_fingerprints([a.backup_id, b.backup_id])
        assert union == {fp(1), fp(2), fp(3)}
