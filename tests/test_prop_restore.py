"""Property-based invariants of restore accounting across memory models."""

from hypothesis import given, settings, strategies as st

from repro.backup.system import DedupBackupService
from repro.config import ChunkingConfig, RetentionConfig, SystemConfig
from repro.restore.assembly import AssemblyRestoreEngine
from repro.restore.engine import RestoreEngine

from tests.conftest import refs


def make_service() -> DedupBackupService:
    config = SystemConfig(
        container_size=4096,
        chunking=ChunkingConfig(min_size=128, avg_size=512, max_size=1024),
        retention=RetentionConfig(retained=8, turnover=2),
    )
    return DedupBackupService(config=config)


backup_plans = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=1, max_value=25),
    ),
    min_size=1,
    max_size=6,
)


def ingest_all(service, plans):
    last = None
    for start, length in plans:
        last = service.ingest(refs("pr", range(start, start + length)))
    return last


@given(backup_plans)
@settings(max_examples=60, deadline=None)
def test_read_once_amp_at_least_one(plans):
    service = make_service()
    ingest_all(service, plans)
    for backup_id in service.live_backup_ids():
        report = service.restore(backup_id)
        assert report.read_amplification >= 1.0 - 1e-9


@given(backup_plans)
@settings(max_examples=50, deadline=None)
def test_bounded_lru_never_beats_read_once(plans):
    service = make_service()
    ingest_all(service, plans)
    bounded = RestoreEngine(
        service.store, service.index, service.recipes, service.disk, cache_containers=2
    )
    for backup_id in service.live_backup_ids():
        read_once = service.restore(backup_id)
        pressured = bounded.restore(backup_id)
        assert pressured.container_bytes_read >= read_once.container_bytes_read


@given(backup_plans, st.integers(min_value=1, max_value=64))
@settings(max_examples=50, deadline=None)
def test_faa_never_beats_read_once(plans, area_chunks):
    service = make_service()
    last = ingest_all(service, plans)
    faa = AssemblyRestoreEngine(
        service.store,
        service.index,
        service.recipes,
        service.disk,
        assembly_bytes=area_chunks * 512,
    )
    read_once = service.restore(last.backup_id)
    assembled = faa.restore(last.backup_id)
    assert assembled.container_bytes_read >= read_once.container_bytes_read


@given(backup_plans)
@settings(max_examples=40, deadline=None)
def test_restore_time_matches_disk_charges(plans):
    """The report's read_seconds must equal the disk's accrued charge."""
    service = make_service()
    ingest_all(service, plans)
    for backup_id in service.live_backup_ids():
        before = service.disk.stats.read_seconds
        report = service.restore(backup_id)
        charged = service.disk.stats.read_seconds - before
        assert report.read_seconds == charged
