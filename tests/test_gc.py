"""Unit tests for the mark stage, VC tables, and naive mark–sweep GC."""

import pytest

from repro.backup.system import DedupBackupService
from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.gc.vc_table import BloomVCTable, ExactVCTable, make_vc_table
from repro.gc.mark import MarkStage
from repro.hashing.fingerprints import synthetic_fingerprint

from tests.conftest import refs


@pytest.fixture
def service(tiny_config) -> DedupBackupService:
    return DedupBackupService(config=tiny_config)


class TestVCTable:
    def test_exact_membership(self):
        table = ExactVCTable()
        table.add(b"k" * 24)
        assert b"k" * 24 in table
        assert b"j" * 24 not in table

    def test_bloom_no_false_negatives(self):
        table = BloomVCTable(expected_keys=100)
        keys = [synthetic_fingerprint("vc", i) + b"\x00" * 4 for i in range(100)]
        for key in keys:
            table.add(key)
        assert all(key in table for key in keys)

    def test_factory(self):
        assert isinstance(make_vc_table("exact", 10), ExactVCTable)
        assert isinstance(make_vc_table("bloom", 10), BloomVCTable)
        with pytest.raises(ConfigError):
            make_vc_table("trie", 10)

    def test_bloom_rejects_bad_capacity(self):
        with pytest.raises(ConfigError):
            BloomVCTable(expected_keys=0)


class TestMarkStage:
    def test_no_deletions_produces_empty_gs_list(self, service):
        service.ingest(refs("m", range(16)))
        mark = MarkStage(service.config, service.index, service.recipes, service.disk).run()
        assert mark.gs_list == ()
        assert mark.rrt == {}

    def test_gs_list_covers_deleted_references(self, service):
        first = service.ingest(refs("m", range(16)))
        service.ingest(refs("m", range(8, 24)))
        service.delete_backup(first.backup_id)
        mark = MarkStage(service.config, service.index, service.recipes, service.disk).run()
        # Every container holding a chunk of the deleted backup is involved.
        deleted_containers = {
            service.index.get(e.fp).container_id
            for e in service.recipes.get(first.backup_id).entries
        }
        assert set(mark.gs_list) == deleted_containers

    def test_vc_table_holds_live_keys_only(self, service):
        first = service.ingest(refs("m", range(8)))
        second = service.ingest(refs("m", range(4, 12)))
        service.delete_backup(first.backup_id)
        mark = MarkStage(service.config, service.index, service.recipes, service.disk).run()
        live_keys = {e.fp for e in service.recipes.get(second.backup_id).entries}
        dead_keys = {
            e.fp for e in service.recipes.get(first.backup_id).entries
        } - live_keys
        assert all(key in mark.vc_table for key in live_keys)
        assert all(key not in mark.vc_table for key in dead_keys)

    def test_rrt_maps_containers_to_live_referencers(self, service):
        first = service.ingest(refs("m", range(8)))
        second = service.ingest(refs("m", range(8)))  # full duplicate
        service.delete_backup(first.backup_id)
        mark = MarkStage(service.config, service.index, service.recipes, service.disk).run()
        for container_id in mark.gs_list:
            assert mark.rrt[container_id] == (second.backup_id,)

    def test_mark_charges_recipe_reads(self, service):
        service.ingest(refs("m", range(8)))
        before = service.disk.stats.read_bytes
        MarkStage(service.config, service.index, service.recipes, service.disk).run()
        assert service.disk.stats.read_bytes > before


class TestNaiveGC:
    def test_gc_without_deletions_is_noop(self, service):
        service.ingest(refs("g", range(16)))
        stored_before = service.store.stored_bytes
        report = service.run_gc()
        assert report.reclaimed_containers == 0
        assert report.produced_containers == 0
        assert service.store.stored_bytes == stored_before

    def test_gc_reclaims_unreferenced_space(self, service):
        first = service.ingest(refs("g", range(16)))
        service.ingest(refs("g", range(8, 24)))
        service.delete_backup(first.backup_id)
        stored_before = service.store.stored_bytes
        report = service.run_gc()
        assert report.reclaimed_bytes == 8 * 512  # chunks 0..7 died
        assert service.store.stored_bytes == stored_before - 8 * 512

    def test_fully_dead_containers_deleted_without_read(self, service):
        only = service.ingest(refs("g", range(16)))
        service.delete_backup(only.backup_id)
        before = service.disk.stats.read_bytes
        report = service.run_gc()
        # Mark reads recipes (metadata), but no container data is read
        # because nothing valid needed copying.
        assert report.produced_containers == 0
        assert report.sweep_read_seconds == 0.0
        assert len(service.store) == 0

    def test_survivors_remain_restorable_after_gc(self, service):
        first = service.ingest(refs("g", range(16)))
        second = service.ingest(refs("g", range(8, 24)))
        service.delete_backup(first.backup_id)
        service.run_gc()
        report = service.restore(second.backup_id)
        assert report.logical_bytes == 16 * 512

    def test_index_consistent_after_gc(self, service):
        first = service.ingest(refs("g", range(16)))
        second = service.ingest(refs("g", range(8, 24)))
        service.delete_backup(first.backup_id)
        service.run_gc()
        live_keys = {e.fp for e in service.recipes.get(second.backup_id).entries}
        assert set(k for k, _ in service.index.items()) == live_keys
        for key in live_keys:
            assert service.index.get(key).container_id in service.store

    def test_gc_purges_deleted_recipes(self, service):
        first = service.ingest(refs("g", range(8)))
        service.delete_backup(first.backup_id)
        report = service.run_gc()
        assert report.backups_purged == 1
        assert service.recipes.deleted_ids() == []

    def test_second_gc_after_no_changes_is_noop(self, service):
        first = service.ingest(refs("g", range(16)))
        service.ingest(refs("g", range(8, 24)))
        service.delete_backup(first.backup_id)
        service.run_gc()
        report = service.run_gc()
        assert report.reclaimed_containers == 0
        assert report.backups_purged == 0

    def test_report_round_indices_increment(self, service):
        service.ingest(refs("g", range(8)))
        a = service.run_gc()
        b = service.run_gc()
        assert (a.round_index, b.round_index) == (0, 1)
        assert service.gc_history == [a, b]

    def test_bloom_vc_table_never_drops_live_chunks(self, tiny_config):
        from dataclasses import replace

        config = replace(tiny_config, vc_table="bloom")
        service = DedupBackupService(config=config)
        first = service.ingest(refs("g", range(32)))
        second = service.ingest(refs("g", range(16, 48)))
        service.delete_backup(first.backup_id)
        service.run_gc()
        report = service.restore(second.backup_id)  # must not raise
        assert report.logical_bytes == 32 * 512

    def test_gc_report_summary_renders(self, service):
        service.ingest(refs("g", range(8)))
        report = service.run_gc()
        text = report.summary()
        assert "GC round 0" in text
        assert "containers" in text
