"""Cross-approach GC report semantics and MFDedup report mapping."""

import pytest

from repro.config import SystemConfig
from repro.gc.report import GCReport
from repro.mfdedup.engine import MFDedupService

from tests.conftest import refs


class TestGCReportSemantics:
    def test_total_includes_all_stages(self):
        report = GCReport(
            round_index=0,
            backups_purged=1,
            involved_containers=2,
            reclaimed_containers=1,
            produced_containers=1,
            migrated_bytes=10,
            reclaimed_bytes=20,
            migrated_chunks=3,
            mark_seconds=1.0,
            analyze_seconds=2.0,
            sweep_read_seconds=3.0,
            sweep_write_seconds=4.0,
        )
        assert report.total_seconds == pytest.approx(10.0)

    def test_cpu_seconds_default_zero(self):
        report = GCReport(
            round_index=0,
            backups_purged=0,
            involved_containers=0,
            reclaimed_containers=0,
            produced_containers=0,
            migrated_bytes=0,
            reclaimed_bytes=0,
            migrated_chunks=0,
            mark_seconds=0.0,
            analyze_seconds=0.0,
            sweep_read_seconds=0.0,
            sweep_write_seconds=0.0,
        )
        assert report.analyze_cpu_seconds == 0.0

    def test_frozen(self):
        report = GCReport(
            round_index=0,
            backups_purged=0,
            involved_containers=0,
            reclaimed_containers=0,
            produced_containers=0,
            migrated_bytes=0,
            reclaimed_bytes=0,
            migrated_chunks=0,
            mark_seconds=0.0,
            analyze_seconds=0.0,
            sweep_read_seconds=0.0,
            sweep_write_seconds=0.0,
        )
        with pytest.raises(AttributeError):
            report.migrated_bytes = 5


class TestMFDedupGCReportMapping:
    """MFDedup expresses deleted volume bytes in container units (Fig. 13)."""

    def test_container_equivalents_are_ceiling_division(self, tiny_config):
        service = MFDedupService(config=tiny_config)
        service.ingest(refs("m", range(20)))  # 10 240 B
        service.delete_backup(0)
        report = service.run_gc()
        # 20 × 512 B dropped; container = 4096 B → ceil(10240/4096) = 3.
        assert report.involved_containers == 3
        assert report.reclaimed_containers == 3
        assert report.produced_containers == 0
        assert report.reclaimed_bytes == 20 * 512

    def test_no_deletion_rounds_are_cheap(self, tiny_config):
        service = MFDedupService(config=tiny_config)
        service.ingest(refs("m", range(8)))
        report = service.run_gc()
        assert report.reclaimed_bytes == 0
        assert report.total_seconds == pytest.approx(0.0)

    def test_rounds_increment(self, tiny_config):
        service = MFDedupService(config=tiny_config)
        service.ingest(refs("m", range(8)))
        a = service.run_gc()
        b = service.run_gc()
        assert (a.round_index, b.round_index) == (0, 1)
        assert service.gc_history == [a, b]
