"""Hybrid inline/out-of-line dedup (`repro.dedup.hybrid`).

The contract under test: hybrid ingest classifies chunks with only a
neighbor-map/Bloom probe (never a full fingerprint-index lookup on the
miss path), stores neighbor-missed duplicates as fresh copies, and defers
them as candidates; the GC cycle coalesces those candidates onto their
canonical copies under a journaled ``rededup`` intent.  Once the backlog
drains, the system must be indistinguishable from inline dedup — same
live backups, same logical chunk streams, same physical bytes — in both
GC modes, and across a crash at the ``gc.rededup`` point.
"""

from __future__ import annotations

from array import array
from functools import lru_cache

import pytest
from hypothesis import given, settings, strategies as st

from repro.backup.approaches import APPROACHES, make_service
from repro.backup.driver import BackupSpec, RotationDriver
from repro.backup.options import ServiceOptions
from repro.backup.system import DedupBackupService
from repro.backup.verify import verify_service
from repro.config import SystemConfig
from repro.dedup.hybrid import repoint_recipe
from repro.dedup.keys import logical_fp
from repro.errors import ConfigError, SimulatedCrash
from repro.faults import FaultPlan, recover_service
from repro.fleet.topology import FleetConfig
from repro.gc.incremental import GCBudget
from repro.index.columnar import ColumnarRecipe
from repro.index.recipe import Recipe, RecipeStore
from repro.model import ChunkRef
from repro.workloads.datasets import dataset

from tests.conftest import refs

DATASET = "web"

#: Small budget so incremental runs take several increments per phase.
SMALL_BUDGET = GCBudget(mark_recipes=3, sweep_containers=2, rededup_keys=3)


def duplicated(backups) -> list[BackupSpec]:
    """Every backup replayed under two source names — the second copy
    neighbor-misses everything and becomes the deferred population."""
    out: list[BackupSpec] = []
    for spec in backups:
        out.append(BackupSpec(source=f"{spec.source}#a", chunks=spec.chunks))
        out.append(BackupSpec(source=f"{spec.source}#b", chunks=spec.chunks))
    return out


@lru_cache(maxsize=1)
def small_specs() -> tuple[BackupSpec, ...]:
    return tuple(dataset(DATASET, scale=0.03, num_backups=6))


def drain(service, rounds: int = 4) -> None:
    for _ in range(rounds):
        if not service.hybrid.candidates:
            return
        service.run_gc()


def live_streams(service) -> dict:
    return {
        backup_id: [
            (logical_fp(entry.fp), entry.size)
            for entry in service.recipes.get(backup_id).entries
        ]
        for backup_id in service.live_backup_ids()
    }


class TestConfigValidation:
    def test_service_options_rejects_unknown_dedup_mode(self):
        with pytest.raises(ConfigError, match="inline"):
            ServiceOptions(dedup_mode="bogus").validate()

    def test_service_rejects_unknown_dedup_mode(self, tiny_config):
        with pytest.raises(ConfigError, match="dedup_mode"):
            DedupBackupService(config=tiny_config, dedup_mode="bogus")

    def test_service_rejects_unknown_gc_mode(self, tiny_config):
        with pytest.raises(ConfigError, match="gc_mode"):
            DedupBackupService(config=tiny_config, gc_mode="bogus")

    def test_fleet_config_rejects_unknown_dedup_mode(self):
        with pytest.raises(ConfigError, match="dedup_mode"):
            FleetConfig.synthetic(4, 2, dedup_mode="bogus")

    def test_every_approach_accepts_hybrid(self, scaled_config):
        # A uniform CLI surface: every approach constructs with
        # dedup_mode="hybrid".  Rewriting policies are attached after
        # construction, so their services carry hybrid state too — the
        # pipeline dispatch falls back to inline at ingest time and the
        # state stays inert (gated below in test_rewriting_fallback_is_inert).
        for approach in APPROACHES:
            service = make_service(
                approach, scaled_config, ServiceOptions(dedup_mode="hybrid")
            )
            hybrid = getattr(service, "hybrid", None)
            if approach in ("nondedup", "mfdedup"):
                assert hybrid is None, approach
            else:
                assert hybrid is not None, approach

    def test_rewriting_fallback_is_inert(self, scaled_config):
        # Capping's pipeline needs the full inline duplicate verdict per
        # chunk, so hybrid mode must neither defer nor skip index probes.
        service = make_service(
            "capping", scaled_config, ServiceOptions(dedup_mode="hybrid")
        )
        stream = refs("fallback", range(8))
        service.ingest(stream, source="a")
        service.ingest(stream, source="b")
        assert service.hybrid.deferred == 0
        assert not service.hybrid.candidates
        assert service.pipeline.logical.lookups > 0


class TestHybridIngest:
    def test_cross_source_duplicates_deferred(self, tiny_config):
        service = DedupBackupService(config=tiny_config, dedup_mode="hybrid")
        stream = refs("hyb", range(8))
        service.ingest(stream, source="a")
        service.ingest(stream, source="b")
        # Source "b" has no neighbor window; the ingest Bloom says
        # maybe-seen, so every chunk is stored fresh and deferred.
        assert service.hybrid.deferred == 8
        assert len(service.hybrid.candidates) == 8
        assert service.runtime_metrics()["hybrid.pending"] == 8

    def test_hybrid_never_probes_logical_index(self, tiny_config):
        service = DedupBackupService(config=tiny_config, dedup_mode="hybrid")
        stream = refs("hyb", range(8))
        service.ingest(stream, source="a")
        service.ingest(stream, source="b")
        assert service.pipeline.logical.lookups == 0

    def test_same_source_duplicates_hit_neighbor_window(self, tiny_config):
        service = DedupBackupService(config=tiny_config, dedup_mode="hybrid")
        stream = refs("hyb", range(8))
        service.ingest(stream, source="a")
        before = service.stats().physical_bytes
        service.ingest(stream, source="a")
        # The previous backup's map catches every chunk: one validating
        # index probe each, no new copies, nothing deferred.
        assert service.hybrid.neighbor_hits == 8
        assert service.hybrid.deferred == 0
        assert service.stats().physical_bytes == before

    def test_fresh_chunks_pass_the_filter_unstored_elsewhere(self, tiny_config):
        service = DedupBackupService(config=tiny_config, dedup_mode="hybrid")
        service.ingest(refs("hyb", range(8)), source="a")
        assert service.hybrid.filter_new == 8
        assert not service.hybrid.candidates

    def test_inline_service_has_no_hybrid_metrics(self, tiny_config):
        service = DedupBackupService(config=tiny_config)
        assert service.hybrid is None
        assert not any(k.startswith("hybrid.") for k in service.runtime_metrics())


class TestRededup:
    @pytest.mark.parametrize("gc_mode", ["stw", "incremental"])
    def test_gc_coalesces_deferred_duplicates(self, tiny_config, gc_mode):
        budget = SMALL_BUDGET if gc_mode == "incremental" else None
        service = DedupBackupService(
            config=tiny_config, dedup_mode="hybrid", gc_mode=gc_mode, gc_budget=budget
        )
        inline = DedupBackupService(config=tiny_config, gc_mode=gc_mode, gc_budget=budget)
        stream = refs("hyb", range(8))
        for peer in (service, inline):
            peer.ingest(stream, source="a")
            peer.ingest(stream, source="b")
        service.run_gc()
        drain(service)
        inline.run_gc()
        assert service.hybrid.coalesced == 8
        assert not service.hybrid.candidates
        assert service.stats().physical_bytes == inline.stats().physical_bytes
        assert live_streams(service) == live_streams(inline)
        assert verify_service(service).errors == []

    def test_dead_candidates_dropped_after_sweep(self, tiny_config):
        service = DedupBackupService(config=tiny_config, dedup_mode="hybrid")
        stream = refs("hyb", range(8))
        service.ingest(stream, source="a")
        second = service.ingest(stream, source="b")
        service.delete_backup(second.backup_id)
        # First GC: the candidates' only referer is dead, so they stay
        # idle while the sweep reclaims their copies; the next GC sees
        # them gone from the index and drops them.
        service.run_gc()
        service.run_gc()
        assert not service.hybrid.candidates
        assert service.hybrid.dropped == 8
        assert service.hybrid.coalesced == 0
        assert verify_service(service).errors == []

    def test_candidate_without_older_copy_promoted(self, tiny_config):
        service = DedupBackupService(config=tiny_config, dedup_mode="hybrid")
        stream = refs("hyb", range(8))
        first = service.ingest(stream, source="a")
        service.delete_backup(first.backup_id)
        service.run_gc()
        # The filter still remembers the reclaimed fingerprints, so the
        # re-ingest defers every chunk — but no older copy exists, so the
        # candidates are promoted to canonical, not coalesced.
        service.ingest(stream, source="b")
        assert len(service.hybrid.candidates) == 8
        service.run_gc()
        assert service.hybrid.promoted == 8
        assert not service.hybrid.candidates
        assert verify_service(service).errors == []

    def test_repoint_recipe_legacy_tuple(self):
        recipes = RecipeStore()
        dup, canonical, other = b"d" * 24, b"c" * 24, b"o" * 24
        recipes.add(
            Recipe(
                backup_id=recipes.new_backup_id(),
                entries=(
                    ChunkRef(fp=dup, size=10),
                    ChunkRef(fp=other, size=20),
                    ChunkRef(fp=dup, size=30),
                ),
                source="s",
            )
        )
        assert repoint_recipe(recipes, 0, dup, canonical) == 2
        entries = recipes.get(0).entries
        assert [entry.fp for entry in entries] == [canonical, other, canonical]
        assert [entry.size for entry in entries] == [10, 20, 30]
        # Replays are idempotent: nothing references the dup any more.
        assert repoint_recipe(recipes, 0, dup, canonical) == 0

    def test_repoint_recipe_columnar(self):
        recipes = RecipeStore()
        dup, canonical, other = b"d" * 24, b"c" * 24, b"o" * 24
        interner = recipes.interner
        ids = array("q", [interner.intern(dup), interner.intern(other)])
        recipes.add(
            ColumnarRecipe(
                recipes.new_backup_id(), interner, ids, array("q", [10, 20]), source="s"
            )
        )
        assert repoint_recipe(recipes, 0, dup, canonical) == 1
        rebuilt = recipes.get(0)
        assert [entry.fp for entry in rebuilt.entries] == [canonical, other]
        assert repoint_recipe(recipes, 0, dup, canonical) == 0


class TestDrainedEquivalenceProperty:
    @settings(max_examples=8, deadline=None)
    @given(
        order=st.permutations(list(range(6))),
        sources=st.lists(
            st.sampled_from(["s0", "s1", "s2"]), min_size=6, max_size=6
        ),
        deletions=st.integers(min_value=0, max_value=3),
    )
    def test_hybrid_drained_equals_inline(self, order, sources, deletions):
        # Any ingest order, any source assignment, any deletion prefix:
        # after GC drains the deferred backlog, hybrid is inline.
        specs = small_specs()
        config = SystemConfig.scaled(retained=10, turnover=3)
        services = {
            "inline": make_service("naive", config, ServiceOptions()),
            "hybrid": make_service(
                "naive", config, ServiceOptions(dedup_mode="hybrid")
            ),
        }
        for service in services.values():
            for position, spec_index in enumerate(order):
                service.ingest(specs[spec_index].chunks, source=sources[position])
            for backup_id in service.live_backup_ids()[:deletions]:
                service.delete_backup(backup_id)
            service.run_gc()
        drain(services["hybrid"])
        assert (
            services["hybrid"].live_backup_ids()
            == services["inline"].live_backup_ids()
        )
        assert live_streams(services["hybrid"]) == live_streams(services["inline"])
        assert (
            services["hybrid"].stats().physical_bytes
            == services["inline"].stats().physical_bytes
        )
        assert verify_service(services["hybrid"]).errors == []


class TestRededupCrashRecovery:
    @pytest.mark.parametrize("gc_mode", ["stw", "incremental"])
    @pytest.mark.parametrize("occurrence", [1, 2])
    def test_crash_recover_resume(self, gc_mode, occurrence):
        plan = FaultPlan.single("gc.rededup", occurrence=occurrence)
        budget = SMALL_BUDGET if gc_mode == "incremental" else None
        config = SystemConfig.scaled(retained=10, turnover=3)
        service = make_service(
            "naive",
            config,
            ServiceOptions(
                faults=plan, dedup_mode="hybrid", gc_mode=gc_mode, gc_budget=budget
            ),
        )
        driver = RotationDriver(service, config.retention, dataset_name=DATASET)
        with pytest.raises(SimulatedCrash) as exc:
            driver.run(duplicated(dataset(DATASET, scale=0.05, num_backups=12)))
        assert exc.value.point == "gc.rededup"

        report = recover_service(service)
        assert report.replayed >= 1  # the rededup intent rolls forward
        assert verify_service(service).errors == []

        # The survived system keeps operating: restores stay clean, GC
        # resumes (finishing the in-flight incremental cycle) and the
        # deferred backlog still drains to nothing.
        for backup_id in service.live_backup_ids():
            service.restore(backup_id)
        service.run_gc()
        drain(service)
        assert not service.hybrid.candidates
        assert verify_service(service).errors == []
        assert len(service.store.journal) == 0
