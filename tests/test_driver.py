"""Tests for the rotation driver (the §6.1 evaluation protocol)."""

import pytest

from repro.backup.approaches import make_service
from repro.backup.driver import BackupSpec, RotationDriver
from repro.config import RetentionConfig, SystemConfig

from tests.conftest import refs


def specs(count: int, churn: int = 2, size: int = 16) -> list[BackupSpec]:
    """`count` backups of `size` chunks; each shifts by `churn` chunks."""
    return [
        BackupSpec(
            source="s",
            chunks=tuple(refs("d", range(i * churn, i * churn + size))),
        )
        for i in range(count)
    ]


def run(count: int, retained=6, turnover=2, approach="naive"):
    config = SystemConfig.scaled(retained=retained, turnover=turnover)
    service = make_service(approach, config)
    driver = RotationDriver(service, config.retention, dataset_name="unit")
    return driver.run(specs(count)), service


class TestProtocolStructure:
    def test_round_count_matches_paper_rule(self):
        """120 backups, retain 100, turnover 20 → 2 GC rounds (paper §6.4);
        scaled here: 12 backups, retain 6, turnover 2 → (12-6)/2 + 1 = 4."""
        result, _ = run(12)
        assert len(result.gc_reports) == 4

    def test_final_retained_count(self):
        result, service = run(12, retained=6, turnover=2)
        assert len(service.live_backup_ids()) == 4  # retained - turnover
        assert len(result.restore_reports) == 4

    def test_exact_window_dataset_gets_final_round_only(self):
        result, service = run(6, retained=6, turnover=2)
        assert len(result.gc_reports) == 1
        assert len(service.live_backup_ids()) == 4

    def test_short_dataset_still_runs(self):
        result, service = run(3, retained=6, turnover=2)
        assert len(result.ingest_reports) == 3
        assert len(result.restore_reports) == 1  # 3 - 2 deleted

    def test_all_ingests_recorded(self):
        result, _ = run(12)
        assert len(result.ingest_reports) == 12

    def test_restores_are_of_live_backups_oldest_first(self):
        result, service = run(12)
        assert [r.backup_id for r in result.restore_reports] == service.live_backup_ids()


class TestResultAggregates:
    def test_dedup_ratio_copied_from_service(self):
        result, service = run(12)
        assert result.dedup_ratio == pytest.approx(service.dedup_ratio)

    def test_mean_read_amplification(self):
        result, _ = run(12)
        amps = [r.read_amplification for r in result.restore_reports]
        assert result.mean_read_amplification == pytest.approx(sum(amps) / len(amps))

    def test_restore_speed_weighted_by_bytes(self):
        result, _ = run(12)
        total_bytes = sum(r.logical_bytes for r in result.restore_reports)
        total_seconds = sum(r.read_seconds for r in result.restore_reports)
        assert result.restore_speed == pytest.approx(total_bytes / total_seconds)

    def test_gc_total_seconds(self):
        result, _ = run(12)
        assert result.gc_total_seconds == pytest.approx(
            sum(r.total_seconds for r in result.gc_reports)
        )

    def test_empty_result_aggregates(self):
        from repro.backup.driver import RotationResult

        empty = RotationResult(approach="x", dataset="y")
        assert empty.mean_read_amplification == 0.0
        assert empty.restore_speed == 0.0

    def test_backup_spec_logical_bytes(self):
        spec = BackupSpec(source="s", chunks=tuple(refs("d", range(4))))
        assert spec.logical_bytes == 4 * 512


class TestDriverAcrossApproaches:
    @pytest.mark.parametrize("approach", ["naive", "gccdf", "mfdedup", "nondedup"])
    def test_protocol_completes(self, approach):
        result, _ = run(10, approach=approach)
        assert result.approach == approach
        assert result.restore_reports
