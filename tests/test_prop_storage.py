"""Property-based invariants of the container writer and store."""

from hypothesis import given, settings, strategies as st

from repro.errors import SimulatedCrash
from repro.faults import FaultPlan, recover
from repro.hashing.fingerprints import synthetic_fingerprint
from repro.index.fingerprint_index import FingerprintIndex
from repro.index.recipe import RecipeStore
from repro.model import ChunkRef
from repro.simio.disk import DiskModel
from repro.storage.store import ContainerStore
from repro.storage.writer import ContainerWriter

CAPACITY = 2048

chunk_sizes = st.lists(
    st.integers(min_value=1, max_value=CAPACITY), min_size=0, max_size=60
)


def write_all(sizes):
    store = ContainerStore(capacity=CAPACITY, disk=DiskModel())
    writer = ContainerWriter(store)
    placements = []
    for index, size in enumerate(sizes):
        ref = ChunkRef(fp=synthetic_fingerprint("ps", index), size=size)
        placements.append((ref, writer.append(ref)))
    writer.flush()
    return store, placements


@given(chunk_sizes)
@settings(max_examples=80)
def test_no_container_exceeds_capacity(sizes):
    store, _ = write_all(sizes)
    assert all(c.used_bytes <= CAPACITY for c in store.containers())


@given(chunk_sizes)
@settings(max_examples=80)
def test_every_chunk_lands_where_reported(sizes):
    store, placements = write_all(sizes)
    for ref, container_id in placements:
        assert ref.fp in store.peek(container_id).fingerprints()


@given(chunk_sizes)
@settings(max_examples=80)
def test_total_bytes_conserved(sizes):
    store, _ = write_all(sizes)
    assert store.stored_bytes == sum(sizes)


@given(chunk_sizes)
@settings(max_examples=50)
def test_stream_order_preserved_within_and_across_containers(sizes):
    """Reading containers in id order replays the append order exactly."""
    store, placements = write_all(sizes)
    replayed = [entry.fp for container in store.containers() for entry in container]
    assert replayed == [ref.fp for ref, _ in placements]


@given(chunk_sizes, st.integers(min_value=1, max_value=6))
@settings(max_examples=60)
def test_torn_write_recovery_keeps_durable_prefix(sizes, occurrence):
    """Arm a torn container write at an arbitrary commit: after recovery
    the store holds exactly the durable prefix of the append order, every
    retained container is intact, and the journal is empty."""
    disk = DiskModel(faults=FaultPlan.single("store.commit.torn", occurrence))
    store = ContainerStore(capacity=CAPACITY, disk=disk)
    writer = ContainerWriter(store)
    appended = []
    crashed = False
    try:
        for index, size in enumerate(sizes):
            ref = ChunkRef(fp=synthetic_fingerprint("pf", index), size=size)
            writer.append(ref)
            appended.append(ref)
        writer.flush()
    except SimulatedCrash:
        crashed = True
        recover(store, FingerprintIndex(), RecipeStore())

    assert len(store.journal) == 0
    replayed = [entry.fp for container in store.containers() for entry in container]
    assert replayed == [ref.fp for ref in appended[: len(replayed)]]
    assert all(c.used_bytes <= CAPACITY for c in store.containers())
    if not crashed:
        assert replayed == [ref.fp for ref in appended]


@given(chunk_sizes)
@settings(max_examples=50)
def test_packing_is_first_fit_dense(sizes):
    """The writer seals only when the next chunk would not fit, so every
    sealed container (except possibly the last) could not have absorbed the
    first chunk of its successor."""
    store, _ = write_all(sizes)
    containers = list(store.containers())
    for current, following in zip(containers, containers[1:]):
        if following.entries:
            first_next = following.entries[0].size
            assert current.used_bytes + first_next > CAPACITY
