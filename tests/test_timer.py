"""Tests for the Stopwatch used in GC analyze accounting."""

import pytest

from repro.util.timer import Stopwatch


class TestStopwatch:
    def test_accumulates_across_regions(self):
        watch = Stopwatch()
        watch.start()
        first = watch.stop()
        watch.start()
        second = watch.stop()
        assert watch.elapsed == pytest.approx(first + second)
        assert first >= 0 and second >= 0

    def test_context_manager(self):
        watch = Stopwatch()
        with watch.timed():
            pass
        assert watch.elapsed >= 0
        assert watch._started_at is None

    def test_context_manager_stops_on_exception(self):
        watch = Stopwatch()
        with pytest.raises(RuntimeError, match="boom"):
            with watch.timed():
                raise RuntimeError("boom")
        # The region was closed despite the exception.
        watch.start()
        watch.stop()

    def test_nested_start_rejected(self):
        watch = Stopwatch()
        watch.start()
        with pytest.raises(RuntimeError):
            watch.start()
        watch.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        watch = Stopwatch()
        with watch.timed():
            pass
        watch.reset()
        assert watch.elapsed == 0.0

    def test_reset_while_running_rejected(self):
        watch = Stopwatch()
        watch.start()
        with pytest.raises(RuntimeError):
            watch.reset()
        watch.stop()
