"""Unit tests for the Capping, HAR and SMR rewriting policies."""

import pytest

from repro.dedup.pipeline import IngestPipeline
from repro.dedup.rewriting import (
    CappingRewriting,
    HARRewriting,
    NullRewriting,
    SMRRewriting,
    make_rewriting,
)
from repro.dedup.rewriting.base import IngestEntry
from repro.errors import ConfigError
from repro.index.fingerprint_index import FingerprintIndex
from repro.index.recipe import RecipeStore
from repro.simio.disk import DiskModel
from repro.storage.store import ContainerStore

from tests.conftest import refs


def make_store(capacity=4096) -> ContainerStore:
    return ContainerStore(capacity=capacity, disk=DiskModel())


def entry(i: int, container_id=None, size=512) -> IngestEntry:
    ref = refs("rw", [i], size=size)[0]
    item = IngestEntry(fp=ref.fp, size=size)
    if container_id is not None:
        item.duplicate = True
        item.existing_key = ref.fp + b"\x00" * 4
        item.container_id = container_id
    return item


class TestRegistry:
    def test_known_names(self):
        store = make_store()
        assert isinstance(make_rewriting("none", store), NullRewriting)
        assert isinstance(make_rewriting("capping", store), CappingRewriting)
        assert isinstance(make_rewriting("har", store), HARRewriting)
        assert isinstance(make_rewriting("smr", store), SMRRewriting)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_rewriting("zfs", make_store())

    def test_kwargs_forwarded(self):
        policy = make_rewriting("capping", make_store(), cap=3)
        assert policy.cap == 3


class TestNullRewriting:
    def test_passthrough_without_rewrites(self):
        policy = NullRewriting()
        item = entry(1, container_id=5)
        (out,) = policy.feed(item)
        assert out is item
        assert not out.rewrite
        assert list(policy.flush()) == []


class TestCapping:
    def test_rewrites_beyond_cap(self):
        """3 referenced old containers with cap 2 → weakest one rewritten."""
        policy = CappingRewriting(make_store(capacity=4096), cap=2, segment_containers=1)
        items = (
            [entry(i, container_id=1) for i in range(3)]
            + [entry(10 + i, container_id=2) for i in range(2)]
            + [entry(20, container_id=3)]
        )
        out = []
        for item in items:
            out.extend(policy.feed(item))
        out.extend(policy.flush())
        by_container = {
            cid: [o.rewrite for o in out if o.container_id == cid] for cid in (1, 2, 3)
        }
        assert not any(by_container[1])  # strongest: kept
        assert not any(by_container[2])
        assert all(by_container[3])  # weakest: rewritten

    def test_under_cap_never_rewrites(self):
        policy = CappingRewriting(make_store(), cap=5, segment_containers=1)
        out = list(policy.feed(entry(1, container_id=1))) + list(policy.flush())
        assert not any(o.rewrite for o in out)

    def test_segment_boundary_triggers_decision(self):
        """Entries are released once a full segment of bytes is buffered."""
        store = make_store(capacity=1024)
        policy = CappingRewriting(store, cap=1, segment_containers=1)
        released = []
        for i in range(4):  # 4 × 512 B > 1 segment (1024 B)
            released.extend(policy.feed(entry(i, size=512)))
        assert released  # something came out before flush

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            CappingRewriting(make_store(), cap=0)
        with pytest.raises(ConfigError):
            CappingRewriting(make_store(), segment_containers=0)


def _ingest_rounds(policy, store, streams):
    """Drive real ingest rounds through a pipeline using `policy`."""
    index = FingerprintIndex()
    recipes = RecipeStore()
    pipeline = IngestPipeline(store, index, recipes, rewriting=policy)
    return [pipeline.ingest(s) for s in streams]


class TestHAR:
    def test_sparse_container_rewritten_next_backup(self):
        store = make_store(capacity=4096)
        policy = HARRewriting(store, utilization_threshold=0.5)
        # Backup 1: 8 chunks → one full container.
        # Backup 2: references only 2 of them (25 % < 50 % → sparse).
        # Backup 3: references the same 2 → rewritten now.
        results = _ingest_rounds(
            policy,
            store,
            [refs("h", range(8)), refs("h", [0, 1]), refs("h", [0, 1])],
        )
        assert results[1].rewritten_bytes == 0  # observation round
        assert results[2].rewritten_bytes == 2 * 512  # action round

    def test_dense_container_not_rewritten(self):
        store = make_store(capacity=4096)
        policy = HARRewriting(store, utilization_threshold=0.5)
        results = _ingest_rounds(
            policy,
            store,
            [refs("h", range(8)), refs("h", range(6)), refs("h", range(6))],
        )
        assert results[2].rewritten_bytes == 0

    def test_records_persist_across_intervening_backups(self):
        """Multi-source pattern: the sparse observation from backup 2 must
        still fire on backup 4, despite unrelated backup 3 in between."""
        store = make_store(capacity=4096)
        policy = HARRewriting(store, utilization_threshold=0.5)
        results = _ingest_rounds(
            policy,
            store,
            [
                refs("h", range(8)),     # source A
                refs("h", [0, 1]),       # source A: observes sparsity
                refs("other", range(8)),  # source B: unrelated
                refs("h", [0, 1]),       # source A: must rewrite
            ],
        )
        assert results[3].rewritten_bytes == 2 * 512

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigError):
            HARRewriting(make_store(), utilization_threshold=0.0)
        with pytest.raises(ConfigError):
            HARRewriting(make_store(), utilization_threshold=1.5)


class TestSMR:
    def test_rewrites_worst_utilized_within_budget(self):
        store = make_store(capacity=4096)
        policy = SMRRewriting(
            store, utility_threshold=0.9, rewrite_budget=1.0, segment_containers=4
        )
        results = _ingest_rounds(
            policy,
            store,
            [refs("s", range(8)), refs("s", [0])],  # 1/8 referenced: terrible utility
        )
        assert results[1].rewritten_bytes == 512

    def test_budget_zero_never_rewrites(self):
        store = make_store(capacity=4096)
        policy = SMRRewriting(store, rewrite_budget=0.0)
        results = _ingest_rounds(
            policy, store, [refs("s", range(8)), refs("s", [0])]
        )
        assert results[1].rewritten_bytes == 0

    def test_well_utilized_containers_spared(self):
        store = make_store(capacity=4096)
        policy = SMRRewriting(store, utility_threshold=0.3, rewrite_budget=1.0)
        results = _ingest_rounds(
            policy, store, [refs("s", range(8)), refs("s", range(8))]
        )
        assert results[1].rewritten_bytes == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            SMRRewriting(make_store(), utility_threshold=0.0)
        with pytest.raises(ConfigError):
            SMRRewriting(make_store(), rewrite_budget=1.5)
        with pytest.raises(ConfigError):
            SMRRewriting(make_store(), segment_containers=0)
