"""Shared fixtures and stream builders for the test suite."""

from __future__ import annotations

import pytest

from repro.config import ChunkingConfig, RetentionConfig, SystemConfig
from repro.hashing.fingerprints import synthetic_fingerprint
from repro.model import ChunkRef


@pytest.fixture
def tiny_config() -> SystemConfig:
    """A small geometry: 4 KiB containers, ~512 B chunks (8 per container)."""
    config = SystemConfig(
        container_size=4096,
        chunking=ChunkingConfig(min_size=128, avg_size=512, max_size=1024),
        retention=RetentionConfig(retained=6, turnover=2),
    )
    config.validate()
    return config


@pytest.fixture
def scaled_config() -> SystemConfig:
    """The library's scaled preset with a small retention window."""
    return SystemConfig.scaled(retained=10, turnover=3)


def refs(namespace: str, ids, version: int = 0, size: int = 512) -> list[ChunkRef]:
    """Chunk references for logical ids; same (namespace, id, version) →
    same fingerprint, so streams built here deduplicate predictably."""
    return [
        ChunkRef(fp=synthetic_fingerprint(namespace, i, version), size=size)
        for i in ids
    ]


def stream_bytes(stream) -> int:
    return sum(ref.size for ref in stream)
