"""Unit tests for FastCDC, fixed chunking, and the stream helpers."""

import io

import pytest

from repro.chunking.base import chunk_stream, reassemble, split
from repro.chunking.fastcdc import FastCDC
from repro.chunking.fixed import FixedChunker
from repro.chunking.gear import gear_table
from repro.config import ChunkingConfig
from repro.errors import ChunkingError
from repro.util.rng import DeterministicRng


def random_bytes(n: int, seed: int = 1) -> bytes:
    rng = DeterministicRng(seed)
    return bytes(rng.randint(0, 255) for _ in range(n))


SMALL_CONFIG = ChunkingConfig(min_size=64, avg_size=256, max_size=1024)


class TestGearTable:
    def test_length_and_width(self):
        table = gear_table(123)
        assert len(table) == 256
        assert all(0 <= v < 1 << 64 for v in table)

    def test_seed_determinism(self):
        assert gear_table(1) == gear_table(1)
        assert gear_table(1) != gear_table(2)


class TestFastCDC:
    def test_reassembly_is_identity(self):
        data = random_bytes(50_000)
        chunks = list(split(FastCDC(SMALL_CONFIG), data))
        assert reassemble(chunks) == data

    def test_size_bounds(self):
        data = random_bytes(100_000)
        chunks = list(split(FastCDC(SMALL_CONFIG), data))
        # Every chunk except the last respects the minimum.
        assert all(c.size >= SMALL_CONFIG.min_size for c in chunks[:-1])
        assert all(c.size <= SMALL_CONFIG.max_size for c in chunks)

    def test_average_size_near_target(self):
        data = random_bytes(400_000)
        chunks = list(split(FastCDC(SMALL_CONFIG), data))
        mean = sum(c.size for c in chunks) / len(chunks)
        assert SMALL_CONFIG.avg_size * 0.5 <= mean <= SMALL_CONFIG.avg_size * 2.0

    def test_determinism(self):
        data = random_bytes(30_000)
        first = [c.ref for c in split(FastCDC(SMALL_CONFIG), data)]
        second = [c.ref for c in split(FastCDC(SMALL_CONFIG), data)]
        assert first == second

    def test_boundary_shift_resistance(self):
        """Inserting a prefix must leave most downstream chunks intact —
        the CDC property that fixed-size chunking lacks (paper §5.5)."""
        data = random_bytes(120_000)
        shifted = random_bytes(137, seed=2) + data
        cdc = FastCDC(SMALL_CONFIG)
        original = {c.fp for c in split(cdc, data)}
        after = {c.fp for c in split(cdc, shifted)}
        shared = len(original & after)
        assert shared / len(original) > 0.8

    def test_fixed_chunking_suffers_boundary_shift(self):
        data = random_bytes(120_000)
        shifted = random_bytes(137, seed=2) + data
        fixed = FixedChunker(256)
        original = {c.fp for c in split(fixed, data)}
        after = {c.fp for c in split(fixed, shifted)}
        shared = len(original & after)
        assert shared / len(original) < 0.2

    def test_tiny_input_single_chunk(self):
        data = b"abc"
        chunks = list(split(FastCDC(SMALL_CONFIG), data))
        assert len(chunks) == 1
        assert chunks[0].data == data

    def test_empty_input_yields_nothing(self):
        assert list(split(FastCDC(SMALL_CONFIG), b"")) == []

    def test_rejects_negative_normalization(self):
        with pytest.raises(ChunkingError):
            FastCDC(SMALL_CONFIG, normalization=-1)

    def test_cut_rejects_empty_window(self):
        with pytest.raises(ChunkingError):
            FastCDC(SMALL_CONFIG).cut(b"abc", 2, 2)


class TestFixedChunker:
    def test_exact_division(self):
        chunks = list(split(FixedChunker(100), bytes(1000)))
        assert [c.size for c in chunks] == [100] * 10

    def test_remainder_chunk(self):
        chunks = list(split(FixedChunker(300), bytes(1000)))
        assert [c.size for c in chunks] == [300, 300, 300, 100]

    def test_rejects_zero_size(self):
        with pytest.raises(ChunkingError):
            FixedChunker(0)


class TestChunkStream:
    def test_streamed_equals_whole_buffer(self):
        data = random_bytes(200_000)
        cdc = FastCDC(SMALL_CONFIG)
        whole = [c.ref for c in split(cdc, data)]
        streamed = [
            c.ref for c in chunk_stream(cdc, io.BytesIO(data), read_size=4096)
        ]
        assert streamed == whole

    def test_streamed_reassembles(self):
        data = random_bytes(70_000)
        cdc = FastCDC(SMALL_CONFIG)
        assert reassemble(chunk_stream(cdc, io.BytesIO(data))) == data

    def test_empty_stream(self):
        cdc = FastCDC(SMALL_CONFIG)
        assert list(chunk_stream(cdc, io.BytesIO(b""))) == []

    def test_rejects_bad_read_size(self):
        cdc = FastCDC(SMALL_CONFIG)
        with pytest.raises(ChunkingError):
            list(chunk_stream(cdc, io.BytesIO(b"data"), read_size=0))
