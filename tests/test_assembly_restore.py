"""Tests for the forward-assembly-area restore engine."""

import pytest

from repro.backup.system import DedupBackupService
from repro.errors import ConfigError
from repro.restore.assembly import AssemblyRestoreEngine

from tests.conftest import refs


@pytest.fixture
def service(tiny_config) -> DedupBackupService:
    return DedupBackupService(config=tiny_config)


def engine(service, assembly_bytes) -> AssemblyRestoreEngine:
    return AssemblyRestoreEngine(
        store=service.store,
        index=service.index,
        recipes=service.recipes,
        disk=service.disk,
        assembly_bytes=assembly_bytes,
    )


class TestAssemblyRestore:
    def test_large_area_matches_read_once_model(self, service):
        """An FAA covering the whole backup equals the default engine."""
        result = service.ingest(refs("a", range(64)))
        faa = engine(service, assembly_bytes=64 * 512).restore(result.backup_id)
        read_once = service.restore(result.backup_id)
        assert faa.container_bytes_read == read_once.container_bytes_read
        assert faa.read_amplification == pytest.approx(read_once.read_amplification)

    def test_small_area_rereads_straddling_containers(self, service):
        """With sharing that interleaves two backups' chunks, a small FAA
        must re-read containers across spans → amplification rises."""
        service.ingest(refs("a", range(64)))
        second = service.ingest(refs("a", list(range(0, 64, 2)) + list(range(100, 116))))
        small = engine(service, assembly_bytes=4 * 512).restore(second.backup_id)
        large = engine(service, assembly_bytes=64 * 512).restore(second.backup_id)
        assert small.container_bytes_read > large.container_bytes_read

    def test_sequential_backup_immune_to_small_area(self, service):
        """A perfectly sequential backup never re-reads, however small the
        area: each container's chunks are contiguous in the recipe."""
        result = service.ingest(refs("a", range(64)))
        small = engine(service, assembly_bytes=8 * 512).restore(result.backup_id)
        assert small.read_amplification == pytest.approx(1.0)

    def test_area_smaller_than_chunk_still_progresses(self, service):
        result = service.ingest(refs("a", range(8)))
        report = engine(service, assembly_bytes=100).restore(result.backup_id)
        assert report.num_chunks == 8
        assert report.container_bytes_read > 0

    def test_monotone_in_area_size(self, service):
        service.ingest(refs("a", range(64)))
        second = service.ingest(refs("a", list(range(0, 64, 2)) + list(range(100, 116))))
        reads = [
            engine(service, assembly_bytes=n * 512).restore(second.backup_id).container_bytes_read
            for n in (2, 8, 32, 64)
        ]
        assert reads == sorted(reads, reverse=True)

    def test_rejects_nonpositive_area(self, service):
        with pytest.raises(ConfigError):
            engine(service, assembly_bytes=0)

    def test_gccdf_layout_not_worse_under_small_faa(self, tiny_config):
        """Layout quality matters more under FAA pressure (ablation claim);
        at toy scale the comparison may tie, so assert non-inferiority (the
        strict win is asserted by the restore-cache ablation at scale)."""
        from repro.core.gccdf import GCCDFMigration
        from repro.gc.migration import NaiveMigration

        reads = {}
        for name, migration in (("naive", NaiveMigration()), ("gccdf", GCCDFMigration())):
            service = DedupBackupService(config=tiny_config, migration=migration)
            base = service.ingest(refs("a", range(64)))
            a = service.ingest(refs("a", [i for i in range(64) if i % 4 in (0, 1)]))
            b = service.ingest(refs("a", [i for i in range(64) if i % 4 in (0, 2)]))
            service.delete_backup(base.backup_id)
            service.run_gc()
            faa = engine(service, assembly_bytes=8 * 512)
            reads[name] = (
                faa.restore(a.backup_id).container_bytes_read
                + faa.restore(b.backup_id).container_bytes_read
            )
        assert reads["gccdf"] <= reads["naive"]


class TestMemoryEstimates:
    """The paper's §5.5 sizing arguments, as executable accounting."""

    def test_rrt_estimate_scales_with_referencers(self, service):
        first = service.ingest(refs("m", range(16)))
        service.ingest(refs("m", range(0, 16, 2)))
        service.delete_backup(first.backup_id)
        from repro.gc.mark import MarkStage

        mark = MarkStage(service.config, service.index, service.recipes, service.disk).run()
        estimate = mark.rrt_bytes_estimate()
        assert estimate > 0
        # 16-byte header + 8 bytes per referencing backup, per GS container.
        assert estimate == sum(16 + 8 * len(b) for b in mark.rrt.values())

    def test_tree_estimate_tracks_leaves_and_chunks(self, tiny_config):
        from repro.config import GCCDFConfig
        from repro.core.analyzer import Analyzer, ReferenceChecker

        service = DedupBackupService(config=tiny_config)
        service.ingest(refs("m", range(16)))
        service.ingest(refs("m", range(8, 24)))
        config = GCCDFConfig(exact_reference_check=True, split_denial_threshold=0)
        analyzer = Analyzer(ReferenceChecker(service.recipes, config), config)
        keys = [e for e in service.recipes.get(0).entries]
        clusters = analyzer.cluster(list(keys), (0, 1))
        expected = 80 * len(clusters) + 8 * len(keys)
        assert analyzer.estimated_tree_bytes() == expected
