"""Property-based invariants of the rotation driver's protocol."""

from hypothesis import given, settings, strategies as st

from repro.backup.approaches import make_service
from repro.backup.driver import BackupSpec, RotationDriver
from repro.config import SystemConfig

from tests.conftest import refs


def run_protocol(num_backups: int, retained: int, turnover: int, approach: str):
    config = SystemConfig.scaled(retained=retained, turnover=turnover)
    service = make_service(approach, config)
    driver = RotationDriver(service, config.retention, dataset_name="prop")
    backups = [
        BackupSpec(source="s", chunks=tuple(refs("drv", range(i * 2, i * 2 + 12))))
        for i in range(num_backups)
    ]
    return driver.run(backups), service


protocol_params = st.tuples(
    st.integers(min_value=1, max_value=24),  # dataset length
    st.integers(min_value=3, max_value=8),   # retained
    st.integers(min_value=1, max_value=3),   # turnover
).filter(lambda t: t[2] <= t[1])

approaches = st.sampled_from(["naive", "gccdf", "mfdedup", "nondedup"])


@given(protocol_params, approaches)
@settings(max_examples=40, deadline=None)
def test_protocol_structural_invariants(params, approach):
    num_backups, retained, turnover, = params
    result, service = run_protocol(num_backups, retained, turnover, approach)

    # Every backup was ingested exactly once.
    assert len(result.ingest_reports) == num_backups

    # The live window never exceeds `retained`; when the dataset is a whole
    # number of turnover batches past the window (the paper's datasets all
    # are), it ends at exactly retained - turnover.
    live = service.live_backup_ids()
    assert len(live) <= retained
    if num_backups >= retained and (num_backups - retained) % turnover == 0:
        assert len(live) == retained - turnover

    # Restores cover exactly the live window, oldest first.
    assert [r.backup_id for r in result.restore_reports] == live

    # Live ids form the newest suffix of the ingest sequence.
    if live:
        newest = result.ingest_reports[-1].backup_id
        assert live == list(range(newest - len(live) + 1, newest + 1))


@given(protocol_params)
@settings(max_examples=25, deadline=None)
def test_gc_round_count_formula(params):
    """Rounds = 1 (final) + one per full turnover batch beyond the window."""
    num_backups, retained, turnover = params
    result, _ = run_protocol(num_backups, retained, turnover, "naive")
    if num_backups < retained:
        expected = 1 if num_backups > 0 else 0
    else:
        remaining = num_backups - retained
        expected = -(-remaining // turnover) + 1  # ceil + final round
    assert len(result.gc_reports) == expected


@given(protocol_params)
@settings(max_examples=25, deadline=None)
def test_results_deterministic(params):
    num_backups, retained, turnover = params
    a, _ = run_protocol(num_backups, retained, turnover, "gccdf")
    b, _ = run_protocol(num_backups, retained, turnover, "gccdf")
    assert a.dedup_ratio == b.dedup_ratio
    assert [r.read_amplification for r in a.restore_reports] == [
        r.read_amplification for r in b.restore_reports
    ]
