"""Unit tests for container-adaptable cluster packing (§4.2)."""

import pytest

from repro.core.clusters import Cluster
from repro.core.packing import (
    greedy_pack,
    matching_suffix_length,
    order_clusters,
    ownership_similarity,
    random_pack,
)
from repro.dedup.keys import storage_key
from repro.errors import ConfigError
from repro.hashing.fingerprints import synthetic_fingerprint
from repro.model import ChunkRef
from repro.util.rng import DeterministicRng


def cluster(owners, n_chunks=2) -> Cluster:
    base = hash(tuple(owners)) & 0xFFFF
    return Cluster(
        ownership=tuple(owners),
        chunks=[
            ChunkRef(fp=storage_key(synthetic_fingerprint("pk", base * 100 + i)), size=10)
            for i in range(n_chunks)
        ],
    )


class TestSimilarity:
    def test_paper_example_values(self):
        """§4.2: A={1,2,3,4}, B={1,3,4}, C={1,2,4} over 4 backups."""
        a, b, c = (1, 2, 3, 4), (1, 3, 4), (1, 2, 4)
        assert ownership_similarity(a, b, 4) == pytest.approx(0.75)
        assert ownership_similarity(a, c, 4) == pytest.approx(0.75)
        assert ownership_similarity(b, c, 4) == pytest.approx(0.5)

    def test_disjoint_is_zero(self):
        assert ownership_similarity((1,), (2,), 4) == 0.0

    def test_empty_universe(self):
        assert ownership_similarity((1,), (1,), 0) == 0.0


class TestMatchingSuffix:
    def test_paper_example(self):
        """A={1,2,3,4} vs B={1,3,4} share the suffix (3,4) → length 2;
        A vs C={1,2,4} share only (4) → length 1 — the §4.2 tie-break."""
        assert matching_suffix_length((1, 2, 3, 4), (1, 3, 4)) == 2
        assert matching_suffix_length((1, 2, 3, 4), (1, 2, 4)) == 1

    def test_identical(self):
        assert matching_suffix_length((1, 2), (1, 2)) == 2

    def test_no_match(self):
        assert matching_suffix_length((1, 2), (3, 4)) == 0

    def test_empty(self):
        assert matching_suffix_length((), (1,)) == 0


class TestGreedyPack:
    def test_starts_with_largest_ownership(self):
        clusters = [cluster([1]), cluster([1, 2, 3, 4]), cluster([1, 2])]
        ordered = greedy_pack(clusters, num_backups=4)
        assert ordered[0].ownership == (1, 2, 3, 4)

    def test_prefers_suffix_on_similarity_tie(self):
        """From A={1,2,3,4}, B={1,3,4} must precede C={1,2,4} (§4.2 case ①
        over ②): equal similarity, longer matching suffix."""
        a, b, c = cluster([1, 2, 3, 4]), cluster([1, 3, 4]), cluster([1, 2, 4])
        ordered = greedy_pack([c, b, a], num_backups=4)
        assert [cl.ownership for cl in ordered] == [
            (1, 2, 3, 4),
            (1, 3, 4),
            (1, 2, 4),
        ]

    def test_chains_by_similarity(self):
        """Same-group clusters stay adjacent; a disjoint group comes last."""
        group_a = [cluster([1, 2, 3]), cluster([1, 2]), cluster([1, 2, 3, 4])]
        group_b = [cluster([9]), cluster([8, 9])]
        ordered = greedy_pack(group_a + group_b, num_backups=9)
        positions = {cl.ownership: i for i, cl in enumerate(ordered)}
        a_positions = [positions[c.ownership] for c in group_a]
        b_positions = [positions[c.ownership] for c in group_b]
        assert max(a_positions) < min(b_positions)

    def test_is_permutation(self):
        clusters = [cluster([i, i + 1]) for i in range(10)]
        ordered = greedy_pack(clusters, num_backups=12)
        assert sorted(c.ownership for c in ordered) == sorted(
            c.ownership for c in clusters
        )

    def test_empty(self):
        assert greedy_pack([], num_backups=3) == []

    def test_deterministic(self):
        clusters = [cluster([i % 4, 4 + (i % 3)]) for i in range(8)]
        assert [c.ownership for c in greedy_pack(list(clusters), 8)] == [
            c.ownership for c in greedy_pack(list(clusters), 8)
        ]


class TestRandomAndDispatch:
    def test_random_is_permutation(self):
        clusters = [cluster([i]) for i in range(10)]
        shuffled = random_pack(list(clusters), DeterministicRng(1))
        assert sorted(c.ownership for c in shuffled) == sorted(
            c.ownership for c in clusters
        )

    def test_random_seed_determinism(self):
        clusters = [cluster([i]) for i in range(10)]
        a = random_pack(list(clusters), DeterministicRng(5))
        b = random_pack(list(clusters), DeterministicRng(5))
        assert [c.ownership for c in a] == [c.ownership for c in b]

    def test_tree_dispatch_is_identity(self):
        clusters = [cluster([2]), cluster([1])]
        assert order_clusters(clusters, "tree", 2) == clusters

    def test_random_dispatch_requires_rng(self):
        with pytest.raises(ConfigError):
            order_clusters([cluster([1])], "random", 1, rng=None)

    def test_unknown_strategy(self):
        with pytest.raises(ConfigError):
            order_clusters([], "alphabetical", 1)
