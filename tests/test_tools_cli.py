"""Tests for the repro.tools CLI (trace / simulate / inspect)."""

import pytest

from repro.tools import main


class TestTraceCommand:
    def test_write_and_stats(self, tmp_path, capsys):
        out = tmp_path / "web.trace"
        assert main([
            "trace", "--dataset", "web", "--backups", "3",
            "--scale", "0.05", "--out", str(out),
        ]) == 0
        assert out.exists()
        assert main(["trace", "--stats", str(out)]) == 0
        output = capsys.readouterr().out
        assert "backups:             3" in output
        assert "unique fingerprints" in output

    def test_gzip_output(self, tmp_path):
        out = tmp_path / "web.trace.gz"
        assert main([
            "trace", "--dataset", "web", "--backups", "2",
            "--scale", "0.05", "--out", str(out),
        ]) == 0
        assert out.exists()

    def test_requires_out_or_stats(self):
        with pytest.raises(SystemExit):
            main(["trace", "--dataset", "web"])

    def test_requires_workload(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "--out", str(tmp_path / "x.trace")])


class TestSimulateCommand:
    def test_runs_preset(self, capsys):
        assert main([
            "simulate", "--dataset", "web", "--approach", "naive",
            "--backups", "14", "--retained", "8", "--turnover", "2",
            "--scale", "0.05",
        ]) == 0
        output = capsys.readouterr().out
        assert "dedup ratio" in output
        assert "GC round" in output

    def test_runs_trace_file(self, tmp_path, capsys):
        out = tmp_path / "t.trace"
        main(["trace", "--dataset", "mix", "--backups", "10",
              "--scale", "0.05", "--out", str(out)])
        capsys.readouterr()
        assert main([
            "simulate", "--trace", str(out), "--approach", "mfdedup",
            "--retained", "6", "--turnover", "2",
        ]) == 0
        output = capsys.readouterr().out
        assert "approach:            mfdedup" in output

    def test_rejects_unknown_approach(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--dataset", "web", "--approach", "zfs"])


class TestInspectCommand:
    def test_inspect_output_sections(self, capsys):
        assert main([
            "inspect", "--dataset", "web", "--backups", "12",
            "--retained", "8", "--turnover", "2", "--scale", "0.05",
        ]) == 0
        output = capsys.readouterr().out
        assert "ownership" in output
        assert "purity" in output
        assert "amp" in output

    def test_layout_rendered_for_small_systems(self, capsys):
        assert main([
            "inspect", "--dataset", "web", "--backups", "6",
            "--retained", "4", "--turnover", "1", "--scale", "0.05",
            "--layout-limit", "1000",
        ]) == 0
        assert "legend" in capsys.readouterr().out

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])
