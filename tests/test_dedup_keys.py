"""Unit tests for storage keys and the logical index."""

import pytest

from repro.dedup.keys import (
    GENERATION_SIZE,
    KEY_SIZE,
    key_generation,
    logical_fp,
    storage_key,
)
from repro.dedup.logical_index import LogicalIndex
from repro.hashing.fingerprints import FINGERPRINT_SIZE, synthetic_fingerprint
from repro.index.fingerprint_index import FingerprintIndex


def fp(i: int) -> bytes:
    return synthetic_fingerprint("keys", i)


class TestStorageKeys:
    def test_width(self):
        assert len(storage_key(fp(1))) == KEY_SIZE == FINGERPRINT_SIZE + GENERATION_SIZE

    def test_roundtrip(self):
        key = storage_key(fp(1), 7)
        assert logical_fp(key) == fp(1)
        assert key_generation(key) == 7

    def test_generation_zero_default(self):
        assert key_generation(storage_key(fp(1))) == 0

    def test_generations_distinguish_copies(self):
        assert storage_key(fp(1), 0) != storage_key(fp(1), 1)

    def test_rejects_bad_fingerprint_width(self):
        with pytest.raises(ValueError):
            storage_key(b"short")

    def test_rejects_out_of_range_generation(self):
        with pytest.raises(ValueError):
            storage_key(fp(1), -1)
        with pytest.raises(ValueError):
            storage_key(fp(1), 1 << 32)

    def test_parsers_reject_bad_width(self):
        with pytest.raises(ValueError):
            logical_fp(b"short")
        with pytest.raises(ValueError):
            key_generation(b"short")


class TestLogicalIndex:
    def test_miss_on_empty(self):
        logical = LogicalIndex(FingerprintIndex())
        assert logical.lookup(fp(1)) is None

    def test_new_key_then_hit(self):
        physical = FingerprintIndex()
        logical = LogicalIndex(physical)
        key = logical.new_key(fp(1))
        physical.insert(key, container_id=3, size=10)
        hit = logical.lookup(fp(1))
        assert hit is not None
        assert hit[0] == key
        assert hit[1].container_id == 3

    def test_generations_increase(self):
        physical = FingerprintIndex()
        logical = LogicalIndex(physical)
        first = logical.new_key(fp(1))
        second = logical.new_key(fp(1))
        assert key_generation(first) == 0
        assert key_generation(second) == 1

    def test_stale_entry_treated_as_miss(self):
        """A copy reclaimed by GC must not satisfy duplicate detection."""
        physical = FingerprintIndex()
        logical = LogicalIndex(physical)
        key = logical.new_key(fp(1))
        physical.insert(key, container_id=3, size=10)
        physical.remove(key)  # GC reclaimed the copy
        assert logical.lookup(fp(1)) is None
        # The stale entry is dropped, so a re-store restarts at generation 0.
        assert key_generation(logical.new_key(fp(1))) == 0

    def test_hit_rate(self):
        physical = FingerprintIndex()
        logical = LogicalIndex(physical)
        key = logical.new_key(fp(1))
        physical.insert(key, 0, 10)
        logical.lookup(fp(1))
        logical.lookup(fp(2))
        assert logical.hit_rate == pytest.approx(0.5)
