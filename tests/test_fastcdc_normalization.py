"""FastCDC normalized-chunking behaviour: the feature that distinguishes it
from plain gear-CDC (tighter size distribution around the average)."""

import statistics

from repro.chunking.base import split
from repro.chunking.fastcdc import FastCDC, _top_bits_mask
from repro.config import ChunkingConfig
from repro.util.rng import DeterministicRng

CONFIG = ChunkingConfig(min_size=64, avg_size=256, max_size=2048)


def data(n=400_000, seed=4):
    rng = DeterministicRng(seed)
    return bytes(rng.randint(0, 255) for _ in range(n))


class TestMasks:
    def test_top_bits_mask_width(self):
        assert _top_bits_mask(0) == 0
        assert bin(_top_bits_mask(3)).count("1") == 3
        assert _top_bits_mask(64) == (1 << 64) - 1
        assert _top_bits_mask(100) == (1 << 64) - 1  # clamped

    def test_mask_selects_msbs(self):
        mask = _top_bits_mask(8)
        assert mask >> 56 == 0xFF
        assert mask & ((1 << 56) - 1) == 0

    def test_strict_mask_stricter_than_loose(self):
        chunker = FastCDC(CONFIG, normalization=2)
        assert bin(chunker.mask_strict).count("1") > bin(chunker.mask_loose).count("1")


class TestNormalization:
    def test_higher_normalization_tightens_distribution(self):
        payload = data()
        spreads = {}
        for level in (0, 2):
            sizes = [c.size for c in split(FastCDC(CONFIG, normalization=level), payload)]
            spreads[level] = statistics.pstdev(sizes) / statistics.mean(sizes)
        assert spreads[2] < spreads[0]

    def test_zero_normalization_still_valid(self):
        payload = data(100_000)
        chunks = list(split(FastCDC(CONFIG, normalization=0), payload))
        assert b"".join(c.data for c in chunks) == payload

    def test_gear_seed_changes_boundaries(self):
        payload = data(100_000)
        a = ChunkingConfig(min_size=64, avg_size=256, max_size=2048, gear_seed=1)
        b = ChunkingConfig(min_size=64, avg_size=256, max_size=2048, gear_seed=2)
        cuts_a = [c.size for c in split(FastCDC(a), payload)]
        cuts_b = [c.size for c in split(FastCDC(b), payload)]
        assert cuts_a != cuts_b

    def test_max_size_forces_cut_on_pathological_data(self):
        """Constant data never matches the gear mask; only max_size cuts."""
        payload = bytes(50_000)
        chunks = list(split(FastCDC(CONFIG), payload))
        assert all(c.size <= CONFIG.max_size for c in chunks)
        # Almost every chunk is exactly max_size (the forced cut).
        forced = sum(1 for c in chunks if c.size == CONFIG.max_size)
        assert forced >= len(chunks) - 1
