"""Incremental, crash-recoverable GC (`repro.gc.incremental`).

Three pillars:

* **Drained equivalence** — running every ``run_gc`` as a budgeted
  incremental cycle (drained increment by increment) must end every
  approach in *exactly* the stop-the-world state: same stats, same live
  backups, same physical layout, same simulated device time, same GC
  reports (modulo the wall-clock ``analyze_cpu_seconds``).  Budgets only
  change how the work is sliced, never what it computes.
* **Crash-resume** — a crash at *every* ``gc.increment`` boundary must
  recover to a verifier-clean state from which the journaled cycle
  resumes to completion (journal empty afterwards).
* **Interleaving safety** — property tests mixing incremental GC steps
  with ingest/restore/crash+recover: when each cycle drains before the
  next mutation, the final state equals the uninterrupted stop-the-world
  run; with ingests *inside* a cycle, the live-reference barrier keeps
  every backup restorable and the verifier clean.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.backup.approaches import APPROACHES, make_service
from repro.backup.options import ServiceOptions
from repro.backup.driver import RotationDriver
from repro.backup.system import DedupBackupService
from repro.backup.verify import verify_service
from repro.config import ChunkingConfig, RetentionConfig, SystemConfig
from repro.errors import ConfigError, SimulatedCrash
from repro.faults import FaultPlan, recover_service
from repro.gc.incremental import GCBudget, IncrementalGC
from repro.gc.migration import NaiveMigration
from repro.workloads.datasets import dataset

from tests.conftest import refs

DATASET = "web"
#: Small enough that every phase spans several increments.
SMALL_BUDGET = GCBudget(mark_recipes=3, sweep_containers=2, mfdedup_volumes=1)


def run_protocol(approach: str, gc_mode: str, budget=None, faults=None):
    config = SystemConfig.scaled(retained=10, turnover=3)
    service = make_service(
        approach, config, ServiceOptions(gc_mode=gc_mode, gc_budget=budget, faults=faults)
    )
    driver = RotationDriver(service, config.retention, dataset_name=DATASET)
    result = driver.run(dataset(DATASET, scale=0.1, num_backups=16))
    return service, result


def report_key(report) -> dict:
    data = dataclasses.asdict(report)
    data.pop("analyze_cpu_seconds")  # interpreter wall-clock, not simulated
    return data


def layout_ids(service) -> list:
    if hasattr(service, "store"):
        return sorted(service.store.ids())
    return sorted(service.volumes._volumes)


def live_journal(service):
    return service.volumes.journal if hasattr(service, "volumes") else service.store.journal


class TestBudget:
    def test_defaults_are_positive(self):
        budget = GCBudget()
        assert budget.mark_recipes >= 1
        assert budget.sweep_containers >= 1
        assert budget.mfdedup_volumes >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mark_recipes": 0},
            {"sweep_containers": 0},
            {"mfdedup_volumes": -1},
        ],
    )
    def test_non_positive_budgets_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            GCBudget(**kwargs)

    def test_unknown_gc_mode_rejected(self):
        with pytest.raises(ConfigError):
            make_service("naive", options=ServiceOptions(gc_mode="eager"))


class TestDrainedEquivalence:
    """Budgeted-and-drained incremental GC ≡ stop-the-world, per approach."""

    @pytest.mark.parametrize("approach", APPROACHES)
    def test_final_state_counter_identical(self, approach):
        stw_service, stw = run_protocol(approach, "stw")
        inc_service, inc = run_protocol(approach, "incremental", budget=SMALL_BUDGET)

        assert inc_service.stats() == stw_service.stats()
        assert inc_service.live_backup_ids() == stw_service.live_backup_ids()
        assert layout_ids(inc_service) == layout_ids(stw_service)
        assert inc_service.disk.sim_time == stw_service.disk.sim_time
        assert [report_key(r) for r in inc.gc_reports] == [
            report_key(r) for r in stw.gc_reports
        ]
        assert verify_service(inc_service).errors == []
        assert len(live_journal(inc_service)) == 0

    @pytest.mark.parametrize("approach", ("naive", "gccdf", "mfdedup"))
    def test_budget_size_never_changes_the_outcome(self, approach):
        tiny = GCBudget(mark_recipes=1, sweep_containers=1, mfdedup_volumes=1)
        huge = GCBudget(
            mark_recipes=10_000, sweep_containers=10_000, mfdedup_volumes=10_000
        )
        a_service, a = run_protocol(approach, "incremental", budget=tiny)
        b_service, b = run_protocol(approach, "incremental", budget=huge)
        assert a_service.stats() == b_service.stats()
        assert layout_ids(a_service) == layout_ids(b_service)
        assert a_service.disk.sim_time == b_service.disk.sim_time
        assert [report_key(r) for r in a.gc_reports] == [
            report_key(r) for r in b.gc_reports
        ]


class TestCrashResume:
    """Crash at every increment boundary; recover; resume; verify."""

    def count_boundaries(self, approach: str) -> int:
        plan = FaultPlan()  # nothing armed: just counts hits
        run_protocol(approach, "incremental", budget=SMALL_BUDGET, faults=plan)
        return plan.hits.get("gc.increment", 0)

    @pytest.mark.parametrize("approach", ("naive", "capping", "gccdf", "mfdedup"))
    def test_every_boundary_recovers_and_resumes(self, approach):
        boundaries = self.count_boundaries(approach)
        assert boundaries > 0, "budget too large: no increment boundary fired"
        for occurrence in range(1, boundaries + 1):
            plan = FaultPlan.single("gc.increment", occurrence=occurrence)
            config = SystemConfig.scaled(retained=10, turnover=3)
            service = make_service(
                approach, config,
                ServiceOptions(gc_mode="incremental", gc_budget=SMALL_BUDGET, faults=plan),
            )
            driver = RotationDriver(service, config.retention, dataset_name=DATASET)
            with pytest.raises(SimulatedCrash):
                driver.run(dataset(DATASET, scale=0.1, num_backups=16))

            recover_service(service)
            assert verify_service(service).errors == [], (approach, occurrence)
            # The journaled cycle resumes to completion, not from scratch.
            service.run_gc()
            assert verify_service(service).errors == [], (approach, occurrence)
            assert len(live_journal(service)) == 0, (approach, occurrence)
            for backup_id in service.live_backup_ids():
                service.restore(backup_id)


# ----------------------------------------------------------------------
# Property tests: incremental steps interleaved with foreground traffic.
# ----------------------------------------------------------------------


def make_config() -> SystemConfig:
    config = SystemConfig(
        container_size=4096,
        chunking=ChunkingConfig(min_size=128, avg_size=512, max_size=1024),
        retention=RetentionConfig(retained=6, turnover=2),
    )
    config.validate()
    return config


def build_incremental(budget: GCBudget) -> DedupBackupService:
    return DedupBackupService(
        config=make_config(),
        migration=NaiveMigration(),
        gc_mode="incremental",
        gc_budget=budget,
    )


operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("ingest"),
            st.integers(min_value=0, max_value=60),
            st.integers(min_value=4, max_value=40),
        ),
        st.tuples(st.just("gc"), st.just(0), st.just(0)),
    ),
    min_size=2,
    max_size=10,
)

budgets = st.builds(
    GCBudget,
    mark_recipes=st.integers(min_value=1, max_value=6),
    sweep_containers=st.integers(min_value=1, max_value=4),
    mfdedup_volumes=st.just(1),
)


@given(operations, budgets, st.integers(min_value=0, max_value=3))
@settings(max_examples=40, deadline=None)
def test_interleaved_steps_match_stop_the_world(ops, budget, restores_between):
    """Cycles stepped to completion before the next mutation — with
    read-only restores interleaved *between* the increments — end in the
    stop-the-world state: identical stats, live ids, and layout."""
    stw = DedupBackupService(config=make_config(), migration=NaiveMigration())
    inc = build_incremental(budget)

    for op, start, length in ops:
        if op == "ingest":
            stream = refs("prop", range(start, start + length))
            stw.ingest(stream)
            inc.ingest(stream)
        else:
            stw.delete_oldest(1)
            stw.run_gc()
            inc.delete_oldest(1)
            inc.gc.begin()
            while inc.gc.active:
                report = inc.gc.step()
                if report is not None:
                    break
                # Restores mid-cycle are read-only: they must neither stall
                # the cycle nor perturb its outcome.
                for backup_id in inc.live_backup_ids()[:restores_between]:
                    inc.restore(backup_id)

    assert inc.stats() == stw.stats()
    assert inc.live_backup_ids() == stw.live_backup_ids()
    assert sorted(inc.store.ids()) == sorted(stw.store.ids())
    assert sorted(key for key, _ in inc.index.items()) == sorted(
        key for key, _ in stw.index.items()
    )
    assert verify_service(inc).errors == []
    assert len(inc.store.journal) == 0


@given(operations, budgets, st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_mid_cycle_ingest_stays_consistent(ops, budget, steps_before_ingest):
    """Ingests landing *inside* an open cycle exercise the live-reference
    barrier: new references to chunks the collector considered dead must
    survive.  Stop-the-world equality is deliberately not asserted — a
    mid-cycle ingest may legally dedup against not-yet-reclaimed chunks —
    but every live backup must stay restorable and the verifier clean."""
    service = build_incremental(budget)
    expected: dict[int, int] = {}

    for op, start, length in ops:
        if op == "ingest":
            stream = refs("prop", range(start, start + length))
            if service.gc.active:
                for _ in range(steps_before_ingest):
                    if service.gc.step() is not None:
                        break
            result = service.ingest(stream)
            expected[result.backup_id] = sum(ref.size for ref in stream)
        else:
            service.delete_oldest(1)
            service.gc.begin()
            service.gc.step()  # leave the cycle open across what follows

    while service.gc.active:
        service.gc.step()

    assert verify_service(service).errors == []
    assert len(service.store.journal) == 0
    for backup_id in service.live_backup_ids():
        if backup_id in expected:
            report = service.restore(backup_id)
            assert report.logical_bytes == expected[backup_id]


@given(
    operations,
    budgets,
    st.integers(min_value=1, max_value=6),
)
@settings(max_examples=30, deadline=None)
def test_crash_at_increment_then_recover_keeps_backups(ops, budget, occurrence):
    """An armed ``gc.increment`` crash anywhere in the sequence recovers
    in place, the journaled cycle resumes, and the run keeps going."""
    plan = FaultPlan.single("gc.increment", occurrence=occurrence)
    service = build_incremental(budget)
    service.disk.faults = plan
    expected: dict[int, int] = {}

    crashed = False
    for op, start, length in ops:
        try:
            if op == "ingest":
                stream = refs("prop", range(start, start + length))
                result = service.ingest(stream)
                expected[result.backup_id] = sum(ref.size for ref in stream)
            else:
                service.delete_oldest(1)
                service.run_gc()
        except SimulatedCrash:
            crashed = True
            recover_service(service)
            assert verify_service(service).errors == []
            service.run_gc()  # resume the journaled cycle

    while service.gc.active:
        service.gc.step()
    assert verify_service(service).errors == []
    assert len(service.store.journal) == 0
    for backup_id in service.live_backup_ids():
        if backup_id in expected:
            report = service.restore(backup_id)
            assert report.logical_bytes == expected[backup_id]
    if not crashed:
        assert plan.fired is None


class TestEngineSurface:
    def test_begin_is_idempotent_while_active(self):
        service = build_incremental(SMALL_BUDGET)
        service.ingest(refs("s", range(12)))
        service.ingest(refs("s", range(6, 18)))
        service.delete_oldest(1)
        gc = service.gc
        assert isinstance(gc, IncrementalGC)
        assert gc.should_run()
        gc.begin()
        record = live_journal(service).open_records("gc.cycle")[0]
        gc.begin()  # second begin is a no-op, not a second cycle
        assert live_journal(service).open_records("gc.cycle") == [record]
        while gc.active:
            gc.step()
        assert len(live_journal(service)) == 0

    def test_step_without_cycle_returns_none(self):
        service = build_incremental(SMALL_BUDGET)
        assert service.gc.step() is None
        assert not service.gc.active

    def test_pending_tracks_deletions(self):
        service = build_incremental(SMALL_BUDGET)
        service.ingest(refs("p", range(10)))
        service.ingest(refs("p", range(20, 30)))
        assert service.gc.pending() == 0
        assert not service.gc.should_run()
        service.delete_oldest(1)
        assert service.gc.pending() == 1
        assert service.gc.should_run()
