"""Columnar sweep-engine equivalence (the batched GC/copy-forward path).

The columnar sweep kernels — manifest-backed validity partitioning,
``migrate_batch`` copy-forward runs, ``lookup_many``/``relocate_many`` bulk
index probes — must leave the system in an *observationally identical*
end state to the legacy per-chunk loops: same surviving containers with
the same chunk layout (which pins the reclaim and copy-forward write
order), same stored bytes, same index contents and probe counters, same
GC reports and journal traffic.  A property test drives both
representations through randomized ingest/delete/GC sequences across
every approach and both GC modes; unit tests pin the container manifest
(build, incremental maintenance, desync rebuild, rehydration) and the
bulk index kernels' counter/error parity.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.backup.approaches import APPROACHES, make_service
from repro.backup.options import ServiceOptions
from repro.config import ChunkingConfig, RetentionConfig, SystemConfig
from repro.errors import UnknownChunkError
from repro.hashing.fingerprints import synthetic_fingerprint
from repro.index.fingerprint_index import FingerprintIndex
from repro.index.interning import FingerprintInterner
from repro.model import ChunkRef
from repro.storage.container import Container

from tests.conftest import refs


def make_config() -> SystemConfig:
    config = SystemConfig(
        container_size=4096,
        chunking=ChunkingConfig(min_size=128, avg_size=512, max_size=1024),
        retention=RetentionConfig(retained=6, turnover=2),
    )
    config.validate()
    return config


# ---------------------------------------------------------------------------
# End-state snapshot: everything the sweep engine can influence
# ---------------------------------------------------------------------------


def snapshot(service) -> dict:
    """Observable end state of a service, independent of representation."""
    state: dict = {
        "stats": service.stats(),
        "live_backups": service.live_backup_ids(),
    }
    store = getattr(service, "store", None)
    if store is not None:
        # Container ids are allocated in commit order, so the full layout
        # (id -> ordered (fp, size) entries) pins both the reclaim order
        # and the copy-forward write order, not just the surviving set.
        state["layout"] = {
            container.container_id: [(e.fp, e.size) for e in container]
            for container in store.containers()
        }
        state["stored_bytes"] = store.stored_bytes
        state["containers_deleted"] = store.containers_deleted
        journal = store.journal
        state["journal"] = (journal.begun, journal.closed, len(journal))
    index = getattr(service, "index", None)
    if index is not None:  # mfdedup has no flat fingerprint index
        state["index"] = {
            fp: (placement.container_id, placement.size)
            for fp, placement in index.items()
        }
        state["probes"] = (
            index.lookups,
            index.hits,
            index.guard_probes,
            index.guard_skips,
        )
    state["gc_reports"] = [
        # analyze_cpu_seconds is measured interpreter wall time — the one
        # legitimately representation-dependent field.
        {
            k: v
            for k, v in report.to_dict().items()
            if k != "analyze_cpu_seconds"
        }
        for report in getattr(getattr(service, "gc", None), "history", [])
    ]
    state["sim_time"] = service.disk.sim_time
    return state


# One step = ingest a window of the chunk-id space, or rotate (delete the
# oldest backups and run a full GC cycle).
sweep_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("ingest"),
            st.integers(min_value=0, max_value=60),  # window start
            st.integers(min_value=4, max_value=40),  # window length
        ),
        st.tuples(
            st.just("gc"),
            st.integers(min_value=1, max_value=3),  # backups to delete
            st.just(0),
        ),
    ),
    min_size=2,
    max_size=10,
)


@settings(deadline=None, max_examples=50)
@given(
    ops=sweep_ops,
    approach=st.sampled_from(APPROACHES),
    gc_mode=st.sampled_from(["stw", "incremental"]),
)
def test_sweep_end_state_matches_legacy(ops, approach, gc_mode):
    states = {}
    for columnar in (True, False):
        service = make_service(
            approach,
            config=make_config(),
            options=ServiceOptions(columnar=columnar, gc_mode=gc_mode),
        )
        for op, a, b in ops:
            if op == "ingest":
                service.ingest(refs("sweep-prop", range(a, a + b)))
            elif service.live_backup_ids():
                service.delete_oldest(a)
                service.run_gc()
        states[columnar] = snapshot(service)

    columnar_state, legacy_state = states[True], states[False]
    assert set(columnar_state) == set(legacy_state)
    for key in columnar_state:
        assert columnar_state[key] == legacy_state[key], key


# ---------------------------------------------------------------------------
# Container manifest: build, incremental maintenance, desync, rehydration
# ---------------------------------------------------------------------------


def _ref(i: int, size: int = 100) -> ChunkRef:
    return ChunkRef(fp=synthetic_fingerprint("manifest", i), size=size)


class TestManifest:
    def test_build_manifest_columns_parallel_entries(self):
        container = Container(container_id=0, capacity=4096)
        chunks = [_ref(i) for i in (0, 1, 2, 1, 0)]
        for ref in chunks:
            container.append(ref)
        container.seal()
        interner = FingerprintInterner()
        container.build_manifest(interner)
        assert list(container.chunk_ids) == [
            interner.id_of(ref.fp) for ref in chunks
        ]
        assert list(container.chunk_sizes) == [ref.size for ref in chunks]
        assert container.distinct_ids() == frozenset(container.chunk_ids)
        assert container.distinct_ids() is container.distinct_ids()  # cached
        # Rebuilding is idempotent (commit + later peek both call it).
        ids_before = container.chunk_ids
        container.build_manifest(interner)
        assert container.chunk_ids is ids_before

    def test_incremental_extend_matches_seal_time_build(self):
        interner = FingerprintInterner()
        chunks = [_ref(i) for i in range(6)]
        ids = [interner.intern(ref.fp) for ref in chunks]

        incremental = Container(container_id=0, capacity=4096)
        incremental.extend(chunks[:4], 400, ids=ids[:4], sizes=[100] * 4)
        incremental.extend(chunks[4:], 200, ids=ids[4:], sizes=[100] * 2)
        incremental.seal()
        columns_before = incremental.chunk_ids
        incremental.build_manifest(interner)  # must be the cheap no-op path
        assert incremental.chunk_ids is columns_before

        from_scratch = Container(container_id=1, capacity=4096)
        from_scratch.extend(chunks, 600)
        from_scratch.seal()
        from_scratch.build_manifest(interner)

        assert list(incremental.chunk_ids) == list(from_scratch.chunk_ids)
        assert list(incremental.chunk_sizes) == list(from_scratch.chunk_sizes)
        assert incremental.distinct_ids() == from_scratch.distinct_ids()

    def test_extend_defaults_sizes_from_refs(self):
        interner = FingerprintInterner()
        chunks = [_ref(i, size=50 + i) for i in range(3)]
        ids = [interner.intern(ref.fp) for ref in chunks]
        container = Container(container_id=0, capacity=4096)
        container.extend(chunks, sum(r.size for r in chunks), ids=ids)
        assert list(container.chunk_sizes) == [ref.size for ref in chunks]

    def test_interleaved_append_desyncs_and_rebuild_recovers(self):
        interner = FingerprintInterner()
        chunks = [_ref(i) for i in range(5)]
        ids = [interner.intern(ref.fp) for ref in chunks]
        container = Container(container_id=0, capacity=4096)
        container.extend(chunks[:2], 200, ids=ids[:2], sizes=[100, 100])
        container.append(chunks[2])  # per-chunk path: no id carried
        assert len(container.chunk_ids) != len(container.entries)  # desynced
        # Further id-carrying batches must NOT extend a desynced manifest
        # (that would silently misalign the columns).
        container.extend(chunks[3:], 200, ids=ids[3:], sizes=[100, 100])
        assert len(container.chunk_ids) == 2
        container.seal()
        container.build_manifest(interner)  # length check -> full rebuild
        assert list(container.chunk_ids) == ids
        assert container.distinct_ids() == frozenset(ids)

    def test_manifest_absent_without_ids(self):
        container = Container(container_id=0, capacity=4096)
        container.extend([_ref(0)], 100)
        assert container.chunk_ids is None
        with pytest.raises(TypeError):
            container.distinct_ids()

    def test_commit_builds_manifest_and_peek_rehydrates(self):
        from repro.simio.disk import DiskModel
        from repro.storage.store import ContainerStore

        config = make_config()
        disk = DiskModel(config.disk)
        store = ContainerStore(config.container_size, disk)
        interner = FingerprintInterner()
        store.bind_interner(interner)

        container = store.allocate()
        chunks = [_ref(i) for i in range(4)]
        for ref in chunks:
            container.append(ref)
        store.commit(container)
        sealed = store.peek(container.container_id)
        assert sealed.chunk_ids is not None
        assert [interner.key_of(i) for i in sealed.chunk_ids] == [
            ref.fp for ref in chunks
        ]

        # A container sealed before the interner was bound (recovery
        # rebuilds) gets its manifest lazily on peek.
        bare_store = ContainerStore(config.container_size, DiskModel(config.disk))
        bare = bare_store.allocate()
        for ref in chunks:
            bare.append(ref)
        bare_store.commit(bare)
        assert bare_store.peek(bare.container_id).chunk_ids is None
        bare_store.bind_interner(interner)
        rehydrated = bare_store.peek(bare.container_id)
        assert rehydrated.chunk_ids is not None
        assert list(rehydrated.chunk_ids) == [
            interner.id_of(ref.fp) for ref in chunks
        ]


# ---------------------------------------------------------------------------
# Bulk index kernels: counter and error parity with the per-key loops
# ---------------------------------------------------------------------------


def _keyed(i: int) -> bytes:
    return synthetic_fingerprint("bulk", i) + b"\x00\x00\x00\x00"


probe_batches = st.lists(
    st.integers(min_value=0, max_value=40), min_size=0, max_size=60
)


class TestBulkIndexKernels:
    @settings(deadline=None, max_examples=50)
    @given(probe_batches, st.booleans())
    def test_lookup_many_matches_lookup_loop(self, probe_ids, guard):
        bulk = FingerprintIndex(negative_guard=guard)
        loop = FingerprintIndex(negative_guard=guard)
        for i in range(0, 40, 2):  # evens present, odds missing
            bulk.insert(_keyed(i), container_id=i, size=64)
            loop.insert(_keyed(i), container_id=i, size=64)
        fps = [_keyed(i) for i in probe_ids]
        assert bulk.lookup_many(fps) == [loop.lookup(fp) for fp in fps]
        for attr in ("lookups", "hits", "guard_probes", "guard_skips"):
            assert getattr(bulk, attr) == getattr(loop, attr), attr

    def test_lookup_many_empty_batch_is_free(self):
        index = FingerprintIndex(negative_guard=True)
        assert index.lookup_many([]) == []
        assert index.lookups == index.guard_probes == 0

    def test_relocate_many_matches_relocate_loop(self):
        batch = FingerprintIndex()
        loop = FingerprintIndex()
        fps = [_keyed(i) for i in range(8)]
        for i, fp in enumerate(fps):
            batch.insert(fp, container_id=i, size=32 + i)
            loop.insert(fp, container_id=i, size=32 + i)
        batch.relocate_many(fps[:5], container_id=99)
        for fp in fps[:5]:
            loop.relocate(fp, container_id=99)
        assert {fp: (p.container_id, p.size) for fp, p in batch.items()} == {
            fp: (p.container_id, p.size) for fp, p in loop.items()
        }

    def test_relocate_many_unknown_fp_raises_like_relocate(self):
        index = FingerprintIndex()
        index.insert(_keyed(0), container_id=0, size=16)
        missing = _keyed(1)
        with pytest.raises(UnknownChunkError) as batch_err:
            index.relocate_many([_keyed(0), missing], container_id=7)
        with pytest.raises(UnknownChunkError) as loop_err:
            index.relocate(missing, container_id=7)
        assert str(batch_err.value) == str(loop_err.value)


# ---------------------------------------------------------------------------
# Batched copy-forward: GC report and probe counters match legacy per-chunk
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("approach", ["naive", "capping", "gccdf"])
@pytest.mark.parametrize("gc_mode", ["stw", "incremental"])
def test_batched_copy_forward_counter_parity(approach, gc_mode):
    reports = {}
    probes = {}
    for columnar in (True, False):
        service = make_service(
            approach,
            config=make_config(),
            options=ServiceOptions(columnar=columnar, gc_mode=gc_mode),
        )
        for generation in range(6):
            service.ingest(refs("cf-parity", range(generation, generation + 12)))
        service.delete_oldest(2)
        report = service.run_gc()
        reports[columnar] = dataclasses.replace(report, analyze_cpu_seconds=0.0)
        probes[columnar] = (
            service.index.lookups,
            service.index.hits,
            service.index.guard_probes,
            service.index.guard_skips,
        )
    assert reports[True] == reports[False]
    assert probes[True] == probes[False]
    assert reports[True].reclaimed_containers > 0  # the sweep actually ran
