"""Unit tests for the restore engine and its accounting."""

import pytest

from repro.backup.system import DedupBackupService
from repro.chunking.base import split
from repro.chunking.fastcdc import FastCDC
from repro.errors import IntegrityError, UnknownBackupError
from repro.restore.report import RestoreReport

from tests.conftest import refs


@pytest.fixture
def service(tiny_config) -> DedupBackupService:
    return DedupBackupService(config=tiny_config)


class TestRestoreAccounting:
    def test_sequential_backup_amp_is_one(self, service):
        result = service.ingest(refs("r", range(64)))
        report = service.restore(result.backup_id)
        assert report.read_amplification == pytest.approx(1.0)
        assert report.logical_bytes == 64 * 512
        assert report.num_chunks == 64

    def test_deduped_backup_reads_shared_containers(self, service):
        service.ingest(refs("r", range(64)))
        # Every other old chunk plus fresh ones: the shared containers are
        # only half-needed → amplification > 1.
        second = service.ingest(refs("r", list(range(0, 64, 2)) + list(range(100, 116))))
        report = service.restore(second.backup_id)
        assert report.read_amplification > 1.0

    def test_each_container_read_once(self, service):
        """Read-once semantics: container bytes read == distinct containers'
        bytes, even when the recipe revisits containers."""
        result = service.ingest(refs("r", list(range(16)) + list(range(16))))
        report = service.restore(result.backup_id)
        assert report.containers_read * service.config.container_size >= report.container_bytes_read
        assert report.cache_hits > 0

    def test_restore_speed_positive(self, service):
        result = service.ingest(refs("r", range(64)))
        report = service.restore(result.backup_id)
        assert 0 < report.speed_bytes_per_second < float("inf")

    def test_unknown_backup_raises(self, service):
        with pytest.raises(UnknownBackupError):
            service.restore(42)

    def test_restore_all_oldest_first(self, service):
        ids = [service.ingest(refs("r", range(i, i + 8))).backup_id for i in range(3)]
        reports = list(service.restorer.restore_all())
        assert [r.backup_id for r in reports] == ids


class TestByteLevelRestore:
    def test_roundtrip_bytes(self, tiny_config):
        service = DedupBackupService(config=tiny_config)
        cdc = FastCDC(tiny_config.chunking)
        from repro.util.rng import DeterministicRng

        rng = DeterministicRng(3)
        data = bytes(rng.randint(0, 255) for _ in range(20_000))
        result = service.ingest(split(cdc, data))
        report, restored = service.restore_bytes(result.backup_id)
        assert restored == data
        assert report.logical_bytes == len(data)

    def test_trace_level_restore_to_bytes_rejected(self, service):
        result = service.ingest(refs("r", range(8)))
        with pytest.raises(IntegrityError):
            service.restore_bytes(result.backup_id)


class TestRestoreReport:
    def test_amp_of_empty_backup_is_zero(self):
        report = RestoreReport(
            backup_id=0,
            logical_bytes=0,
            num_chunks=0,
            containers_read=0,
            container_bytes_read=0,
            read_seconds=0.0,
            cache_hits=0,
        )
        assert report.read_amplification == 0.0
        assert report.speed_bytes_per_second == 0.0

    def test_speed_infinite_when_fully_cached(self):
        report = RestoreReport(
            backup_id=0,
            logical_bytes=100,
            num_chunks=1,
            containers_read=0,
            container_bytes_read=0,
            read_seconds=0.0,
            cache_hits=1,
        )
        assert report.speed_bytes_per_second == float("inf")
