"""Run-cache key correctness and persistent round-trips.

The persistent cache key must change whenever anything that determines a
protocol run's output changes (GCCDF overrides, VC-table choice,
restore-cache bound, scale, dataset, approach, format version) and must be
stable otherwise; a stored run must come back equal to the original.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import clear_cache, run_protocol
from repro.experiments.cache import (
    CACHE_FORMAT_VERSION,
    ENV_CACHE_DIR,
    RunCache,
    default_cache_dir,
    run_cache_key,
)
from repro.experiments.common import SCALES
from repro.experiments.matrix import Cell


def _key(approach="gccdf", dataset="mix", scale="quick", **config_kwargs) -> str:
    spec = SCALES[scale]
    return run_cache_key(
        approach,
        dataset,
        spec.name,
        spec.config(**config_kwargs),
        spec.workload_scale,
        spec.num_backups(dataset),
    )


class TestKeyCorrectness:
    def test_key_is_stable(self):
        assert _key() == _key()
        assert _key(segment_size=10) == _key(segment_size=10)

    def test_distinct_gccdf_overrides_distinct_keys(self):
        base = _key()
        assert _key(segment_size=10) != base
        assert _key(segment_size=10) != _key(segment_size=25)
        assert _key(packing="random") != base
        assert _key(split_denial_threshold=0) != base

    def test_distinct_vc_table_distinct_keys(self):
        assert _key(vc_table="bloom") != _key(vc_table="exact")
        # 'exact' is the default, so passing it explicitly resolves to the
        # same config and therefore the same content hash.
        assert _key(vc_table="exact") == _key()

    def test_distinct_restore_cache_distinct_keys(self):
        base = _key()
        assert _key(restore_cache_containers=4) != base
        assert _key(restore_cache_containers=4) != _key(restore_cache_containers=16)

    def test_approach_dataset_scale_in_key(self):
        assert _key(approach="naive") != _key(approach="gccdf")
        assert _key(dataset="web") != _key(dataset="mix")
        assert _key(scale="medium") != _key(scale="quick")

    def test_cell_cache_keys_match_direct_keys(self):
        cell = Cell("gccdf", "mix", "quick", gccdf_overrides=(("segment_size", 10),))
        assert cell.cache_key() == _key(segment_size=10)
        assert Cell("gccdf", "mix", "quick").cache_key() == _key()

    def test_override_order_does_not_matter(self):
        a = Cell(
            "gccdf",
            "mix",
            "quick",
            gccdf_overrides=(("segment_size", 10), ("packing", "random")),
        )
        b = Cell(
            "gccdf",
            "mix",
            "quick",
            gccdf_overrides=(("packing", "random"), ("segment_size", 10)),
        )
        assert a == b
        assert a.cache_key() == b.cache_key()
        assert a.memo_key() == b.memo_key()


class TestMemoIsolation:
    def test_clear_cache_isolates(self):
        clear_cache()
        try:
            first = run_protocol("naive", "web", "quick")
            assert run_protocol("naive", "web", "quick") is first
            clear_cache()
            again = run_protocol("naive", "web", "quick")
            assert again is not first
            assert again == first  # deterministic protocol, fresh object
        finally:
            clear_cache()


class TestPersistentRoundTrip:
    @pytest.fixture(scope="class")
    def result(self):
        clear_cache()
        try:
            yield run_protocol("naive", "web", "quick")
        finally:
            clear_cache()

    def test_to_dict_json_round_trip(self, result):
        from repro.backup.driver import RotationResult

        wire = json.loads(json.dumps(result.to_dict()))
        restored = RotationResult.from_dict(wire)
        assert restored == result
        assert restored.restore_speed == result.restore_speed
        assert restored.mean_read_amplification == result.mean_read_amplification

    def test_store_load_round_trip(self, result, tmp_path):
        cache = RunCache(tmp_path / "cache")
        key = _key(approach="naive", dataset="web")
        assert key not in cache
        assert cache.load(key) is None
        assert cache.misses == 1

        path = cache.store(key, result)
        assert path.is_file()
        assert key in cache
        assert len(cache) == 1

        loaded = cache.load(key)
        assert cache.hits == 1
        assert loaded is not result
        assert loaded == result

    def test_corrupt_entry_is_a_miss(self, result, tmp_path):
        cache = RunCache(tmp_path / "cache")
        key = _key(approach="naive", dataset="web")
        cache.store(key, result)
        cache.path_for(key).write_text("{not json")
        assert cache.load(key) is None

    def test_stale_format_is_a_miss(self, result, tmp_path):
        cache = RunCache(tmp_path / "cache")
        key = _key(approach="naive", dataset="web")
        path = cache.store(key, result)
        entry = json.loads(path.read_text())
        entry["format"] = CACHE_FORMAT_VERSION + 1
        path.write_text(json.dumps(entry))
        assert cache.load(key) is None

    def test_clear_removes_entries(self, result, tmp_path):
        cache = RunCache(tmp_path / "cache")
        cache.store(_key(), result)
        cache.store(_key(segment_size=10), result)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0


class TestCacheDirResolution:
    def test_env_var_overrides_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"
        assert RunCache().root == tmp_path / "elsewhere"

    def test_default_is_repro_cache(self, monkeypatch):
        monkeypatch.delenv(ENV_CACHE_DIR, raising=False)
        assert str(default_cache_dir()) == ".repro-cache"

    def test_explicit_root_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "ignored"))
        assert RunCache(tmp_path / "explicit").root == tmp_path / "explicit"
