"""Unit tests for the core data model."""

import pytest

from repro.hashing.fingerprints import fingerprint
from repro.model import Chunk, ChunkRef


class TestChunkRef:
    def test_value_equality(self):
        fp = fingerprint(b"x")
        assert ChunkRef(fp, 10) == ChunkRef(fp, 10)

    def test_hashable_deduplicates(self):
        fp = fingerprint(b"x")
        assert len({ChunkRef(fp, 10), ChunkRef(fp, 10)}) == 1

    def test_size_in_identity(self):
        fp = fingerprint(b"x")
        assert ChunkRef(fp, 10) != ChunkRef(fp, 11)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            ChunkRef(fingerprint(b"x"), -1)

    def test_zero_size_allowed(self):
        assert ChunkRef(fingerprint(b"x"), 0).size == 0

    def test_repr_is_short(self):
        ref = ChunkRef(fingerprint(b"x"), 123)
        assert "123B" in repr(ref)
        assert len(repr(ref)) < 40

    def test_frozen(self):
        ref = ChunkRef(fingerprint(b"x"), 1)
        with pytest.raises(AttributeError):
            ref.size = 2


class TestChunk:
    def test_accessors_delegate_to_ref(self):
        data = b"payload"
        chunk = Chunk(ref=ChunkRef(fingerprint(data), len(data)), data=data)
        assert chunk.fp == fingerprint(data)
        assert chunk.size == len(data)
