"""Unit tests for configuration validation and presets."""

from dataclasses import replace

import pytest

from repro.config import (
    ChunkingConfig,
    DiskConfig,
    GCCDFConfig,
    RetentionConfig,
    SystemConfig,
)
from repro.errors import ConfigError


class TestChunkingConfig:
    def test_defaults_are_the_papers(self):
        config = ChunkingConfig()
        assert (config.min_size, config.avg_size, config.max_size) == (
            1024,
            4096,
            32768,
        )
        config.validate()

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ConfigError):
            ChunkingConfig(min_size=8192, avg_size=4096).validate()

    def test_rejects_non_power_of_two_average(self):
        with pytest.raises(ConfigError):
            ChunkingConfig(min_size=100, avg_size=3000, max_size=9000).validate()

    def test_rejects_zero_min(self):
        with pytest.raises(ConfigError):
            ChunkingConfig(min_size=0).validate()


class TestRetentionConfig:
    def test_paper_defaults(self):
        config = RetentionConfig()
        assert (config.retained, config.turnover) == (100, 20)

    def test_turnover_cannot_exceed_retained(self):
        with pytest.raises(ConfigError):
            RetentionConfig(retained=10, turnover=11).validate()

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            RetentionConfig(retained=0).validate()


class TestGCCDFConfig:
    def test_defaults_valid(self):
        GCCDFConfig().validate()

    def test_rejects_bad_packing(self):
        with pytest.raises(ConfigError):
            GCCDFConfig(packing="sorted").validate()

    def test_rejects_bad_segment_size(self):
        with pytest.raises(ConfigError):
            GCCDFConfig(segment_size=0).validate()

    def test_rejects_bad_bloom_rate(self):
        with pytest.raises(ConfigError):
            GCCDFConfig(bloom_fp_rate=1.5).validate()

    def test_negative_split_threshold_rejected(self):
        with pytest.raises(ConfigError):
            GCCDFConfig(split_denial_threshold=-1).validate()


class TestDiskConfig:
    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ConfigError):
            DiskConfig(bandwidth=0).validate()

    def test_rejects_negative_seek(self):
        with pytest.raises(ConfigError):
            DiskConfig(seek_time=-1).validate()


class TestSystemConfig:
    def test_paper_preset(self):
        config = SystemConfig.paper()
        assert config.container_size == 4 * 1024 * 1024

    def test_scaled_preset_geometry(self):
        config = SystemConfig.scaled()
        assert config.container_size == 128 * 1024
        assert config.chunking.avg_size == 1024

    def test_container_must_hold_max_chunk(self):
        with pytest.raises(ConfigError):
            SystemConfig(container_size=16 * 1024).validate()  # max chunk 32 KiB

    def test_vc_table_kind_checked(self):
        with pytest.raises(ConfigError):
            replace(SystemConfig.paper(), vc_table="radix").validate()

    def test_restore_cache_none_allowed(self):
        replace(SystemConfig.paper(), restore_cache_containers=None).validate()

    def test_restore_cache_zero_rejected(self):
        with pytest.raises(ConfigError):
            replace(SystemConfig.paper(), restore_cache_containers=0).validate()

    def test_with_gccdf_override(self):
        config = SystemConfig.scaled().with_gccdf(segment_size=7, packing="random")
        assert config.gccdf.segment_size == 7
        assert config.gccdf.packing == "random"

    def test_with_retention_override(self):
        config = SystemConfig.scaled().with_retention(retained=30, turnover=5)
        assert (config.retention.retained, config.retention.turnover) == (30, 5)

    def test_with_gccdf_validates(self):
        with pytest.raises(ConfigError):
            SystemConfig.scaled().with_gccdf(packing="bogus")
