"""Unit tests for the deduplicating ingest pipeline."""

import pytest

from repro.dedup.keys import key_generation, logical_fp
from repro.dedup.pipeline import IngestPipeline
from repro.dedup.rewriting.base import IngestEntry, RewritingPolicy
from repro.index.fingerprint_index import FingerprintIndex
from repro.index.recipe import RecipeStore
from repro.simio.disk import DiskModel
from repro.storage.store import ContainerStore

from tests.conftest import refs


@pytest.fixture
def parts():
    store = ContainerStore(capacity=4096, disk=DiskModel())
    index = FingerprintIndex()
    recipes = RecipeStore()
    return store, index, recipes


def make_pipeline(parts, **kwargs) -> IngestPipeline:
    store, index, recipes = parts
    return IngestPipeline(store=store, index=index, recipes=recipes, **kwargs)


class TestBasicIngest:
    def test_first_backup_stores_everything(self, parts):
        pipeline = make_pipeline(parts)
        result = pipeline.ingest(refs("a", range(10)))
        assert result.logical_bytes == 10 * 512
        assert result.stored_bytes == 10 * 512
        assert result.dedup_bytes == 0
        assert result.num_chunks == 10

    def test_identical_second_backup_fully_dedups(self, parts):
        pipeline = make_pipeline(parts)
        pipeline.ingest(refs("a", range(10)))
        result = pipeline.ingest(refs("a", range(10)))
        assert result.stored_bytes == 0
        assert result.dedup_bytes == 10 * 512

    def test_partial_overlap(self, parts):
        pipeline = make_pipeline(parts)
        pipeline.ingest(refs("a", range(10)))
        result = pipeline.ingest(refs("a", range(5, 15)))
        assert result.dedup_bytes == 5 * 512
        assert result.stored_bytes == 5 * 512

    def test_intra_backup_duplicates_removed(self, parts):
        pipeline = make_pipeline(parts)
        stream = refs("a", [1, 1, 1, 2])
        result = pipeline.ingest(stream)
        assert result.stored_bytes == 2 * 512
        assert result.dedup_bytes == 2 * 512

    def test_recipe_records_stream_order_and_sizes(self, parts):
        store, index, recipes = parts
        pipeline = make_pipeline(parts)
        stream = refs("a", [3, 1, 2])
        result = pipeline.ingest(stream, source="tagged")
        recipe = recipes.get(result.backup_id)
        assert recipe.source == "tagged"
        assert [logical_fp(e.fp) for e in recipe.entries] == [r.fp for r in stream]

    def test_recipe_keys_resolve_through_index(self, parts):
        store, index, recipes = parts
        pipeline = make_pipeline(parts)
        result = pipeline.ingest(refs("a", range(20)))
        recipe = recipes.get(result.backup_id)
        for entry in recipe.entries:
            placement = index.get(entry.fp)
            assert placement.container_id in store

    def test_accounting_invariant(self, parts):
        pipeline = make_pipeline(parts)
        pipeline.ingest(refs("a", range(8)))
        result = pipeline.ingest(refs("a", range(4, 12)))
        assert (
            result.stored_bytes + result.dedup_bytes == result.logical_bytes
        )

    def test_containers_written_counted(self, parts):
        pipeline = make_pipeline(parts)
        result = pipeline.ingest(refs("a", range(20)))  # 20*512B / 4KiB = 3 containers
        assert result.containers_written == 3


class TestNonDedupMode:
    def test_every_occurrence_stored(self, parts):
        pipeline = make_pipeline(parts, dedup_enabled=False)
        pipeline.ingest(refs("a", range(10)))
        result = pipeline.ingest(refs("a", range(10)))
        assert result.stored_bytes == result.logical_bytes
        assert result.dedup_bytes == 0

    def test_copies_get_distinct_generations(self, parts):
        store, index, recipes = parts
        pipeline = make_pipeline(parts, dedup_enabled=False)
        a = pipeline.ingest(refs("a", [1]))
        b = pipeline.ingest(refs("a", [1]))
        key_a = recipes.get(a.backup_id).entries[0].fp
        key_b = recipes.get(b.backup_id).entries[0].fp
        assert logical_fp(key_a) == logical_fp(key_b)
        assert key_generation(key_a) != key_generation(key_b)


class _RewriteEverything(RewritingPolicy):
    """Test double: flags every duplicate for rewriting."""

    name = "rewrite-all"

    def feed(self, entry: IngestEntry):
        if entry.duplicate:
            entry.rewrite = True
        return (entry,)


class _BufferingPolicy(RewritingPolicy):
    """Test double: buffers everything until flush (stream order must hold)."""

    name = "buffering"

    def __init__(self):
        self._held = []

    def feed(self, entry: IngestEntry):
        self._held.append(entry)
        return ()

    def flush(self):
        held, self._held = self._held, []
        return held


class TestRewritingHook:
    def test_rewritten_duplicates_stored_again(self, parts):
        pipeline = make_pipeline(parts, rewriting=_RewriteEverything())
        pipeline.ingest(refs("a", range(6)))
        result = pipeline.ingest(refs("a", range(6)))
        assert result.rewritten_bytes == 6 * 512
        assert result.stored_bytes == 6 * 512
        assert result.dedup_bytes == 0

    def test_rewrite_bumps_generation_and_relocates_future_references(self, parts):
        store, index, recipes = parts
        pipeline = make_pipeline(parts, rewriting=_RewriteEverything())
        first = pipeline.ingest(refs("a", [1]))
        second = pipeline.ingest(refs("a", [1]))
        key_first = recipes.get(first.backup_id).entries[0].fp
        key_second = recipes.get(second.backup_id).entries[0].fp
        assert key_generation(key_second) == key_generation(key_first) + 1
        # Both copies exist — old recipes keep reading the old copy.
        assert key_first in index
        assert key_second in index

    def test_buffered_policy_preserves_stream_order(self, parts):
        store, index, recipes = parts
        pipeline = make_pipeline(parts, rewriting=_BufferingPolicy())
        stream = refs("a", [5, 3, 9, 1])
        result = pipeline.ingest(stream)
        recipe = recipes.get(result.backup_id)
        assert [logical_fp(e.fp) for e in recipe.entries] == [r.fp for r in stream]
