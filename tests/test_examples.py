"""The examples are part of the public contract: each must run cleanly."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str) -> str:
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


def test_at_least_three_examples_exist():
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    output = run_example(name)
    assert output.strip()


def test_quickstart_verifies_restores():
    assert "byte-identical" in run_example("quickstart.py")


def test_rotation_example_reports_identical_ratio():
    output = run_example("backup_rotation.py")
    assert "identical dedup ratio" in output


def test_multi_source_example_shows_mfdedup_collapse():
    output = run_example("multi_source_fleet.py")
    assert "collapses" in output


def test_anatomy_example_exposes_clusters():
    output = run_example("defrag_anatomy.py")
    assert "cluster owners=" in output
    assert "GS list" in output
