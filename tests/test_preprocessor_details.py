"""Detailed Preprocessor/Segment behaviour (GC cache bounds, §5.2)."""

import pytest

from repro.backup.system import DedupBackupService
from repro.core.gccdf import GCCDFMigration
from repro.core.preprocessor import Preprocessor, Segment
from repro.gc.mark import MarkStage
from repro.gc.migration import SweepContext

from tests.conftest import refs


def sweep_context(service) -> SweepContext:
    mark = MarkStage(service.config, service.index, service.recipes, service.disk).run()
    return SweepContext(
        config=service.config,
        store=service.store,
        index=service.index,
        recipes=service.recipes,
        disk=service.disk,
        mark=mark,
    )


def prepared_service(tiny_config, segment_size=2):
    config = tiny_config.with_gccdf(segment_size=segment_size)
    service = DedupBackupService(config=config, migration=GCCDFMigration())
    first = service.ingest(refs("pp", range(64)))
    service.ingest(refs("pp", range(0, 64, 2)))
    service.delete_backup(first.backup_id)
    return service


class TestSegmentProperties:
    def test_cached_bytes_equals_valid_chunk_sum(self, tiny_config):
        service = prepared_service(tiny_config)
        for segment in Preprocessor(sweep_context(service)).segments():
            assert segment.cached_bytes == sum(c.size for c in segment.valid_chunks)

    def test_gc_cache_bounded_by_segment_geometry(self, tiny_config):
        """§5.2: the GC cache holds at most segment_size containers' bytes."""
        service = prepared_service(tiny_config, segment_size=2)
        limit = 2 * service.config.container_size
        for segment in Preprocessor(sweep_context(service)).segments():
            assert segment.cached_bytes <= limit

    def test_segments_cover_all_reclaimable_containers_once(self, tiny_config):
        service = prepared_service(tiny_config, segment_size=3)
        ctx = sweep_context(service)
        reclaimable = {cid for cid, _ in Preprocessor(ctx).reclaimable_containers()}
        seen: list[int] = []
        for segment in Preprocessor(ctx).segments():
            seen.extend(segment.container_ids)
        assert sorted(seen) == sorted(reclaimable)
        assert len(seen) == len(set(seen))

    def test_segment_indices_sequential(self, tiny_config):
        service = prepared_service(tiny_config, segment_size=1)
        indices = [s.index for s in Preprocessor(sweep_context(service)).segments()]
        assert indices == list(range(len(indices)))

    def test_trace_level_segments_have_no_payloads(self, tiny_config):
        service = prepared_service(tiny_config)
        for segment in Preprocessor(sweep_context(service)).segments():
            assert segment.payloads == {}

    def test_byte_level_segments_carry_payloads(self, tiny_config):
        from repro.chunking.base import split
        from repro.chunking.fastcdc import FastCDC
        from repro.util.rng import DeterministicRng

        service = DedupBackupService(config=tiny_config, migration=GCCDFMigration())
        cdc = FastCDC(tiny_config.chunking)
        rng = DeterministicRng(5)
        data_a = bytes(rng.randint(0, 255) for _ in range(10_000))
        data_b = data_a[:5000] + bytes(rng.randint(0, 255) for _ in range(5000))
        first = service.ingest(split(cdc, data_a))
        service.ingest(split(cdc, data_b))
        service.delete_backup(first.backup_id)
        segments = list(Preprocessor(sweep_context(service)).segments())
        assert any(segment.payloads for segment in segments)
        for segment in segments:
            for ref in segment.valid_chunks:
                if ref.fp in segment.payloads:
                    assert len(segment.payloads[ref.fp]) == ref.size
