"""Tests for deterministic byte expansion (workloads.bytesgen)."""

import pytest

from repro.workloads.bytesgen import expand_chunk, synthetic_backup_bytes


class TestExpandChunk:
    def test_exact_length(self):
        for size in (0, 1, 63, 64, 65, 4096):
            assert len(expand_chunk("ns", 1, 0, size)) == size

    def test_deterministic(self):
        assert expand_chunk("ns", 7, 3, 1000) == expand_chunk("ns", 7, 3, 1000)

    def test_identity_sensitivity(self):
        assert expand_chunk("ns", 1, 0, 256) != expand_chunk("ns", 2, 0, 256)

    def test_version_sensitivity(self):
        assert expand_chunk("ns", 1, 0, 256) != expand_chunk("ns", 1, 1, 256)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            expand_chunk("ns", 1, 0, -1)

    def test_content_is_not_trivially_compressible(self):
        """Pseudo-random output: no long runs of a single byte."""
        data = expand_chunk("ns", 1, 0, 4096)
        assert len(set(data)) > 200


class TestSyntheticBackupBytes:
    def test_exact_size(self):
        assert len(synthetic_backup_bytes(seed=1, version=0, size=10_000)) == 10_000

    def test_deterministic(self):
        a = synthetic_backup_bytes(seed=1, version=3, size=50_000)
        b = synthetic_backup_bytes(seed=1, version=3, size=50_000)
        assert a == b

    def test_zero_churn_means_identical_versions(self):
        v0 = synthetic_backup_bytes(seed=2, version=0, size=20_000, churn=0.0)
        v5 = synthetic_backup_bytes(seed=2, version=5, size=20_000, churn=0.0)
        assert v0 == v5

    def test_full_churn_changes_everything_each_version(self):
        v0 = synthetic_backup_bytes(seed=2, version=0, size=20_000, churn=1.0)
        v1 = synthetic_backup_bytes(seed=2, version=1, size=20_000, churn=1.0)
        # Every region mutates every version → no shared region content.
        assert v0 != v1

    def test_moderate_churn_shares_most_regions(self):
        region = 1024
        v0 = synthetic_backup_bytes(seed=3, version=0, size=64 * region, churn=0.1, region_size=region)
        v1 = synthetic_backup_bytes(seed=3, version=1, size=64 * region, churn=0.1, region_size=region)
        shared = sum(
            v0[i : i + region] == v1[i : i + region]
            for i in range(0, len(v0), region)
        )
        assert shared >= 45  # ≈ 90 % of 64 regions

    def test_churn_bounds_validated(self):
        with pytest.raises(ValueError):
            synthetic_backup_bytes(seed=1, version=0, size=100, churn=1.5)

    def test_empty(self):
        assert synthetic_backup_bytes(seed=1, version=0, size=0) == b""
