"""The package's public surface: imports, __all__, and the README snippet."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_present(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))

    def test_approaches_tuple(self):
        assert set(repro.APPROACHES) == {
            "nondedup",
            "naive",
            "capping",
            "har",
            "smr",
            "mfdedup",
            "gccdf",
        }

    def test_dataset_names(self):
        assert set(repro.DATASET_NAMES) == {"web", "wiki", "code", "mix", "syn"}


SUBPACKAGES = [
    "repro.chunking",
    "repro.hashing",
    "repro.simio",
    "repro.storage",
    "repro.index",
    "repro.dedup",
    "repro.dedup.rewriting",
    "repro.restore",
    "repro.gc",
    "repro.core",
    "repro.faults",
    "repro.mfdedup",
    "repro.workloads",
    "repro.backup",
    "repro.metrics",
    "repro.analysis",
    "repro.experiments",
]


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_imports_and_documents(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} must have a module docstring"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_all_resolves(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.{name}"


class TestReadmeQuickstart:
    def test_snippet_runs(self):
        """The README's quickstart, executed verbatim (smaller workload)."""
        from repro import RotationDriver, SystemConfig, dataset, make_service

        config = SystemConfig.scaled(retained=10, turnover=3)
        service = make_service("gccdf", config)
        driver = RotationDriver(service, config.retention, dataset_name="web")
        result = driver.run(dataset("web", scale=0.1, num_backups=16))
        assert result.dedup_ratio > 1.0
        assert result.mean_read_amplification >= 1.0
        assert result.restore_speed > 0
