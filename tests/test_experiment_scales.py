"""ExperimentScale configuration plumbing (vc-table / cache overrides)."""

import pytest

from repro.errors import ConfigError
from repro.experiments.common import SCALES, ExperimentScale


class TestScaleConfigs:
    def test_retention_propagates(self):
        scale = SCALES["quick"]
        config = scale.config()
        assert config.retention.retained == scale.retained
        assert config.retention.turnover == scale.turnover

    def test_gccdf_overrides(self):
        config = SCALES["quick"].config(segment_size=7, packing="tree")
        assert config.gccdf.segment_size == 7
        assert config.gccdf.packing == "tree"

    def test_vc_table_override(self):
        config = SCALES["quick"].config(vc_table="bloom")
        assert config.vc_table == "bloom"

    def test_restore_cache_override(self):
        config = SCALES["quick"].config(restore_cache_containers=8)
        assert config.restore_cache_containers == 8

    def test_combined_overrides(self):
        config = SCALES["quick"].config(
            vc_table="bloom", restore_cache_containers=4, segment_size=3
        )
        assert config.vc_table == "bloom"
        assert config.restore_cache_containers == 4
        assert config.gccdf.segment_size == 3

    def test_invalid_override_rejected(self):
        with pytest.raises(ConfigError):
            SCALES["quick"].config(vc_table="radix")

    def test_num_backups_floor(self):
        """Even tiny retention windows get at least one turnover batch."""
        scale = ExperimentScale("t", retained=5, turnover=2, workload_scale=0.1)
        for dataset in ("wiki", "code", "mix", "syn", "web"):
            assert scale.num_backups(dataset) >= scale.retained + scale.turnover

    def test_full_scale_matches_paper_counts(self):
        full = SCALES["full"]
        assert full.num_backups("wiki") == 120
        assert full.num_backups("code") == 220
        assert full.num_backups("mix") == 200
        assert full.num_backups("syn") == 240
        assert full.num_backups("web") == 120  # floor: retained + turnover
