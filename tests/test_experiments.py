"""Smoke and consistency tests for the experiment harness.

These run the real protocol at ``quick`` scale (seconds) and assert the
qualitative shapes the paper's figures rely on, not absolute numbers.
"""

import pytest

from repro.errors import ConfigError
from repro.experiments import clear_cache, get_scale, run_protocol
from repro.experiments.common import SCALES
from repro.experiments import fig02, fig03, fig11, fig12, fig13, fig14, fig15, table01
from repro.experiments.run import EXPERIMENTS, main


@pytest.fixture(autouse=True, scope="module")
def _shared_cache():
    """Share protocol runs across this module's tests, then clean up."""
    yield
    clear_cache()


class TestScales:
    def test_known_scales(self):
        assert set(SCALES) == {"quick", "medium", "full"}

    def test_get_scale_passthrough(self):
        scale = SCALES["quick"]
        assert get_scale(scale) is scale

    def test_unknown_scale(self):
        with pytest.raises(ConfigError):
            get_scale("galactic")

    def test_num_backups_preserves_round_structure(self):
        quick = SCALES["quick"]
        # wiki: 120 × 20/100 = 24 → (24-20)/5 ≈ same 2-round shape as paper.
        assert quick.num_backups("wiki") == 25
        assert quick.num_backups("code") == 44


class TestRunProtocolCache:
    def test_cache_returns_same_object(self):
        a = run_protocol("naive", "web", "quick")
        b = run_protocol("naive", "web", "quick")
        assert a is b

    def test_overrides_get_distinct_cache_keys(self):
        a = run_protocol("gccdf", "web", "quick")
        b = run_protocol("gccdf", "web", "quick", segment_size=3)
        assert a is not b


class TestPaperShapes:
    """The claims the paper's figures make, asserted at quick scale."""

    def test_gccdf_preserves_naive_dedup_ratio(self):
        for ds in ("web", "mix"):
            naive = run_protocol("naive", ds, "quick")
            gccdf = run_protocol("gccdf", ds, "quick")
            assert gccdf.dedup_ratio == pytest.approx(naive.dedup_ratio, rel=1e-6)

    def test_gccdf_beats_naive_read_amplification(self):
        naive = run_protocol("naive", "mix", "quick")
        gccdf = run_protocol("gccdf", "mix", "quick")
        assert gccdf.mean_read_amplification < naive.mean_read_amplification

    def test_rewriting_loses_dedup_ratio(self):
        naive = run_protocol("naive", "mix", "quick")
        for approach in ("har", "smr"):
            rewriting = run_protocol(approach, "mix", "quick")
            assert rewriting.dedup_ratio < naive.dedup_ratio

    def test_mfdedup_collapses_on_multi_source(self):
        mfdedup = run_protocol("mfdedup", "mix", "quick")
        assert mfdedup.dedup_ratio == pytest.approx(1.0, abs=0.05)

    def test_mfdedup_works_on_single_source(self):
        mfdedup = run_protocol("mfdedup", "web", "quick")
        assert mfdedup.dedup_ratio > 3.0

    def test_nondedup_ratio_is_one(self):
        nondedup = run_protocol("nondedup", "web", "quick")
        assert nondedup.dedup_ratio == pytest.approx(1.0)

    def test_mfdedup_migration_fraction_substantial_single_source(self):
        """Fig. 3: MFDedup migrates a large share of the processed data."""
        from repro.backup.approaches import make_service
        from repro.backup.driver import RotationDriver
        from repro.workloads.datasets import dataset

        scale = SCALES["quick"]
        service = make_service("mfdedup", scale.config())
        RotationDriver(service, scale.config().retention, "web").run(
            dataset("web", scale=scale.workload_scale, num_backups=scale.num_backups("web"))
        )
        assert service.migration_fraction > 0.3


class TestExperimentRenderers:
    @pytest.mark.parametrize("name", sorted(EXPERIMENTS))
    def test_each_experiment_renders(self, name):
        text = EXPERIMENTS[name]("quick")
        assert text.strip()
        assert "—" in text  # title present

    def test_fig11_lists_all_approaches(self):
        text = fig11.run("quick")
        for approach in ("nondedup", "naive", "capping", "har", "smr", "mfdedup", "gccdf"):
            assert approach in text

    def test_fig12_has_per_dataset_blocks(self):
        text = fig12.run("quick")
        for ds in ("WIKI", "CODE", "MIX", "SYN"):
            assert ds in text

    def test_fig15_includes_random_packing_row(self):
        assert "random packing" in fig15.run("quick")

    def test_table01_lists_datasets(self):
        text = table01.run("quick")
        for ds in ("WIKI", "CODE", "MIX", "SYN"):
            assert ds in text


class TestCLI:
    def test_single_figure(self, capsys):
        assert main(["--figure", "table01", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "completed in" in out

    def test_requires_selection(self):
        with pytest.raises(SystemExit):
            main(["--scale", "quick"])

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["--figure", "fig99"])
