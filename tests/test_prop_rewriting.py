"""Property-based invariants of the rewriting policies.

Whatever a policy decides, it must never break correctness: every live
backup stays restorable with its exact chunk sequence, accounting balances,
and GC later reclaims pinned copies exactly when their backups rotate out.
"""

from hypothesis import given, settings, strategies as st

from repro.backup.system import DedupBackupService
from repro.backup.verify import verify_system
from repro.config import ChunkingConfig, RetentionConfig, SystemConfig
from repro.dedup.keys import logical_fp
from repro.dedup.rewriting import make_rewriting

from tests.conftest import refs


def make_service(policy_name: str) -> DedupBackupService:
    config = SystemConfig(
        container_size=4096,
        chunking=ChunkingConfig(min_size=128, avg_size=512, max_size=1024),
        retention=RetentionConfig(retained=8, turnover=2),
    )
    service = DedupBackupService(config=config)
    if policy_name != "none":
        service.pipeline.rewriting = make_rewriting(policy_name, store=service.store)
    return service


policy_names = st.sampled_from(["none", "capping", "har", "smr"])

backup_plans = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=2, max_value=30),
        st.booleans(),  # run a delete+GC round after this ingest?
    ),
    min_size=1,
    max_size=8,
)


@given(backup_plans, policy_names)
@settings(max_examples=50, deadline=None)
def test_rewriting_preserves_restorability(plans, policy_name):
    service = make_service(policy_name)
    expected = {}
    for start, length, do_gc in plans:
        stream = refs("rwprop", range(start, start + length))
        result = service.ingest(stream)
        expected[result.backup_id] = [r.fp for r in stream]
        if do_gc and len(service.live_backup_ids()) > 1:
            service.delete_oldest(1)
            service.run_gc()
    for backup_id in service.live_backup_ids():
        recipe = service.recipes.get(backup_id)
        assert [logical_fp(e.fp) for e in recipe.entries] == expected[backup_id]
        service.restore(backup_id)  # must not raise
    report = verify_system(service)
    assert report.consistent, report.errors


@given(backup_plans, policy_names)
@settings(max_examples=40, deadline=None)
def test_ingest_accounting_balances(plans, policy_name):
    """stored + dedup == logical for every ingest; rewritten ⊆ stored."""
    service = make_service(policy_name)
    for start, length, _ in plans:
        result = service.ingest(refs("rwprop", range(start, start + length)))
        assert result.stored_bytes + result.dedup_bytes == result.logical_bytes
        assert 0 <= result.rewritten_bytes <= result.stored_bytes


@given(backup_plans, policy_names)
@settings(max_examples=40, deadline=None)
def test_rewriting_never_improves_dedup_ratio(plans, policy_name):
    """A rewriting policy can only store *more* than the null policy."""
    baseline = make_service("none")
    rewriting = make_service(policy_name)
    for start, length, _ in plans:
        baseline.ingest(refs("rwprop", range(start, start + length)))
        rewriting.ingest(refs("rwprop", range(start, start + length)))
    assert (
        rewriting.cumulative_stored_bytes >= baseline.cumulative_stored_bytes
    )
    assert rewriting.dedup_ratio <= baseline.dedup_ratio + 1e-9
