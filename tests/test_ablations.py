"""Smoke + shape tests for the ablation experiments (quick scale)."""

import pytest

from repro.experiments import ablations, clear_cache, run_protocol


@pytest.fixture(autouse=True, scope="module")
def _shared_cache():
    yield
    clear_cache()


class TestAblationRenderers:
    def test_packing_table(self):
        text = ablations.packing_ablation("quick")
        for packing in ("greedy", "tree", "random"):
            assert packing in text

    def test_vc_table(self):
        text = ablations.vc_table_ablation("quick")
        assert "exact" in text and "bloom" in text

    def test_split_denial_table(self):
        text = ablations.split_denial_ablation("quick")
        assert "threshold" in text

    def test_restore_cache_table(self):
        text = ablations.restore_cache_ablation("quick")
        assert "unbounded" in text

    def test_run_concatenates_all(self):
        text = ablations.run("quick")
        assert text.count("Ablation —") == 4


class TestAblationShapes:
    def test_greedy_not_worse_than_random(self):
        greedy = run_protocol("gccdf", "mix", "quick", packing="greedy")
        random_packing = run_protocol("gccdf", "mix", "quick", packing="random")
        assert (
            greedy.mean_read_amplification
            <= random_packing.mean_read_amplification + 1e-9
        )

    def test_bloom_vc_never_reclaims_more(self):
        exact = run_protocol("gccdf", "web", "quick", vc_table="exact")
        bloom = run_protocol("gccdf", "web", "quick", vc_table="bloom")
        assert sum(r.reclaimed_bytes for r in bloom.gc_reports) <= sum(
            r.reclaimed_bytes for r in exact.gc_reports
        )
        # Dedup ratio is unaffected (it counts writes, not residue).
        assert bloom.dedup_ratio == pytest.approx(exact.dedup_ratio)

    def test_extreme_split_denial_hurts_locality(self):
        fine = run_protocol("gccdf", "mix", "quick", split_denial_threshold=2)
        coarse = run_protocol("gccdf", "mix", "quick", split_denial_threshold=256)
        assert coarse.mean_read_amplification >= fine.mean_read_amplification

    def test_small_cache_inflates_amplification(self):
        unbounded = run_protocol("naive", "mix", "quick")
        tiny = run_protocol("naive", "mix", "quick", restore_cache_containers=2)
        assert tiny.mean_read_amplification > unbounded.mean_read_amplification
