"""The parallel experiment-matrix runner: coverage, determinism, caching.

The pool-determinism guard renders figures from results produced by a
4-worker process pool and asserts byte-identical text against a serial
in-process run.  (``GCReport.analyze_cpu_seconds`` — *measured* interpreter
wall time — is the one nondeterministic field in any run; fig14 prints it
in its informational ``(cpu)`` column, so the guard uses figures built
purely from simulated quantities.)
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.experiments import clear_cache, fig02, fig15, protocol_runs
from repro.experiments.common import memoized
from repro.experiments.matrix import CELL_BUILDERS, Cell, cells_for, run_matrix
from repro.experiments.run import EXPERIMENTS, describe, main


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_cache()
    yield
    clear_cache()


class TestCellEnumeration:
    def test_registry_parity_with_cli(self):
        assert set(CELL_BUILDERS) == set(EXPERIMENTS)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigError):
            cells_for(["fig99"], "quick")

    def test_dedup_across_figures(self):
        fig11_only = cells_for(["fig11"], "quick")
        # fig12/13/14 read projections of fig11's runs (minus nondedup).
        combined = cells_for(["fig11", "fig12", "fig13", "fig14"], "quick")
        assert set(combined) == set(fig11_only)

    def test_fig15_cells_carry_overrides(self):
        cells = cells_for(["fig15"], "quick")
        assert all(cell.approach == "gccdf" and cell.dataset == "mix" for cell in cells)
        segment_sizes = {
            dict(cell.gccdf_overrides).get("segment_size") for cell in cells
        }
        assert {10, 25, 50, 100, 200} <= segment_sizes

    def test_cells_are_picklable_and_hashable(self):
        import pickle

        cells = cells_for(["ablations"], "quick")
        assert len(set(cells)) == len(cells)
        assert pickle.loads(pickle.dumps(cells)) == cells


class TestMatrixExecution:
    def test_parallel_matches_serial_byte_for_byte(self, tmp_path):
        """Determinism guard for the pool: --jobs 4 ≡ --jobs 1."""
        serial = run_matrix(["fig02"], "quick", jobs=1, use_cache=False)
        assert serial.executed == len(cells_for(["fig02"], "quick"))
        serial_text = fig02.run("quick")

        clear_cache()
        parallel = run_matrix(
            ["fig02"], "quick", jobs=4, cache_dir=tmp_path / "cache"
        )
        assert parallel.executed == serial.executed
        assert fig02.run("quick") == serial_text

    def test_matrix_hydrates_memo_and_rendering_reruns_nothing(self):
        summary = run_matrix(["fig15"], "quick", jobs=1, use_cache=False)
        assert summary.executed == len(cells_for(["fig15"], "quick"))
        for cell in cells_for(["fig15"], "quick"):
            assert memoized(cell.memo_key()) is not None
        runs_before = protocol_runs()
        text = fig15.run("quick")
        assert text.strip()
        assert protocol_runs() == runs_before

    def test_warm_disk_cache_reruns_nothing(self, tmp_path):
        cold = run_matrix(["fig02"], "quick", jobs=2, cache_dir=tmp_path / "cache")
        assert cold.executed == len(cold.outcomes)
        cold_text = fig02.run("quick")

        clear_cache()
        warm = run_matrix(["fig02"], "quick", jobs=2, cache_dir=tmp_path / "cache")
        assert warm.executed == 0
        assert warm.disk_hits == len(warm.outcomes)
        assert fig02.run("quick") == cold_text

        # A third pass in the same process hits the memo, not the disk.
        memo = run_matrix(["fig02"], "quick", jobs=2, cache_dir=tmp_path / "cache")
        assert memo.memo_hits == len(memo.outcomes)

    def test_summary_json(self, tmp_path):
        summary = run_matrix(["fig02"], "quick", jobs=1, use_cache=False)
        path = tmp_path / "BENCH_matrix.json"
        summary.write_json(path)
        data = json.loads(path.read_text())
        assert data["cells_total"] == len(summary.outcomes)
        assert data["executed"] == summary.executed
        assert data["scale"] == "quick"
        assert data["total_wall_seconds"] > 0
        assert data["total_cell_seconds"] > 0
        assert len(data["cells"]) == data["cells_total"]
        for cell in data["cells"]:
            assert cell["source"] in ("run", "disk", "memo", "dedup")
            assert cell["seconds"] >= 0
            assert cell["label"]

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigError):
            run_matrix(["fig02"], "quick", jobs=0, use_cache=False)

    def test_unwritable_cache_dir_fails_fast(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        with pytest.raises(ConfigError, match="not writable"):
            run_matrix(["fig02"], "quick", jobs=1, cache_dir=blocker / "cache")

    def test_identical_resolved_configs_share_one_run(self, monkeypatch):
        """An override pinning a knob to its default resolves to the same
        config, so the matrix runs the protocol once for both cells."""
        plain = Cell("gccdf", "mix", "quick")
        pinned = Cell("gccdf", "mix", "quick", gccdf_overrides=(("segment_size", 100),))
        assert plain.memo_key() != pinned.memo_key()
        assert plain.cache_key() == pinned.cache_key()

        monkeypatch.setitem(CELL_BUILDERS, "_dup", lambda scale: [plain, pinned])
        summary = run_matrix(["_dup"], "quick", jobs=1, use_cache=False)
        assert summary.executed == 1
        assert summary.dedup_hits == 1
        assert memoized(plain.memo_key()) is memoized(pinned.memo_key())


class TestCli:
    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out
        assert "Fig. 11" in out

    def test_describe_is_one_line(self):
        for name in EXPERIMENTS:
            text = describe(name)
            assert text
            assert "\n" not in text

    def test_cli_runs_figure_through_matrix(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        bench = tmp_path / "BENCH_matrix.json"
        assert (
            main(
                [
                    "--figure",
                    "table01",
                    "--figure",
                    "fig02",
                    "--scale",
                    "quick",
                    "--jobs",
                    "2",
                    "--bench-json",
                    str(bench),
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "Fig. 2" in captured.out
        assert "Table 1" in captured.out
        assert "matrix:" in captured.err
        assert "protocol re-runs while rendering" in captured.err
        data = json.loads(bench.read_text())
        assert data["cells_total"] == len(cells_for(["fig02", "table01"], "quick"))
