"""Unit tests for the MFDedup baseline (volumes + engine)."""

import pytest

from repro.config import SystemConfig
from repro.errors import StorageError
from repro.mfdedup.engine import MFDedupService
from repro.mfdedup.volumes import VolumeStore
from repro.model import ChunkRef
from repro.simio.disk import DiskModel
from repro.hashing.fingerprints import synthetic_fingerprint

from tests.conftest import refs


@pytest.fixture
def service(tiny_config) -> MFDedupService:
    return MFDedupService(config=tiny_config)


class TestVolumeStore:
    def test_write_and_covering(self):
        store = VolumeStore(DiskModel())
        ref = ChunkRef(fp=synthetic_fingerprint("v", 1), size=100)
        store.write_chunk(0, 0, ref)
        assert [v.size_bytes for v in store.volumes_covering(0)] == [100]
        assert store.volumes_covering(1) == []

    def test_migrate_moves_bytes_and_charges_io(self):
        disk = DiskModel()
        store = VolumeStore(disk)
        a = refs("v", range(4))
        for r in a:
            store.write_chunk(0, 0, r)
        source = store.get(0, 0)
        destination = store.get_or_create(0, 1)
        moved = store.migrate(source, destination, source.chunks[:2])
        assert moved == 2 * 512
        assert source.size_bytes == 2 * 512
        assert destination.size_bytes == 2 * 512
        assert store.migrated_bytes == 2 * 512
        assert disk.stats.read_bytes >= 2 * 512  # migration reads + writes

    def test_drop_expired(self):
        store = VolumeStore(DiskModel())
        store.write_chunk(0, 0, refs("v", [1])[0])
        store.write_chunk(0, 2, refs("v", [2])[0])
        dropped, dropped_bytes = store.drop_expired(oldest_live=1)
        assert dropped == 1
        assert dropped_bytes == 512
        assert len(store) == 1

    def test_get_unknown_raises(self):
        with pytest.raises(StorageError):
            VolumeStore(DiskModel()).get(3, 4)


class TestMFDedupIngest:
    def test_neighbor_duplicates_removed(self, service):
        service.ingest(refs("m", range(10)))
        result = service.ingest(refs("m", range(10)))
        assert result.stored_bytes == 0
        assert result.dedup_bytes == 10 * 512

    def test_non_adjacent_duplicates_not_removed(self, service):
        """The defining MFDedup weakness: content skipping one backup is
        stored again (multi-source failure mode, Fig. 2b)."""
        service.ingest(refs("m", range(10)))          # source A
        service.ingest(refs("other", range(10)))       # source B in between
        result = service.ingest(refs("m", range(10)))  # source A again
        assert result.stored_bytes == 10 * 512
        assert result.dedup_bytes == 0

    def test_alternating_sources_collapse_to_nondedup(self, tiny_config):
        service = MFDedupService(config=tiny_config)
        for round_index in range(3):
            service.ingest(refs("a", range(8)))
            service.ingest(refs("b", range(100, 108)))
        assert service.dedup_ratio == pytest.approx(1.0)

    def test_single_source_dedup_ratio_high(self, service):
        for _ in range(5):
            service.ingest(refs("m", range(10)))
        assert service.dedup_ratio == pytest.approx(5.0)

    def test_migration_volume_tracked(self, service):
        service.ingest(refs("m", range(10)))
        service.ingest(refs("m", range(5, 15)))
        # Chunks 5..9 survive into the second backup: migrated forward.
        assert service.migrated_bytes == 5 * 512
        assert 0 < service.migration_fraction < 1

    def test_intra_backup_duplicates(self, service):
        result = service.ingest(refs("m", [1, 1, 2]))
        assert result.stored_bytes == 2 * 512
        assert result.dedup_bytes == 512


class TestMFDedupLifecycle:
    def test_volume_ranges_are_contiguous_lifetimes(self, service):
        service.ingest(refs("m", range(8)))          # backup 0
        service.ingest(refs("m", range(4, 12)))      # backup 1
        service.ingest(refs("m", range(8, 16)))      # backup 2
        spans = sorted((v.first, v.last) for v in service.volumes if v.chunks)
        # chunks 0-3 live [0,0]; 4-7 live [0,1]; 8-11 live [1,2]; 12-15 [2,2]
        assert spans == [(0, 0), (0, 1), (1, 2), (2, 2)]

    def test_restore_reads_only_covering_volumes(self, service):
        service.ingest(refs("m", range(8)))
        service.ingest(refs("m", range(4, 12)))
        report = service.restore(1)
        assert report.logical_bytes == 8 * 512
        assert report.container_bytes_read == 8 * 512  # exactly its chunks
        assert report.read_amplification == pytest.approx(1.0)

    def test_gc_drops_expired_volumes_only(self, service):
        service.ingest(refs("m", range(8)))
        service.ingest(refs("m", range(4, 12)))
        service.delete_backup(0)
        report = service.run_gc()
        assert report.backups_purged == 1
        assert report.reclaimed_bytes == 4 * 512  # chunks 0..3 lived [0,0]
        assert report.produced_containers == 0
        # Backup 1 must still restore perfectly.
        assert service.restore(1).logical_bytes == 8 * 512

    def test_gc_with_all_deleted_drops_everything(self, service):
        service.ingest(refs("m", range(8)))
        service.delete_backup(0)
        service.run_gc()
        assert service.physical_bytes == 0

    def test_accounting_properties(self, service):
        service.ingest(refs("m", range(8)))
        service.ingest(refs("m", range(4, 12)))
        assert service.cumulative_logical_bytes == 16 * 512
        assert service.cumulative_stored_bytes == 12 * 512
        assert service.physical_bytes == 12 * 512
        assert service.live_backup_ids() == [0, 1]
