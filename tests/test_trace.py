"""Tests for trace save/load round-tripping."""

import pytest

from repro.backup.driver import BackupSpec
from repro.workloads.datasets import dataset
from repro.workloads.trace import (
    TraceFormatError,
    load_trace,
    save_trace,
    trace_stats,
)

from tests.conftest import refs


def specs():
    return [
        BackupSpec(source="a", chunks=tuple(refs("t", range(10)))),
        BackupSpec(source="b", chunks=tuple(refs("t", range(5, 15)))),
        BackupSpec(source="", chunks=tuple(refs("t", [1]))),
    ]


class TestRoundTrip:
    def test_identity(self, tmp_path):
        path = tmp_path / "trace.txt"
        original = specs()
        assert save_trace(path, original) == 3
        loaded = list(load_trace(path))
        assert loaded == original

    def test_gzip_identity(self, tmp_path):
        path = tmp_path / "trace.txt.gz"
        original = specs()
        save_trace(path, original)
        assert list(load_trace(path)) == original
        # And it actually compressed something.
        assert path.stat().st_size < 2000

    def test_dataset_roundtrip(self, tmp_path):
        path = tmp_path / "web.trace"
        original = list(dataset("web", scale=0.05, num_backups=5))
        save_trace(path, original)
        assert list(load_trace(path)) == original

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.trace"
        assert save_trace(path, []) == 0
        assert list(load_trace(path)) == []

    def test_lazy_streaming(self, tmp_path):
        path = tmp_path / "trace.txt"
        save_trace(path, specs())
        iterator = load_trace(path)
        first = next(iterator)
        assert first.source == "a"


class TestStats:
    def test_counts(self, tmp_path):
        path = tmp_path / "trace.txt"
        save_trace(path, specs())
        stats = trace_stats(path)
        assert stats["backups"] == 3
        assert stats["chunks"] == 21
        assert stats["logical_bytes"] == 21 * 512
        assert stats["unique_fingerprints"] == 15


class TestErrors:
    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("not a trace\n")
        with pytest.raises(TraceFormatError):
            list(load_trace(path))

    def test_chunk_before_backup(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("#repro-trace v1\nC " + "00" * 20 + " 10\n")
        with pytest.raises(TraceFormatError):
            list(load_trace(path))

    def test_bad_fingerprint_width(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("#repro-trace v1\nB s\nC abcd 10\n")
        with pytest.raises(TraceFormatError):
            list(load_trace(path))

    def test_unknown_record(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("#repro-trace v1\nX what\n")
        with pytest.raises(TraceFormatError):
            list(load_trace(path))

    def test_whitespace_source_rejected(self, tmp_path):
        spec = BackupSpec(source="two words", chunks=tuple(refs("t", [1])))
        with pytest.raises(TraceFormatError):
            save_trace(tmp_path / "t.trace", [spec])

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "trace.txt"
        save_trace(path, specs()[:1])
        content = path.read_text().replace("B a\n", "B a\n# comment\n\n")
        path.write_text(content)
        assert list(load_trace(path)) == specs()[:1]
