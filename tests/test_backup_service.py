"""Tests for the backup facade: service accounting, retention, approaches."""

import pytest

from repro.backup.approaches import APPROACHES, make_service
from repro.backup.retention import RetentionPolicy
from repro.backup.system import DedupBackupService
from repro.config import RetentionConfig, SystemConfig
from repro.core.gccdf import GCCDFMigration
from repro.dedup.rewriting import (
    CappingRewriting,
    HARRewriting,
    NullRewriting,
    SMRRewriting,
)
from repro.gc.migration import NaiveMigration
from repro.mfdedup.engine import MFDedupService

from tests.conftest import refs


class TestDedupRatioAccounting:
    def test_nondedup_ratio_is_one(self, tiny_config):
        service = DedupBackupService(config=tiny_config, dedup_enabled=False)
        for _ in range(3):
            service.ingest(refs("a", range(10)))
        assert service.dedup_ratio == pytest.approx(1.0)

    def test_full_duplicates_scale_ratio(self, tiny_config):
        service = DedupBackupService(config=tiny_config)
        for _ in range(4):
            service.ingest(refs("a", range(10)))
        assert service.dedup_ratio == pytest.approx(4.0)

    def test_ratio_survives_deletion_and_gc(self, tiny_config):
        """Cumulative accounting: GC does not change the dedup ratio."""
        service = DedupBackupService(config=tiny_config)
        first = service.ingest(refs("a", range(10)))
        service.ingest(refs("a", range(10)))
        ratio_before = service.dedup_ratio
        service.delete_backup(first.backup_id)
        service.run_gc()
        assert service.dedup_ratio == pytest.approx(ratio_before)

    def test_empty_service_ratio(self, tiny_config):
        assert DedupBackupService(config=tiny_config).dedup_ratio == 1.0

    def test_physical_bytes_track_store(self, tiny_config):
        service = DedupBackupService(config=tiny_config)
        service.ingest(refs("a", range(10)))
        assert service.physical_bytes == 10 * 512

    def test_describe_mentions_name_and_ratio(self, tiny_config):
        service = DedupBackupService(config=tiny_config, name="naive")
        service.ingest(refs("a", range(4)))
        assert "naive" in service.describe()


class TestSharedCacheAcrossGC:
    def test_long_lived_cache_never_serves_reclaimed_containers(self, tiny_config):
        """Regression: a cache held across a GC round must drop every
        container the sweep reclaimed, so restores through it read the
        migrated copies instead of stale pre-sweep payloads."""
        from repro.storage.cache import ContainerCache

        service = DedupBackupService(config=tiny_config, migration=NaiveMigration())
        first = service.ingest(refs("a", range(16)))
        service.ingest(refs("a", range(8, 24)))

        cache = ContainerCache(service.store, capacity=None)
        warmed = list(service.store.ids())
        for cid in warmed:
            cache.get(cid)

        service.delete_backup(first.backup_id)
        report = service.run_gc()
        assert report.reclaimed_containers > 0

        live_ids = set(service.store.ids())
        reclaimed = [cid for cid in warmed if cid not in live_ids]
        assert reclaimed  # the sweep actually dropped a warmed container
        assert all(cid not in cache for cid in reclaimed)

        restored = {
            entry.fp for cid in live_ids for entry in cache.get(cid)
        }
        for backup_id in service.live_backup_ids():
            recipe_fps = {entry.fp for entry in service.recipes.get(backup_id).entries}
            assert recipe_fps <= restored


class TestDeleteOldest:
    def test_deletes_lowest_ids(self, tiny_config):
        service = DedupBackupService(config=tiny_config)
        ids = [service.ingest(refs("a", [i])).backup_id for i in range(5)]
        victims = service.delete_oldest(2)
        assert victims == ids[:2]
        assert service.live_backup_ids() == ids[2:]

    def test_delete_more_than_live_is_bounded(self, tiny_config):
        service = DedupBackupService(config=tiny_config)
        service.ingest(refs("a", [1]))
        victims = service.delete_oldest(5)
        assert len(victims) == 1


class TestRetentionPolicy:
    def test_round_due_at_window(self):
        policy = RetentionPolicy(RetentionConfig(retained=10, turnover=3))
        assert not policy.round_due(9)
        assert policy.round_due(10)

    def test_victims_are_oldest(self):
        policy = RetentionPolicy(RetentionConfig(retained=10, turnover=3))
        assert policy.victims(list(range(100, 110))) == [100, 101, 102]


class TestApproachFactory:
    def test_all_approaches_constructible(self, scaled_config):
        for approach in APPROACHES:
            service = make_service(approach, scaled_config)
            assert service.name == approach

    def test_unknown_approach(self):
        with pytest.raises(ValueError):
            make_service("zfs-dedup")

    def test_naive_uses_null_rewriting_and_naive_migration(self, scaled_config):
        service = make_service("naive", scaled_config)
        assert isinstance(service.pipeline.rewriting, NullRewriting)
        assert isinstance(service.gc.migration, NaiveMigration)

    @pytest.mark.parametrize(
        "name,policy_type",
        [("capping", CappingRewriting), ("har", HARRewriting), ("smr", SMRRewriting)],
    )
    def test_rewriting_approaches(self, scaled_config, name, policy_type):
        service = make_service(name, scaled_config)
        assert isinstance(service.pipeline.rewriting, policy_type)
        assert isinstance(service.gc.migration, NaiveMigration)

    def test_gccdf_uses_gccdf_migration_without_rewriting(self, scaled_config):
        service = make_service("gccdf", scaled_config)
        assert isinstance(service.gc.migration, GCCDFMigration)
        assert isinstance(service.pipeline.rewriting, NullRewriting)

    def test_nondedup_disables_dedup(self, scaled_config):
        service = make_service("nondedup", scaled_config)
        assert service.pipeline.dedup_enabled is False

    def test_mfdedup_is_its_own_engine(self, scaled_config):
        assert isinstance(make_service("mfdedup", scaled_config), MFDedupService)

    def test_policy_kwargs_forwarded(self, scaled_config):
        service = make_service("capping", scaled_config, cap=7)
        assert service.pipeline.rewriting.cap == 7
