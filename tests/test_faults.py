"""Fault injection and crash recovery (`repro.faults`).

The heart of this module is the crash matrix: for every approach and every
crash point its data path can reach, run the full rotation protocol with
that point armed, let the injected :class:`SimulatedCrash` fire, recover,
and require the verifier to find **zero** errors — then keep operating the
survived system (restore everything, run another GC round) and verify
again.  The unit tests around it pin the :class:`FaultPlan` arming rules
and the :class:`IntentJournal` state machine.
"""

from __future__ import annotations

import pytest

from repro.backup.approaches import make_service
from repro.backup.options import ServiceOptions
from repro.backup.driver import RotationDriver
from repro.backup.verify import verify_service
from repro.config import SystemConfig
from repro.errors import ConfigError, JournalError, SimulatedCrash
from repro.faults import (
    CONTAINER_POINTS,
    CRASH_POINTS,
    FaultPlan,
    IntentJournal,
    points_for,
    recover_service,
)
from repro.workloads.datasets import dataset

# The "web" dataset reaches every crash point (it is the only preset whose
# consecutive backups share chunks, which MFDedup's ingest-time migration —
# and thus ``mfdedup.migrate`` — requires).
DATASET = "web"
MATRIX_APPROACHES = ("naive", "gccdf", "mfdedup")


def run_protocol(approach: str, faults: FaultPlan | None = None):
    """A small-but-complete rotation over ``web``; returns the service."""
    config = SystemConfig.scaled(retained=10, turnover=3)
    service = make_service(approach, config, ServiceOptions(faults=faults))
    driver = RotationDriver(service, config.retention, dataset_name=DATASET)
    driver.run(dataset(DATASET, scale=0.1, num_backups=16))
    return service


def live_journal(service) -> IntentJournal:
    return service.volumes.journal if hasattr(service, "volumes") else service.store.journal


class TestFaultPlan:
    def test_unknown_point_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan({"no.such.point": 1})

    def test_occurrence_is_one_based(self):
        with pytest.raises(ConfigError):
            FaultPlan({"gc.mark": 0})

    def test_fires_at_exact_occurrence_and_only_once(self):
        plan = FaultPlan.single("gc.mark", occurrence=2)
        plan.reached("gc.mark")  # occurrence 1: armed at 2, no fire
        with pytest.raises(SimulatedCrash) as exc:
            plan.reached("gc.mark", round_index=7)
        assert exc.value.point == "gc.mark"
        assert exc.value.occurrence == 2
        assert exc.value.context["round_index"] == 7
        assert plan.fired is not None and plan.fired.point == "gc.mark"
        # After firing the plan only counts — recovery must not re-crash.
        plan.reached("gc.mark")
        assert plan.hits["gc.mark"] == 3

    def test_unarmed_points_are_counted_not_fired(self):
        plan = FaultPlan.single("sweep.delete")
        plan.reached("gc.mark")
        plan.reached("gc.mark")
        assert plan.hits == {"gc.mark": 2}
        assert plan.fired is None

    def test_seeded_is_deterministic_and_in_range(self):
        for seed in range(20):
            first, second = FaultPlan.seeded(seed), FaultPlan.seeded(seed)
            assert first.arms == second.arms
            ((point, occurrence),) = first.arms.items()
            assert point in CRASH_POINTS
            assert 1 <= occurrence <= 4

    def test_points_for_covers_every_point(self):
        reachable = set()
        for approach in ("naive", "capping", "gccdf", "mfdedup"):
            assert set(points_for(approach)) <= set(CRASH_POINTS)
            reachable |= set(points_for(approach))
            reachable |= set(points_for(approach, gc_mode="incremental"))
            reachable |= set(points_for(approach, dedup_mode="hybrid"))
        assert reachable == set(CRASH_POINTS)
        assert points_for("naive") == CONTAINER_POINTS
        # The boundary point exists only on the incremental GC's data path.
        assert points_for("naive", gc_mode="incremental") == CONTAINER_POINTS + (
            "gc.increment",
        )
        assert "gc.increment" not in points_for("mfdedup")
        assert "gc.increment" in points_for("mfdedup", gc_mode="incremental")

    def test_points_for_hybrid_rededup_reachability(self):
        # Only the approaches whose pipeline takes the hybrid path expose
        # the coalesce point; rewriting policies, MFDedup, and nondedup
        # fall back to inline ingest.
        for approach in ("naive", "gccdf"):
            assert "gc.rededup" in points_for(approach, dedup_mode="hybrid")
            assert "gc.rededup" in points_for(
                approach, gc_mode="incremental", dedup_mode="hybrid"
            )
            assert "gc.rededup" not in points_for(approach)
        for approach in ("capping", "har", "smr", "mfdedup", "nondedup"):
            assert "gc.rededup" not in points_for(approach, dedup_mode="hybrid")


class TestIntentJournal:
    def test_lifecycle_and_truncation(self):
        journal = IntentJournal()
        record = journal.begin("container.write", container_id=3)
        assert len(journal) == 1
        assert journal.open_records("container.write") == [record]
        journal.commit(record)
        assert journal.committed_records() == [record]
        journal.close(record)
        assert len(journal) == 0
        assert (journal.begun, journal.closed, journal.aborted) == (1, 1, 0)

    def test_abort_truncates_open_intent(self):
        journal = IntentJournal()
        record = journal.begin("copyforward", moves=[])
        journal.abort(record)
        assert len(journal) == 0
        assert journal.aborted == 1

    def test_invalid_transitions_raise(self):
        journal = IntentJournal()
        record = journal.begin("reclaim")
        with pytest.raises(JournalError):
            journal.close(record)  # close before commit
        journal.commit(record)
        with pytest.raises(JournalError):
            journal.commit(record)  # double commit
        with pytest.raises(JournalError):
            journal.abort(record)  # abort a committed intent
        journal.close(record)
        with pytest.raises(JournalError):
            journal.close(record)  # close a truncated record

    def test_payload_mutable_until_commit(self):
        journal = IntentJournal()
        record = journal.begin("copyforward", destination=9, moves=[])
        record.payload["moves"].append({"fp": b"x", "source": 1, "size": 512})
        assert journal.open_records("copyforward")[0].payload["moves"]

    def test_records_kept_in_begin_order(self):
        journal = IntentJournal()
        first = journal.begin("sweep", round_index=0)
        second = journal.begin("reclaim", container_id=5)
        assert journal.records() == [first, second]
        assert journal.records(kind="reclaim") == [second]


class TestCrashRecoveryMatrix:
    """Crash at every reachable point, recover, verify — then keep going."""

    @pytest.mark.parametrize(
        "approach,point",
        [
            (approach, point)
            for approach in MATRIX_APPROACHES
            for point in points_for(approach)
        ],
    )
    @pytest.mark.parametrize("occurrence", [1, 2])
    def test_crash_recover_verify(self, approach, point, occurrence):
        plan = FaultPlan.single(point, occurrence=occurrence)
        config = SystemConfig.scaled(retained=10, turnover=3)
        service = make_service(approach, config, ServiceOptions(faults=plan))
        driver = RotationDriver(service, config.retention, dataset_name=DATASET)
        with pytest.raises(SimulatedCrash):
            driver.run(dataset(DATASET, scale=0.1, num_backups=16))

        report = recover_service(service)
        verification = verify_service(service)
        assert verification.errors == [], verification.errors[:3]
        assert report.rolled_back + report.replayed >= 0  # report is well formed

        # The survived system keeps working: every live backup restores,
        # another GC round runs, and the verifier stays clean.
        for backup_id in service.live_backup_ids():
            service.restore(backup_id)
        service.run_gc()
        assert verify_service(service).errors == []
        assert len(live_journal(service)) == 0

    def test_rewriting_approach_recovers_too(self):
        plan = FaultPlan.single("sweep.repoint")
        config = SystemConfig.scaled(retained=10, turnover=3)
        service = make_service("capping", config, ServiceOptions(faults=plan))
        driver = RotationDriver(service, config.retention, dataset_name=DATASET)
        with pytest.raises(SimulatedCrash):
            driver.run(dataset(DATASET, scale=0.1, num_backups=16))
        recover_service(service)
        assert verify_service(service).errors == []

    def test_service_recover_method_matches_function(self):
        plan = FaultPlan.single("sweep.delete")
        config = SystemConfig.scaled(retained=10, turnover=3)
        service = make_service("gccdf", config, ServiceOptions(faults=plan))
        driver = RotationDriver(service, config.retention, dataset_name=DATASET)
        with pytest.raises(SimulatedCrash):
            driver.run(dataset(DATASET, scale=0.1, num_backups=16))
        report = service.recover()
        assert report.replayed >= 1  # the deletion rolls forward
        assert verify_service(service).errors == []


class TestUnfaultedRuns:
    def test_journal_empty_after_clean_run(self):
        service = run_protocol("gccdf")
        journal = live_journal(service)
        assert len(journal) == 0
        assert journal.begun == journal.closed + journal.aborted

    def test_recover_clean_service_is_noop(self):
        service = run_protocol("naive")
        report = recover_service(service)
        assert report.clean
        assert report.actions == []
        assert verify_service(service).errors == []
