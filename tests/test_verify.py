"""Tests for the whole-system consistency verifier."""

import pytest

from repro.backup.system import DedupBackupService
from repro.backup.verify import assert_consistent, verify_system
from repro.core.gccdf import GCCDFMigration
from repro.errors import IntegrityError
from repro.index.fingerprint_index import Placement

from tests.conftest import refs


@pytest.fixture
def service(tiny_config) -> DedupBackupService:
    return DedupBackupService(config=tiny_config)


class TestConsistentStates:
    def test_empty_system(self, service):
        report = verify_system(service)
        assert report.consistent
        assert report.live_recipes == 0

    def test_after_ingest(self, service):
        service.ingest(refs("v", range(32)))
        report = verify_system(service)
        assert report.consistent
        assert report.recipe_entries == 32
        assert report.index_entries == 32

    def test_after_delete_before_gc_warns_not_errors(self, service):
        first = service.ingest(refs("v", range(16)))
        service.ingest(refs("v", range(8, 24)))
        service.delete_backup(first.backup_id)
        report = verify_system(service)
        assert report.consistent  # garbage awaiting GC is not corruption

    def test_after_gc(self, service):
        first = service.ingest(refs("v", range(16)))
        service.ingest(refs("v", range(0, 16, 2)))
        service.delete_backup(first.backup_id)
        service.run_gc()
        assert verify_system(service).consistent

    def test_after_gccdf_gc(self, tiny_config):
        service = DedupBackupService(config=tiny_config, migration=GCCDFMigration())
        first = service.ingest(refs("v", range(32)))
        service.ingest(refs("v", range(0, 32, 2)))
        service.delete_backup(first.backup_id)
        service.run_gc()
        report = assert_consistent(service)
        assert report.consistent

    def test_summary_mentions_status(self, service):
        service.ingest(refs("v", range(4)))
        assert "CONSISTENT" in verify_system(service).summary()


class TestCorruptionDetection:
    def test_missing_index_entry(self, service):
        result = service.ingest(refs("v", range(8)))
        key = service.recipes.get(result.backup_id).entries[0].fp
        service.index.discard(key)
        report = verify_system(service)
        assert not report.consistent
        assert any("missing from the index" in e for e in report.errors)

    def test_dangling_placement(self, service):
        result = service.ingest(refs("v", range(8)))
        key = service.recipes.get(result.backup_id).entries[0].fp
        service.index.relocate(key, container_id=999)
        report = verify_system(service)
        assert not report.consistent
        assert any("dead container" in e for e in report.errors)

    def test_wrong_container_placement(self, service):
        service.ingest(refs("v", range(8)))
        second = service.ingest(refs("w", range(8)))
        # Point a chunk of backup 1 at backup 0's container (which exists
        # but does not hold the key).
        key = service.recipes.get(second.backup_id).entries[0].fp
        wrong = next(service.store.ids())
        service.index.relocate(key, container_id=wrong)
        report = verify_system(service)
        assert not report.consistent

    def test_size_mismatch(self, service):
        result = service.ingest(refs("v", range(8)))
        key = service.recipes.get(result.backup_id).entries[0].fp
        placement = service.index.get(key)
        service.index._entries[key] = Placement(placement.container_id, placement.size + 1)
        report = verify_system(service)
        assert any("size" in e for e in report.errors)

    def test_assert_consistent_raises(self, service):
        result = service.ingest(refs("v", range(8)))
        service.index.discard(service.recipes.get(result.backup_id).entries[0].fp)
        with pytest.raises(IntegrityError):
            assert_consistent(service)

    def test_container_used_bytes_mismatch(self, service):
        service.ingest(refs("v", range(8)))
        container = next(iter(service.store.containers()))
        container.used_bytes += 7  # simulate corruption
        report = verify_system(service)
        assert any("used_bytes" in e for e in report.errors)
