"""Property-based tests for the Analyzer's clustering and the packing."""

from hypothesis import given, settings, strategies as st

from repro.config import GCCDFConfig
from repro.core.analyzer import Analyzer, ReferenceChecker
from repro.core.clusters import Cluster
from repro.core.packing import (
    greedy_pack,
    matching_suffix_length,
    ownership_similarity,
)
from repro.dedup.keys import storage_key
from repro.hashing.fingerprints import synthetic_fingerprint
from repro.index.recipe import Recipe, RecipeStore
from repro.model import ChunkRef


def key_ref(i: int) -> ChunkRef:
    return ChunkRef(fp=storage_key(synthetic_fingerprint("pc", i)), size=64)


# A world: n backups, each referencing a random subset of m chunks.
worlds = st.integers(min_value=1, max_value=5).flatmap(
    lambda n: st.integers(min_value=1, max_value=30).flatmap(
        lambda m: st.tuples(
            st.just(n),
            st.just(m),
            st.lists(
                st.sets(st.integers(min_value=0, max_value=m - 1)),
                min_size=n,
                max_size=n,
            ),
        )
    )
)


def build(world):
    n, m, memberships = world
    recipes = RecipeStore()
    for backup_id in range(n):
        assert recipes.new_backup_id() == backup_id
        recipes.add(
            Recipe(
                backup_id=backup_id,
                entries=tuple(key_ref(i) for i in sorted(memberships[backup_id])),
            )
        )
    config = GCCDFConfig(exact_reference_check=True, split_denial_threshold=0)
    analyzer = Analyzer(ReferenceChecker(recipes, config), config)
    chunks = [key_ref(i) for i in range(m)]
    clusters = analyzer.cluster(chunks, tuple(range(n)))
    return n, m, memberships, chunks, clusters


@given(worlds)
@settings(max_examples=80, deadline=None)
def test_clusters_partition_the_chunks(world):
    _, m, _, chunks, clusters = build(world)
    flattened = [c.fp for cluster in clusters for c in cluster.chunks]
    assert sorted(flattened) == sorted(c.fp for c in chunks)
    assert len(flattened) == len(set(flattened)) == m


@given(worlds)
@settings(max_examples=80, deadline=None)
def test_cluster_ownership_is_exact(world):
    """Every cluster's ownership equals the true referencing-backup set of
    each of its chunks (no denial, exact checking)."""
    n, _, memberships, _, clusters = build(world)
    true_owner = {}
    for backup_id in range(n):
        for i in memberships[backup_id]:
            true_owner.setdefault(i, set()).add(backup_id)
    fp_to_id = {key_ref(i).fp: i for i in range(30)}
    for cluster in clusters:
        for chunk in cluster.chunks:
            chunk_id = fp_to_id[chunk.fp]
            assert set(cluster.ownership) == true_owner.get(chunk_id, set())


@given(worlds)
@settings(max_examples=50, deadline=None)
def test_distinct_clusters_have_distinct_ownership(world):
    _, _, _, _, clusters = build(world)
    ownerships = [c.ownership for c in clusters]
    assert len(ownerships) == len(set(ownerships))


ownerships_strategy = st.lists(
    st.sets(st.integers(min_value=0, max_value=8), min_size=0, max_size=6).map(
        lambda s: tuple(sorted(s))
    ),
    min_size=0,
    max_size=12,
)


@given(ownerships_strategy)
@settings(max_examples=80)
def test_greedy_pack_is_permutation(ownerships):
    clusters = [Cluster(ownership=o, chunks=[key_ref(i)]) for i, o in enumerate(ownerships)]
    ordered = greedy_pack(clusters, num_backups=9)
    assert sorted(id(c) for c in ordered) == sorted(id(c) for c in clusters)


@given(ownerships_strategy)
@settings(max_examples=50)
def test_greedy_pack_starts_with_max_ownership(ownerships):
    if not ownerships:
        return
    clusters = [Cluster(ownership=o, chunks=[key_ref(i)]) for i, o in enumerate(ownerships)]
    ordered = greedy_pack(clusters, num_backups=9)
    assert len(ordered[0].ownership) == max(len(o) for o in ownerships)


owner_tuples = st.sets(st.integers(min_value=0, max_value=10), max_size=8).map(
    lambda s: tuple(sorted(s))
)


@given(owner_tuples, owner_tuples)
@settings(max_examples=100)
def test_similarity_symmetric_and_bounded(a, b):
    assert ownership_similarity(a, b, 11) == ownership_similarity(b, a, 11)
    assert 0.0 <= ownership_similarity(a, b, 11) <= 1.0


@given(owner_tuples)
@settings(max_examples=50)
def test_suffix_with_self_is_full_length(a):
    assert matching_suffix_length(a, a) == len(a)


@given(owner_tuples, owner_tuples)
@settings(max_examples=100)
def test_suffix_symmetric_and_bounded(a, b):
    length = matching_suffix_length(a, b)
    assert length == matching_suffix_length(b, a)
    assert 0 <= length <= min(len(a), len(b))
    if length:
        assert a[-length:] == b[-length:]
