"""Focused coverage for small behaviours not exercised elsewhere."""

import pytest

from repro.analysis.layout import render_layout
from repro.backup.system import DedupBackupService
from repro.hashing.fingerprints import synthetic_fingerprint
from repro.model import ChunkRef
from repro.simio.disk import DiskModel
from repro.storage.container import Container
from repro.storage.store import ContainerStore

from tests.conftest import refs


class TestContainerExtras:
    def test_has_payloads(self):
        container = Container(0, 4096)
        container.append(ChunkRef(synthetic_fingerprint("x", 1), 100))
        assert not container.has_payloads()
        container.append(ChunkRef(synthetic_fingerprint("x", 2), 100), payload=b"abc")
        assert container.has_payloads()

    def test_repr_states(self):
        container = Container(3, 4096)
        assert "open" in repr(container)
        container.seal()
        assert "sealed" in repr(container)

    def test_seal_idempotent(self):
        container = Container(0, 4096)
        container.seal()
        container.seal()
        assert container.sealed


class TestStoreIteration:
    def test_ids_and_containers_sorted(self):
        store = ContainerStore(capacity=1024, disk=DiskModel())
        allocated = [store.allocate() for _ in range(3)]
        for container in reversed(allocated):
            container.append(ChunkRef(synthetic_fingerprint("s", container.container_id), 10))
            store.commit(container)
        assert list(store.ids()) == [0, 1, 2]
        assert [c.container_id for c in store.containers()] == [0, 1, 2]


class TestLayoutGlyphOverflow:
    def test_many_ownership_groups_fall_back_to_hash(self, tiny_config):
        """More distinct owner-sets than glyphs → later groups render '#'."""
        service = DedupBackupService(config=tiny_config)
        # 70 backups each with a private chunk → 70 distinct ownerships.
        for i in range(70):
            service.ingest(refs("g", [i]))
        text = render_layout(service)
        assert "#" in text

    def test_legend_lists_assigned_groups(self, tiny_config):
        service = DedupBackupService(config=tiny_config)
        service.ingest(refs("g", range(4)))
        service.ingest(refs("g", range(2, 6)))
        text = render_layout(service)
        assert text.count("= backups") >= 2


class TestRecipeStoreOrdering:
    def test_deleted_recipes_ascend(self, tiny_config):
        service = DedupBackupService(config=tiny_config)
        ids = [service.ingest(refs("r", [i])).backup_id for i in range(4)]
        service.delete_backup(ids[2])
        service.delete_backup(ids[0])
        deleted = [r.backup_id for r in service.recipes.deleted_recipes()]
        assert deleted == [ids[0], ids[2]]

    def test_contains_checks_liveness(self, tiny_config):
        service = DedupBackupService(config=tiny_config)
        a = service.ingest(refs("r", [1])).backup_id
        assert a in service.recipes
        service.delete_backup(a)
        assert a not in service.recipes


class TestIngestResultFields:
    def test_num_chunks_counts_recipe_entries(self, tiny_config):
        service = DedupBackupService(config=tiny_config)
        result = service.ingest(refs("r", [1, 1, 2]))
        assert result.num_chunks == 3  # duplicates kept in the recipe

    def test_history_records_every_ingest(self, tiny_config):
        service = DedupBackupService(config=tiny_config)
        service.ingest(refs("r", [1]))
        service.ingest(refs("r", [2]))
        assert len(service.ingest_history) == 2


class TestDiskModelReturnValues:
    def test_costs_returned_match_stats(self):
        disk = DiskModel()
        cost = disk.read(1000) + disk.write(2000)
        assert cost == pytest.approx(disk.stats.total_seconds)
