"""Unit tests for deterministic RNG utilities."""

from repro.util.rng import DeterministicRng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_label_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_parent_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(42, "a", "b") != derive_seed(42, "b", "a")

    def test_fits_in_64_bits(self):
        assert 0 <= derive_seed(42, "x") < 1 << 64


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(7)
        b = DeterministicRng(7)
        assert [a.randint(0, 100) for _ in range(20)] == [
            b.randint(0, 100) for _ in range(20)
        ]

    def test_fork_is_independent_of_parent_consumption(self):
        a = DeterministicRng(7)
        a.randint(0, 100)  # consume from parent
        fork_after = a.fork("child")
        fork_fresh = DeterministicRng(7).fork("child")
        assert fork_after.randint(0, 1000) == fork_fresh.randint(0, 1000)

    def test_forks_with_different_labels_differ(self):
        rng = DeterministicRng(7)
        assert rng.fork("x").token() != rng.fork("y").token()

    def test_chance_extremes(self):
        rng = DeterministicRng(1)
        assert not any(rng.chance(0.0) for _ in range(50))
        assert all(rng.chance(1.0) for _ in range(50))

    def test_sample_returns_distinct(self):
        rng = DeterministicRng(3)
        sample = rng.sample(list(range(100)), 10)
        assert len(set(sample)) == 10

    def test_shuffle_is_permutation(self):
        rng = DeterministicRng(5)
        items = list(range(30))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_weighted_choice_respects_zero_weights(self):
        rng = DeterministicRng(9)
        picks = {rng.weighted_choice(["a", "b"], [1.0, 0.0]) for _ in range(30)}
        assert picks == {"a"}

    def test_expovariate_positive(self):
        rng = DeterministicRng(11)
        assert all(rng.expovariate(1.0) >= 0 for _ in range(100))
