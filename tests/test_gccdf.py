"""Integration tests for GCCDF: Preprocessor, Planner, and the full
migration strategy plugged into mark–sweep GC."""

import pytest

from repro.backup.system import DedupBackupService
from repro.config import GCCDFConfig, SystemConfig
from repro.core.gccdf import GCCDFMigration
from repro.core.planner import Planner
from repro.core.preprocessor import Preprocessor
from repro.core.clusters import Cluster
from repro.dedup.keys import storage_key
from repro.gc.mark import MarkStage
from repro.gc.migration import SweepContext
from repro.hashing.fingerprints import synthetic_fingerprint
from repro.model import ChunkRef

from tests.conftest import refs


def gccdf_service(tiny_config, **gccdf_overrides) -> DedupBackupService:
    config = tiny_config.with_gccdf(**gccdf_overrides) if gccdf_overrides else tiny_config
    return DedupBackupService(config=config, migration=GCCDFMigration(), name="gccdf")


def sweep_context(service) -> SweepContext:
    mark = MarkStage(service.config, service.index, service.recipes, service.disk).run()
    return SweepContext(
        config=service.config,
        store=service.store,
        index=service.index,
        recipes=service.recipes,
        disk=service.disk,
        mark=mark,
    )


class TestPreprocessor:
    def test_segments_respect_configured_size(self, tiny_config):
        config = tiny_config.with_gccdf(segment_size=2)
        service = DedupBackupService(config=config, migration=GCCDFMigration())
        first = service.ingest(refs("p", range(64)))  # 8 containers
        service.ingest(refs("p", range(0, 64, 2)))
        service.delete_backup(first.backup_id)
        segments = list(Preprocessor(sweep_context(service)).segments())
        assert all(len(s.container_ids) <= 2 for s in segments)
        assert len(segments) >= 2

    def test_fully_valid_containers_excluded(self, tiny_config):
        service = gccdf_service(tiny_config)
        first = service.ingest(refs("p", range(16)))
        service.ingest(refs("p", range(16)))  # everything still referenced
        service.delete_backup(first.backup_id)
        segments = list(Preprocessor(sweep_context(service)).segments())
        assert segments == []  # involved but nothing reclaimable

    def test_segment_carries_valid_chunks_and_owners(self, tiny_config):
        service = gccdf_service(tiny_config)
        # Second backup keeps every other chunk, so each old container holds
        # a mix of valid and invalid chunks.
        first = service.ingest(refs("p", range(16)))
        second = service.ingest(refs("p", range(0, 16, 2)))
        service.delete_backup(first.backup_id)
        (segment,) = Preprocessor(sweep_context(service)).segments()
        valid_keys = {c.fp for c in segment.valid_chunks}
        live_keys = {e.fp for e in service.recipes.get(second.backup_id).entries}
        assert valid_keys == live_keys
        assert segment.involved_backups == (second.backup_id,)
        assert segment.invalid_bytes == 8 * 512

    def test_segment_reads_charge_sweep_io(self, tiny_config):
        service = gccdf_service(tiny_config)
        first = service.ingest(refs("p", range(16)))
        service.ingest(refs("p", range(0, 16, 2)))
        service.delete_backup(first.backup_id)
        ctx = sweep_context(service)
        before = service.disk.stats.read_bytes
        list(Preprocessor(ctx).segments())
        assert service.disk.stats.read_bytes > before


class TestPlanner:
    def _cluster(self, owners, ids):
        return Cluster(
            ownership=tuple(owners),
            chunks=[
                ChunkRef(fp=storage_key(synthetic_fingerprint("pl", i)), size=10)
                for i in ids
            ],
        )

    def test_flattens_in_cluster_order(self):
        planner = Planner(GCCDFConfig(packing="tree"))
        clusters = [self._cluster([1, 2], [1, 2]), self._cluster([1], [3])]
        order = planner.plan(clusters, (1, 2))
        assert [c.fp for c in order.sequence] == [
            storage_key(synthetic_fingerprint("pl", i)) for i in (1, 2, 3)
        ]
        assert order.num_clusters == 2
        assert order.num_chunks == 3

    def test_greedy_reorders(self):
        planner = Planner(GCCDFConfig(packing="greedy"))
        clusters = [self._cluster([1], [3]), self._cluster([1, 2], [1, 2])]
        order = planner.plan(clusters, (1, 2))
        # Largest ownership first under greedy packing.
        assert order.sequence[0].fp == storage_key(synthetic_fingerprint("pl", 1))


class TestGCCDFMigration:
    def test_space_reclaimed_matches_naive(self, tiny_config):
        """GCCDF must reclaim exactly the same garbage as classic GC."""
        from repro.gc.migration import NaiveMigration

        outcomes = {}
        for name, migration in (("naive", NaiveMigration()), ("gccdf", GCCDFMigration())):
            service = DedupBackupService(config=tiny_config, migration=migration)
            first = service.ingest(refs("g", range(32)))
            service.ingest(refs("g", range(16, 48)))
            service.delete_backup(first.backup_id)
            service.run_gc()
            outcomes[name] = service.store.stored_bytes
        assert outcomes["naive"] == outcomes["gccdf"]

    def test_survivors_restorable_after_gccdf_gc(self, tiny_config):
        service = gccdf_service(tiny_config)
        first = service.ingest(refs("g", range(32)))
        second = service.ingest(refs("g", range(16, 48)))
        third = service.ingest(refs("g", list(range(24, 48)) + list(range(100, 108))))
        service.delete_backup(first.backup_id)
        report = service.run_gc()
        assert report.reclaimed_containers > 0
        for backup_id in (second.backup_id, third.backup_id):
            restore = service.restore(backup_id)
            assert restore.logical_bytes == 32 * 512

    def test_index_relocations_point_at_live_containers(self, tiny_config):
        service = gccdf_service(tiny_config)
        first = service.ingest(refs("g", range(32)))
        service.ingest(refs("g", range(16, 48)))
        service.delete_backup(first.backup_id)
        service.run_gc()
        for key, placement in service.index.items():
            assert placement.container_id in service.store

    def test_analyze_time_recorded(self, tiny_config):
        service = gccdf_service(tiny_config)
        first = service.ingest(refs("g", range(32)))
        service.ingest(refs("g", range(0, 32, 2)))  # interleaved survivors
        service.delete_backup(first.backup_id)
        report = service.run_gc()
        # Simulated analyze time (ops × cost) and the informational CPU
        # wall time are both recorded.
        assert report.analyze_seconds > 0.0
        assert report.analyze_cpu_seconds > 0.0

    def test_clustering_improves_ownership_locality(self, tiny_config):
        """After GCCDF GC, a backup sharing only part of an old backup's
        chunks restores with lower read amplification than under naive GC."""
        from repro.gc.migration import NaiveMigration

        amps = {}
        for name, migration in (("naive", NaiveMigration()), ("gccdf", GCCDFMigration())):
            service = DedupBackupService(config=tiny_config, migration=migration)
            base = service.ingest(refs("g", range(64)))
            # Interleaved ownership: i%4==0 shared, ==1 only a, ==2 only b,
            # ==3 garbage once the base is deleted.
            survivor_a = service.ingest(refs("g", [i for i in range(64) if i % 4 in (0, 1)]))
            survivor_b = service.ingest(refs("g", [i for i in range(64) if i % 4 in (0, 2)]))
            service.delete_backup(base.backup_id)
            service.run_gc()
            amps[name] = (
                service.restore(survivor_a.backup_id).read_amplification
                + service.restore(survivor_b.backup_id).read_amplification
            )
        assert amps["gccdf"] < amps["naive"]

    def test_random_packing_configurable(self, tiny_config):
        service = gccdf_service(tiny_config, packing="random")
        first = service.ingest(refs("g", range(32)))
        service.ingest(refs("g", range(16, 48)))
        service.delete_backup(first.backup_id)
        report = service.run_gc()  # must run without error
        assert report.reclaimed_containers > 0

    def test_cluster_counts_reported(self, tiny_config):
        migration = GCCDFMigration()
        service = DedupBackupService(config=tiny_config, migration=migration)
        first = service.ingest(refs("g", range(32)))
        service.ingest(refs("g", range(0, 32, 2)))  # interleaved survivors
        service.delete_backup(first.backup_id)
        service.run_gc()
        assert migration.last_cluster_counts
        assert all(count >= 1 for count in migration.last_cluster_counts)

    def test_gc_cache_payloads_preserved(self, tiny_config):
        """Byte-level chunks keep their payloads across a GCCDF migration."""
        from repro.chunking.base import split
        from repro.chunking.fastcdc import FastCDC
        from repro.util.rng import DeterministicRng

        service = gccdf_service(tiny_config)
        cdc = FastCDC(tiny_config.chunking)
        rng = DeterministicRng(11)
        data_a = bytes(rng.randint(0, 255) for _ in range(12_000))
        data_b = data_a[:6000] + bytes(rng.randint(0, 255) for _ in range(6000))
        first = service.ingest(split(cdc, data_a))
        second = service.ingest(split(cdc, data_b))
        service.delete_backup(first.backup_id)
        service.run_gc()
        _, restored = service.restore_bytes(second.backup_id)
        assert restored == data_b


class TestParallelSegments:
    """§5.5's extension: independent segment workflows parallelise."""

    def test_parallel_workers_shrink_analyze_time(self, tiny_config):
        config = tiny_config.with_gccdf(segment_size=1)  # many segments
        times = {}
        for workers in (1, 4):
            service = DedupBackupService(
                config=config, migration=GCCDFMigration(parallel_workers=workers)
            )
            first = service.ingest(refs("p", range(64)))
            service.ingest(refs("p", range(0, 64, 2)))
            service.delete_backup(first.backup_id)
            times[workers] = service.run_gc().analyze_seconds
        assert times[4] < times[1]

    def test_parallelism_capped_by_segment_count(self, tiny_config):
        """One segment → no speedup however many workers."""
        config = tiny_config.with_gccdf(segment_size=10_000)
        times = {}
        for workers in (1, 8):
            service = DedupBackupService(
                config=config, migration=GCCDFMigration(parallel_workers=workers)
            )
            first = service.ingest(refs("p", range(64)))
            service.ingest(refs("p", range(0, 64, 2)))
            service.delete_backup(first.backup_id)
            times[workers] = service.run_gc().analyze_seconds
        assert times[8] == pytest.approx(times[1])

    def test_parallelism_does_not_change_results(self, tiny_config):
        layouts = {}
        for workers in (1, 4):
            service = DedupBackupService(
                config=tiny_config, migration=GCCDFMigration(parallel_workers=workers)
            )
            first = service.ingest(refs("p", range(64)))
            keep = service.ingest(refs("p", range(0, 64, 2)))
            service.delete_backup(first.backup_id)
            service.run_gc()
            layouts[workers] = [
                tuple(e.fp for e in c.entries) for c in service.store.containers()
            ]
        assert layouts[1] == layouts[4]

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            GCCDFMigration(parallel_workers=0)
