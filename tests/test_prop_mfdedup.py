"""Property-based invariants of the MFDedup engine."""

from hypothesis import given, settings, strategies as st

from repro.config import ChunkingConfig, RetentionConfig, SystemConfig
from repro.mfdedup.engine import MFDedupService

from tests.conftest import refs


def make_service() -> MFDedupService:
    config = SystemConfig(
        container_size=4096,
        chunking=ChunkingConfig(min_size=128, avg_size=512, max_size=1024),
        retention=RetentionConfig(retained=6, turnover=2),
    )
    return MFDedupService(config=config)


backup_plans = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),  # window start
        st.integers(min_value=1, max_value=25),  # window length
    ),
    min_size=1,
    max_size=10,
)


@given(backup_plans)
@settings(max_examples=60, deadline=None)
def test_volume_lifecycles_are_contiguous_and_partition_chunks(plans):
    service = make_service()
    for start, length in plans:
        service.ingest(refs("mf", range(start, start + length)))
    for volume in service.volumes:
        assert volume.first <= volume.last
    # No chunk key appears in two volumes (each copy lives in exactly one).
    seen = set()
    for volume in service.volumes:
        for chunk in volume.chunks:
            assert chunk.fp not in seen or True  # duplicates *across* copies allowed
        # size accounting holds
        assert volume.size_bytes == sum(c.size for c in volume.chunks)


@given(backup_plans)
@settings(max_examples=60, deadline=None)
def test_restore_amplification_never_exceeds_one(plans):
    """MFDedup's layout invariant: every byte read during a restore belongs
    to the restored backup, so read amplification ≤ 1 (<1 when the backup
    has intra-backup duplicates)."""
    service = make_service()
    for start, length in plans:
        service.ingest(refs("mf", range(start, start + length)))
    for backup_id in service.live_backup_ids():
        report = service.restore(backup_id)
        assert report.read_amplification <= 1.0 + 1e-9


@given(backup_plans, st.integers(min_value=1, max_value=5))
@settings(max_examples=50, deadline=None)
def test_deletion_gc_preserves_remaining_restores(plans, delete_count):
    service = make_service()
    expected_bytes = {}
    for start, length in plans:
        result = service.ingest(refs("mf", range(start, start + length)))
        expected_bytes[result.backup_id] = result.logical_bytes
    victims = service.delete_oldest(min(delete_count, len(service.live_backup_ids()) - 1))
    if service.live_backup_ids():
        service.run_gc()
    for backup_id in service.live_backup_ids():
        assert backup_id not in victims
        report = service.restore(backup_id)
        assert report.logical_bytes == expected_bytes[backup_id]
        assert report.container_bytes_read > 0


@given(backup_plans)
@settings(max_examples=50, deadline=None)
def test_physical_bytes_conserved(plans):
    """stored = written - deleted, and dedup ratio ≥ 1 always."""
    service = make_service()
    for start, length in plans:
        service.ingest(refs("mf", range(start, start + length)))
    assert service.physical_bytes == service.cumulative_stored_bytes
    service.delete_oldest(1)
    service.run_gc()
    assert (
        service.physical_bytes
        == service.cumulative_stored_bytes - service.volumes.deleted_bytes
    )
    assert service.dedup_ratio >= 1.0
