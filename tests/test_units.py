"""Unit tests for repro.util.units."""

import pytest

from repro.errors import ConfigError
from repro.util.units import (
    GIB,
    KIB,
    MIB,
    TIB,
    format_bytes,
    format_duration,
    parse_size,
)


class TestFormatBytes:
    def test_zero(self):
        assert format_bytes(0) == "0 B"

    def test_small_integers_render_as_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kib_boundary(self):
        assert format_bytes(1024) == "1.0 KiB"

    def test_mib(self):
        assert format_bytes(4 * MIB) == "4.0 MiB"

    def test_gib_fractional(self):
        assert format_bytes(int(1.5 * GIB)) == "1.5 GiB"

    def test_tib(self):
        assert format_bytes(2 * TIB) == "2.0 TiB"

    def test_negative(self):
        assert format_bytes(-2048) == "-2.0 KiB"


class TestFormatDuration:
    def test_milliseconds(self):
        assert format_duration(0.25) == "250 ms"

    def test_seconds(self):
        assert format_duration(12.34) == "12.3 s"

    def test_minutes(self):
        assert format_duration(125) == "2 m 05 s"

    def test_hours(self):
        assert format_duration(2 * 3600 + 30 * 60) == "2 h 30 m"

    def test_negative(self):
        assert format_duration(-0.25) == "-250 ms"


class TestParseSize:
    def test_plain_int_passthrough(self):
        assert parse_size(4096) == 4096

    def test_bare_number_string(self):
        assert parse_size("100") == 100

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("4KiB", 4 * KIB),
            ("4 KB", 4 * KIB),
            ("4k", 4 * KIB),
            ("2MiB", 2 * MIB),
            ("2mb", 2 * MIB),
            ("1GiB", GIB),
            ("1.5m", int(1.5 * MIB)),
        ],
    )
    def test_units(self, text, expected):
        assert parse_size(text) == expected

    def test_empty_string_rejected(self):
        with pytest.raises(ConfigError):
            parse_size("")

    def test_unknown_unit_rejected(self):
        with pytest.raises(ConfigError):
            parse_size("4 parsecs")

    def test_missing_number_rejected(self):
        with pytest.raises(ConfigError):
            parse_size("MiB")
