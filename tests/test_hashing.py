"""Unit tests for fingerprints and Bloom filters."""

import pytest

from repro.errors import ConfigError
from repro.hashing.bloom import BloomFilter
from repro.hashing.fingerprints import (
    FINGERPRINT_SIZE,
    fingerprint,
    fingerprint_hex,
    short_fp,
    synthetic_fingerprint,
)


class TestFingerprints:
    def test_sha1_width(self):
        assert len(fingerprint(b"hello")) == FINGERPRINT_SIZE

    def test_deterministic(self):
        assert fingerprint(b"x") == fingerprint(b"x")

    def test_content_sensitivity(self):
        assert fingerprint(b"x") != fingerprint(b"y")

    def test_hex_roundtrip(self):
        fp = fingerprint(b"data")
        assert bytes.fromhex(fingerprint_hex(fp)) == fp

    def test_short_fp_is_prefix(self):
        fp = fingerprint(b"data")
        assert fingerprint_hex(fp).startswith(short_fp(fp))

    def test_synthetic_width(self):
        assert len(synthetic_fingerprint("ns", 1)) == FINGERPRINT_SIZE

    def test_synthetic_identity_equality(self):
        assert synthetic_fingerprint("ns", 5, 2) == synthetic_fingerprint("ns", 5, 2)

    @pytest.mark.parametrize(
        "a,b",
        [
            (("ns", 1, 0), ("ns", 2, 0)),  # identity differs
            (("ns", 1, 0), ("ns", 1, 1)),  # version differs
            (("ns", 1, 0), ("other", 1, 0)),  # namespace differs
        ],
    )
    def test_synthetic_distinguishes(self, a, b):
        assert synthetic_fingerprint(*a) != synthetic_fingerprint(*b)

    def test_synthetic_no_delimiter_collision(self):
        # ("a", 11) must not collide with ("a1", 1) etc.
        assert synthetic_fingerprint("a", 11, 0) != synthetic_fingerprint("a1", 1, 0)


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(capacity=1000, fp_rate=0.01)
        keys = [fingerprint(str(i).encode()) for i in range(1000)]
        bloom.update(keys)
        assert all(key in bloom for key in keys)

    def test_false_positive_rate_near_target(self):
        bloom = BloomFilter(capacity=2000, fp_rate=0.01)
        bloom.update(fingerprint(f"in-{i}".encode()) for i in range(2000))
        probes = 5000
        false_positives = sum(
            fingerprint(f"out-{i}".encode()) in bloom for i in range(probes)
        )
        assert false_positives / probes < 0.05  # generous bound on 1% target

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter(capacity=10)
        assert fingerprint(b"anything") not in bloom

    def test_salt_changes_collisions(self):
        a = BloomFilter(capacity=50, fp_rate=0.2, salt=b"a")
        b = BloomFilter(capacity=50, fp_rate=0.2, salt=b"b")
        keys = [fingerprint(str(i).encode()) for i in range(50)]
        a.update(keys)
        b.update(keys)
        outsiders = [fingerprint(f"o{i}".encode()) for i in range(2000)]
        hits_a = {k for k in outsiders if k in a}
        hits_b = {k for k in outsiders if k in b}
        assert hits_a != hits_b  # different collision patterns

    def test_long_salt_accepted(self):
        # Regression: BLAKE2b caps salts at 16 bytes; longer salts used to
        # raise ValueError out of the digest constructor.
        bloom = BloomFilter(capacity=10, salt=b"a-domain-separation-salt-over-16-bytes")
        bloom.add(b"k" * 20)
        assert b"k" * 20 in bloom

    def test_long_salts_sharing_prefix_do_not_alias(self):
        # Truncation would collapse salts with a common 16-byte prefix
        # into one probe sequence; pre-hashing must keep them distinct.
        prefix = b"0123456789abcdef"
        a = BloomFilter(capacity=50, fp_rate=0.2, salt=prefix + b"AAAA")
        b = BloomFilter(capacity=50, fp_rate=0.2, salt=prefix + b"BBBB")
        keys = [fingerprint(str(i).encode()) for i in range(50)]
        a.update(keys)
        b.update(keys)
        outsiders = [fingerprint(f"o{i}".encode()) for i in range(2000)]
        assert {k for k in outsiders if k in a} != {k for k in outsiders if k in b}

    def test_long_salt_equivalent_to_its_digest(self):
        # The documented fold: salts > 16 bytes behave exactly like their
        # 16-byte BLAKE2b digest (so the mapping is stable, not ad hoc).
        import hashlib

        long_salt = b"x" * 40
        folded = hashlib.blake2b(long_salt, digest_size=16).digest()
        a = BloomFilter(capacity=50, fp_rate=0.2, salt=long_salt)
        b = BloomFilter(capacity=50, fp_rate=0.2, salt=folded)
        keys = [fingerprint(str(i).encode()) for i in range(50)]
        a.update(keys)
        b.update(keys)
        assert a._bits == b._bits

    def test_short_salt_used_verbatim(self):
        # Salts of at most 16 bytes must keep their historical probe
        # sequences bit-identical (golden outputs depend on them), i.e.
        # not be routed through the pre-hash.
        import hashlib

        salt = b"exactly16bytes!!"
        assert len(salt) == 16
        digest_of_salt = hashlib.blake2b(salt, digest_size=16).digest()
        verbatim = BloomFilter(capacity=50, fp_rate=0.2, salt=salt)
        folded = BloomFilter(capacity=50, fp_rate=0.2, salt=digest_of_salt)
        keys = [fingerprint(str(i).encode()) for i in range(50)]
        verbatim.update(keys)
        folded.update(keys)
        assert verbatim._bits != folded._bits

    def test_len_counts_insertions(self):
        bloom = BloomFilter(capacity=10)
        bloom.add(b"k1" * 10)
        bloom.add(b"k2" * 10)
        assert len(bloom) == 2

    def test_fill_ratio_monotone(self):
        bloom = BloomFilter(capacity=100)
        before = bloom.fill_ratio()
        bloom.update(fingerprint(str(i).encode()) for i in range(100))
        assert bloom.fill_ratio() > before

    def test_size_bytes_positive(self):
        assert BloomFilter(capacity=100).size_bytes > 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigError):
            BloomFilter(capacity=0)

    def test_rejects_bad_fp_rate(self):
        with pytest.raises(ConfigError):
            BloomFilter(capacity=10, fp_rate=0.0)

    def test_expected_fp_rate_reasonable(self):
        bloom = BloomFilter(capacity=1000, fp_rate=0.01)
        bloom.update(fingerprint(str(i).encode()) for i in range(1000))
        assert 0.0 < bloom.expected_fp_rate() < 0.05
