"""Unit tests for fingerprints and Bloom filters."""

import pytest

from repro.errors import ConfigError
from repro.hashing.bloom import BloomFilter
from repro.hashing.fingerprints import (
    FINGERPRINT_SIZE,
    fingerprint,
    fingerprint_hex,
    short_fp,
    synthetic_fingerprint,
)


class TestFingerprints:
    def test_sha1_width(self):
        assert len(fingerprint(b"hello")) == FINGERPRINT_SIZE

    def test_deterministic(self):
        assert fingerprint(b"x") == fingerprint(b"x")

    def test_content_sensitivity(self):
        assert fingerprint(b"x") != fingerprint(b"y")

    def test_hex_roundtrip(self):
        fp = fingerprint(b"data")
        assert bytes.fromhex(fingerprint_hex(fp)) == fp

    def test_short_fp_is_prefix(self):
        fp = fingerprint(b"data")
        assert fingerprint_hex(fp).startswith(short_fp(fp))

    def test_synthetic_width(self):
        assert len(synthetic_fingerprint("ns", 1)) == FINGERPRINT_SIZE

    def test_synthetic_identity_equality(self):
        assert synthetic_fingerprint("ns", 5, 2) == synthetic_fingerprint("ns", 5, 2)

    @pytest.mark.parametrize(
        "a,b",
        [
            (("ns", 1, 0), ("ns", 2, 0)),  # identity differs
            (("ns", 1, 0), ("ns", 1, 1)),  # version differs
            (("ns", 1, 0), ("other", 1, 0)),  # namespace differs
        ],
    )
    def test_synthetic_distinguishes(self, a, b):
        assert synthetic_fingerprint(*a) != synthetic_fingerprint(*b)

    def test_synthetic_no_delimiter_collision(self):
        # ("a", 11) must not collide with ("a1", 1) etc.
        assert synthetic_fingerprint("a", 11, 0) != synthetic_fingerprint("a1", 1, 0)


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(capacity=1000, fp_rate=0.01)
        keys = [fingerprint(str(i).encode()) for i in range(1000)]
        bloom.update(keys)
        assert all(key in bloom for key in keys)

    def test_false_positive_rate_near_target(self):
        bloom = BloomFilter(capacity=2000, fp_rate=0.01)
        bloom.update(fingerprint(f"in-{i}".encode()) for i in range(2000))
        probes = 5000
        false_positives = sum(
            fingerprint(f"out-{i}".encode()) in bloom for i in range(probes)
        )
        assert false_positives / probes < 0.05  # generous bound on 1% target

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter(capacity=10)
        assert fingerprint(b"anything") not in bloom

    def test_salt_changes_collisions(self):
        a = BloomFilter(capacity=50, fp_rate=0.2, salt=b"a")
        b = BloomFilter(capacity=50, fp_rate=0.2, salt=b"b")
        keys = [fingerprint(str(i).encode()) for i in range(50)]
        a.update(keys)
        b.update(keys)
        outsiders = [fingerprint(f"o{i}".encode()) for i in range(2000)]
        hits_a = {k for k in outsiders if k in a}
        hits_b = {k for k in outsiders if k in b}
        assert hits_a != hits_b  # different collision patterns

    def test_len_counts_insertions(self):
        bloom = BloomFilter(capacity=10)
        bloom.add(b"k1" * 10)
        bloom.add(b"k2" * 10)
        assert len(bloom) == 2

    def test_fill_ratio_monotone(self):
        bloom = BloomFilter(capacity=100)
        before = bloom.fill_ratio()
        bloom.update(fingerprint(str(i).encode()) for i in range(100))
        assert bloom.fill_ratio() > before

    def test_size_bytes_positive(self):
        assert BloomFilter(capacity=100).size_bytes > 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigError):
            BloomFilter(capacity=0)

    def test_rejects_bad_fp_rate(self):
        with pytest.raises(ConfigError):
            BloomFilter(capacity=10, fp_rate=0.0)

    def test_expected_fp_rate_reasonable(self):
        bloom = BloomFilter(capacity=1000, fp_rate=0.01)
        bloom.update(fingerprint(str(i).encode()) for i in range(1000))
        assert 0.0 < bloom.expected_fp_rate() < 0.05
