"""Unit tests for the simulated disk model and I/O counters."""

import pytest

from repro.config import DiskConfig
from repro.simio.disk import DiskModel
from repro.simio.stats import IOStats


class TestDiskModel:
    def test_read_cost_is_seek_plus_transfer(self):
        disk = DiskModel(DiskConfig(bandwidth=1000.0, seek_time=0.5))
        assert disk.read(1000) == pytest.approx(0.5 + 1.0)

    def test_write_cost_symmetric(self):
        disk = DiskModel(DiskConfig(bandwidth=1000.0, seek_time=0.5))
        assert disk.write(500) == pytest.approx(0.5 + 0.5)

    def test_counters_accumulate(self):
        disk = DiskModel(DiskConfig(bandwidth=1e6, seek_time=0.0))
        disk.read(100)
        disk.read(200)
        disk.write(300)
        assert disk.stats.read_ops == 2
        assert disk.stats.read_bytes == 300
        assert disk.stats.write_ops == 1
        assert disk.stats.write_bytes == 300

    def test_zero_byte_op_costs_one_seek(self):
        disk = DiskModel(DiskConfig(bandwidth=1e6, seek_time=0.01))
        assert disk.read(0) == pytest.approx(0.01)

    def test_negative_size_rejected(self):
        disk = DiskModel()
        with pytest.raises(ValueError):
            disk.read(-1)
        with pytest.raises(ValueError):
            disk.write(-1)

    def test_snapshot_isolated_from_future_ops(self):
        disk = DiskModel()
        disk.read(100)
        snap = disk.stats.snapshot()
        disk.read(100)
        assert snap.read_ops == 1
        assert disk.stats.read_ops == 2

    def test_deprecated_shims_are_gone(self):
        # DiskModel.snapshot() and IOStats.since() were removed; the
        # supported surface is IOStats.snapshot()/diff() and, preferably,
        # DiskModel.phase().
        assert not hasattr(DiskModel(), "snapshot")
        assert not hasattr(IOStats(), "since")


class TestPhaseScope:
    def test_reentering_active_scope_raises(self):
        disk = DiskModel()
        scope = disk.phase("ingest")
        with scope:
            with pytest.raises(RuntimeError, match="already active"):
                scope.__enter__()

    def test_reusing_exhausted_scope_raises(self):
        disk = DiskModel()
        scope = disk.phase("ingest")
        with scope:
            pass
        with pytest.raises(RuntimeError, match="cannot be reused"):
            scope.__enter__()

    def test_exit_without_enter_raises(self):
        disk = DiskModel()
        scope = disk.phase("ingest")
        with pytest.raises(RuntimeError, match="without being entered"):
            scope.__exit__(None, None, None)


class TestIOStats:
    def test_diff_covers_all_fields(self):
        disk = DiskModel(DiskConfig(bandwidth=1000.0, seek_time=0.0))
        with disk.phase("test") as ph:
            disk.read(500)
            disk.write(250)
        delta = ph.delta
        assert delta.read_bytes == 500
        assert delta.write_bytes == 250
        assert delta.read_seconds == pytest.approx(0.5)
        assert delta.write_seconds == pytest.approx(0.25)
        assert delta.total_bytes == 750
        assert delta.total_seconds == pytest.approx(0.75)

    def test_merge_adds(self):
        a = IOStats(read_ops=1, read_bytes=10, read_seconds=0.1)
        b = IOStats(read_ops=2, read_bytes=20, write_ops=1, write_bytes=5)
        a.merge(b)
        assert a.read_ops == 3
        assert a.read_bytes == 30
        assert a.write_ops == 1
        assert a.write_bytes == 5

    def test_snapshot_is_independent_copy(self):
        stats = IOStats(read_ops=1)
        copy = stats.snapshot()
        stats.read_ops = 99
        assert copy.read_ops == 1
