"""Columnar/tuple hot-path equivalence (the PR-5 representation change).

The columnar engine (interned ids + ``array('q')`` recipe columns + batched
kernels) must be *observationally identical* to the legacy tuple-of-
``ChunkRef`` path: same fingerprints in order, same unique sets, same
logical sizes, and — end to end — the same GC mark results and index probe
statistics on arbitrary streams.  Property tests drive both representations
over random inputs; unit tests pin the interner and the Bloom
negative-lookup guard.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.backup.system import DedupBackupService
from repro.config import ChunkingConfig, RetentionConfig, SystemConfig
from repro.gc.mark import MarkStage
from repro.hashing.fingerprints import synthetic_fingerprint
from repro.index.columnar import ColumnarRecipe
from repro.index.fingerprint_index import (
    GUARD_INITIAL_CAPACITY,
    FingerprintIndex,
)
from repro.index.interning import FingerprintInterner
from repro.index.recipe import Recipe
from repro.model import ChunkRef

from tests.conftest import refs


# ---------------------------------------------------------------------------
# Recipe-level equivalence: ColumnarRecipe vs legacy Recipe over one stream
# ---------------------------------------------------------------------------

# (chunk id, size) pairs; repeated ids model the duplicate-heavy streams the
# columnar representation exists for.
stream_entries = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=1, max_value=4096),
    ),
    min_size=0,
    max_size=200,
)


def build_pair(entries: list[tuple[int, int]]) -> tuple[Recipe, ColumnarRecipe]:
    chunk_refs = tuple(
        ChunkRef(fp=synthetic_fingerprint("hotpath", i), size=size)
        for i, size in entries
    )
    legacy = Recipe(backup_id=1, entries=chunk_refs, source="prop")
    interner = FingerprintInterner()
    columnar = ColumnarRecipe(
        backup_id=1,
        interner=interner,
        chunk_ids=(interner.intern(ref.fp) for ref in chunk_refs),
        chunk_sizes=(ref.size for ref in chunk_refs),
        source="prop",
    )
    return legacy, columnar


@given(stream_entries)
def test_fingerprints_in_order_match(entries):
    legacy, columnar = build_pair(entries)
    assert list(columnar.fingerprints()) == list(legacy.fingerprints())


@given(stream_entries)
def test_unique_fingerprints_match(entries):
    legacy, columnar = build_pair(entries)
    assert columnar.unique_fingerprints() == legacy.unique_fingerprints()
    # The cached unique-id set agrees with the column it summarises.
    assert columnar.unique_ids() == frozenset(columnar.chunk_ids)
    assert columnar.unique_ids() is columnar.unique_ids()  # cached


@given(stream_entries)
def test_logical_size_and_num_chunks_match(entries):
    legacy, columnar = build_pair(entries)
    assert columnar.logical_size == legacy.logical_size
    assert columnar.logical_size == sum(size for _, size in entries)
    assert columnar.num_chunks == legacy.num_chunks == len(entries)


@given(stream_entries)
def test_entries_view_matches_tuple(entries):
    legacy, columnar = build_pair(entries)
    view = columnar.entries
    assert len(view) == len(legacy.entries)
    assert list(view) == list(legacy.entries)
    for i in range(len(entries)):
        assert view[i] == legacy.entries[i]
    if entries:
        assert view[-1] == legacy.entries[-1]
    assert view[1:7] == legacy.entries[1:7]
    assert view[::2] == legacy.entries[::2]


# ---------------------------------------------------------------------------
# End-to-end equivalence: GC mark over both representations
# ---------------------------------------------------------------------------

mark_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),  # window start
        st.integers(min_value=4, max_value=30),  # window length
    ),
    min_size=2,
    max_size=8,
)


def _mark_config(vc_table: str) -> SystemConfig:
    config = SystemConfig(
        container_size=4096,
        chunking=ChunkingConfig(min_size=128, avg_size=512, max_size=1024),
        retention=RetentionConfig(retained=6, turnover=2),
        vc_table=vc_table,
    )
    config.validate()
    return config


@settings(deadline=None, max_examples=30)
@given(ops=mark_ops, vc_table=st.sampled_from(["exact", "bloom"]), deletions=st.integers(0, 3))
def test_mark_results_match_across_representations(ops, vc_table, deletions):
    services = {}
    marks = {}
    for columnar in (True, False):
        service = DedupBackupService(config=_mark_config(vc_table), columnar=columnar)
        for start, length in ops:
            service.ingest(refs("mark-prop", range(start, start + length)))
        service.delete_oldest(deletions)
        stage = MarkStage(
            config=service.config,
            index=service.index,
            recipes=service.recipes,
            disk=service.disk,
        )
        services[columnar] = service
        marks[columnar] = stage.run()

    columnar_mark, legacy_mark = marks[True], marks[False]
    assert columnar_mark.gs_list == legacy_mark.gs_list
    assert columnar_mark.rrt == legacy_mark.rrt
    assert columnar_mark.candidate_keys == legacy_mark.candidate_keys

    # Identical probe accounting: the batched kernels make the same number
    # of index probes with the same hit counts as the per-entry loops.
    for attr in ("lookups", "hits"):
        assert getattr(services[True].index, attr) == getattr(
            services[False].index, attr
        ), attr

    # Identical VC tables: probe every indexed key, plus keys never stored
    # (exercises Bloom false-positive determinism too — both kernels build
    # bit-identical filters).
    for key, _ in services[True].index.items():
        assert (key in columnar_mark.vc_table) == (key in legacy_mark.vc_table)
    for i in range(50):
        absent = synthetic_fingerprint("never-stored", i) + b"\x00\x00\x00\x00"
        assert (absent in columnar_mark.vc_table) == (absent in legacy_mark.vc_table)


# ---------------------------------------------------------------------------
# FingerprintInterner unit behaviour
# ---------------------------------------------------------------------------

class TestInterner:
    def test_ids_are_dense_and_stable(self):
        interner = FingerprintInterner()
        keys = [synthetic_fingerprint("intern", i) for i in range(5)]
        ids = [interner.intern(k) for k in keys]
        assert ids == list(range(5))
        assert [interner.intern(k) for k in keys] == ids  # idempotent
        assert len(interner) == 5
        for chunk_id, key in zip(ids, keys):
            assert interner.key_of(chunk_id) == key
            assert interner.id_of(key) == chunk_id
            assert key in interner

    def test_id_of_unknown_is_none(self):
        interner = FingerprintInterner()
        assert interner.id_of(b"\x00" * 20) is None

    def test_width_is_pinned_by_first_key(self):
        interner = FingerprintInterner()
        assert interner.width is None
        interner.intern(b"a" * 20)
        assert interner.width == 20
        try:
            interner.intern(b"b" * 24)
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("mixed-width intern must raise")

    def test_fingerprint_table_layout(self):
        interner = FingerprintInterner()
        keys = [synthetic_fingerprint("table", i) for i in range(4)]
        for key in keys:
            interner.intern(key)
        table = interner.fingerprint_table()
        width = interner.width
        assert table == b"".join(keys)
        for i, key in enumerate(keys):
            assert table[i * width : (i + 1) * width] == key

    def test_id_map_is_live_view(self):
        interner = FingerprintInterner()
        mapping = interner.id_map()
        chunk_id = interner.intern(b"c" * 20)
        assert mapping[b"c" * 20] == chunk_id


# ---------------------------------------------------------------------------
# Bloom negative-lookup guard: result- and counter-identical to unguarded
# ---------------------------------------------------------------------------

class TestNegativeGuard:
    def test_guarded_lookup_matches_unguarded(self):
        guarded = FingerprintIndex(negative_guard=True)
        plain = FingerprintIndex(negative_guard=False)
        keys = [synthetic_fingerprint("guard", i) + b"\x00" * 4 for i in range(64)]
        for i, key in enumerate(keys[:32]):
            guarded.insert(key, container_id=i, size=512)
            plain.insert(key, container_id=i, size=512)
        for key in keys:  # 32 present, 32 never inserted
            assert guarded.lookup(key) == plain.lookup(key)
        assert guarded.lookups == plain.lookups == 64
        assert guarded.hits == plain.hits == 32
        assert guarded.guard_probes == 64
        # Every never-inserted key is skipped (no false negatives; false
        # positives may only reduce the skip count, never add wrong skips).
        assert guarded.guard_skips <= 32
        assert guarded.guard_skip_rate == guarded.guard_skips / 64
        assert plain.guard_probes == plain.guard_skips == 0
        assert not plain.guard_enabled and guarded.guard_enabled

    def test_guard_rebuild_preserves_correctness(self):
        index = FingerprintIndex(negative_guard=True)
        n = GUARD_INITIAL_CAPACITY + 100  # forces at least one rebuild
        keys = [b"%020d\x00\x00\x00\x00" % i for i in range(n)]
        for i, key in enumerate(keys):
            index.insert(key, container_id=i, size=1)
        for key in keys:
            assert index.lookup(key) is not None
        assert index.hits == n

    def test_validate_counts_like_lookup_without_guard_probes(self):
        index = FingerprintIndex(negative_guard=True)
        key = b"v" * 24
        index.insert(key, container_id=0, size=1)
        assert index.validate(key) is not None
        assert index.validate(b"w" * 24) is None
        assert index.lookups == 2 and index.hits == 1
        assert index.guard_probes == 0
