"""Bench: regenerate Fig. 11 — overall dedup ratio vs restoration speed.

Shape checks (paper §6.2): GCCDF restores faster than Naïve on every
dataset at the *identical* dedup ratio; every rewriting baseline loses
ratio; MFDedup collapses to ≈1 on these multi-source datasets.
"""

import pytest

from repro.experiments import fig11, run_protocol

DATASETS = ("wiki", "code", "mix", "syn")


def test_fig11_overall(benchmark, bench_scale, record_table):
    text = benchmark.pedantic(fig11.run, args=(bench_scale,), rounds=1, iterations=1)
    record_table("fig11_overall", text)

    for ds in DATASETS:
        naive = run_protocol("naive", ds, bench_scale)
        gccdf = run_protocol("gccdf", ds, bench_scale)
        assert gccdf.dedup_ratio == pytest.approx(naive.dedup_ratio, rel=1e-6), ds
        assert gccdf.restore_speed > naive.restore_speed, ds
        rewriting_ratios = [
            run_protocol(rewriting, ds, bench_scale).dedup_ratio
            for rewriting in ("capping", "har", "smr")
        ]
        # No rewriter can beat Naïve's ratio, and the family as a whole
        # pays for its rewrites (an individual policy may be a no-op at
        # tiny scales, e.g. capping under its container cap).
        assert all(ratio <= naive.dedup_ratio + 1e-9 for ratio in rewriting_ratios), ds
        assert min(rewriting_ratios) < naive.dedup_ratio, ds
        assert run_protocol("mfdedup", ds, bench_scale).dedup_ratio == pytest.approx(
            1.0, abs=0.1
        ), ds
