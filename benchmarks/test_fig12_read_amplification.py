"""Bench: regenerate Fig. 12 — per-backup read amplification.

Shape checks (paper §6.3): GCCDF's mean read amplification is the lowest of
the dedup-preserving approaches on every dataset; MFDedup sits at ≈1 by
holding no shared chunks.
"""

import pytest

from repro.experiments import fig12, run_protocol

DATASETS = ("wiki", "code", "mix", "syn")


def test_fig12_read_amplification(benchmark, bench_scale, record_table):
    text = benchmark.pedantic(fig12.run, args=(bench_scale,), rounds=1, iterations=1)
    record_table("fig12_read_amplification", text)

    for ds in DATASETS:
        gccdf = run_protocol("gccdf", ds, bench_scale)
        naive = run_protocol("naive", ds, bench_scale)
        assert gccdf.mean_read_amplification < naive.mean_read_amplification, ds
        assert run_protocol("mfdedup", ds, bench_scale).mean_read_amplification == (
            pytest.approx(1.0, abs=0.05)
        ), ds
        # Every approach's amplification is ≥ 1 by construction.
        assert gccdf.mean_read_amplification >= 1.0
