"""Micro-benchmarks of the hot substrate operations.

Unlike the figure benchmarks (one protocol run each), these use
pytest-benchmark's repeated measurement to time the inner loops that
dominate the experiments: FastCDC chunking, Bloom-filter probing, dedup
ingest, ownership clustering, and greedy packing.
"""

from repro.chunking.base import split
from repro.chunking.fastcdc import FastCDC
from repro.config import ChunkingConfig, GCCDFConfig
from repro.core.analyzer import Analyzer, ReferenceChecker
from repro.core.clusters import Cluster
from repro.core.packing import greedy_pack
from repro.dedup.keys import storage_key
from repro.dedup.pipeline import IngestPipeline
from repro.hashing.bloom import BloomFilter
from repro.hashing.fingerprints import synthetic_fingerprint
from repro.index.fingerprint_index import FingerprintIndex
from repro.index.recipe import Recipe, RecipeStore
from repro.model import ChunkRef
from repro.simio.disk import DiskModel
from repro.storage.store import ContainerStore
from repro.util.rng import DeterministicRng


def test_fastcdc_throughput(benchmark):
    rng = DeterministicRng(1)
    data = bytes(rng.randint(0, 255) for _ in range(1 << 20))
    chunker = FastCDC(ChunkingConfig(min_size=1024, avg_size=4096, max_size=32768))
    chunks = benchmark(lambda: list(split(chunker, data)))
    assert b"".join(c.data for c in chunks) == data


def test_bloom_probe_rate(benchmark):
    bloom = BloomFilter(capacity=100_000, fp_rate=0.001)
    keys = [synthetic_fingerprint("b", i) for i in range(100_000)]
    for key in keys[: 50_000]:
        bloom.add(key)

    def probe_all():
        return sum(key in bloom for key in keys)

    hits = benchmark(probe_all)
    assert hits >= 50_000


def test_ingest_pipeline_rate(benchmark):
    stream = [
        ChunkRef(fp=synthetic_fingerprint("i", n % 6000), size=1024) for n in range(10_000)
    ]

    def ingest_once():
        pipeline = IngestPipeline(
            store=ContainerStore(capacity=128 * 1024, disk=DiskModel()),
            index=FingerprintIndex(),
            recipes=RecipeStore(),
        )
        return pipeline.ingest(stream)

    result = benchmark(ingest_once)
    assert result.num_chunks == 10_000


def _clustering_world(num_backups=20, num_chunks=5000):
    rng = DeterministicRng(7)
    recipes = RecipeStore()
    chunks = [
        ChunkRef(fp=storage_key(synthetic_fingerprint("c", i)), size=1024)
        for i in range(num_chunks)
    ]
    for backup_id in range(num_backups):
        recipes.new_backup_id()
        start = rng.randint(0, num_chunks // 2)
        length = rng.randint(num_chunks // 4, num_chunks // 2)
        recipes.add(
            Recipe(
                backup_id=backup_id,
                entries=tuple(chunks[start : start + length]),
            )
        )
    return recipes, chunks, tuple(range(num_backups))


def test_analyzer_clustering_rate(benchmark):
    recipes, chunks, involved = _clustering_world()
    config = GCCDFConfig()

    def cluster_once():
        analyzer = Analyzer(ReferenceChecker(recipes, config), config)
        return analyzer.cluster(chunks, involved)

    clusters = benchmark(cluster_once)
    assert sum(c.num_chunks for c in clusters) == len(chunks)


def test_greedy_packing_rate(benchmark):
    rng = DeterministicRng(3)
    clusters = [
        Cluster(
            ownership=tuple(sorted(rng.sample(range(40), rng.randint(1, 10)))),
            chunks=[ChunkRef(fp=storage_key(synthetic_fingerprint("p", i)), size=64)],
        )
        for i in range(400)
    ]
    ordered = benchmark(lambda: greedy_pack(list(clusters), num_backups=40))
    assert len(ordered) == len(clusters)
