#!/usr/bin/env python
"""Fleet jobs-scaling benchmark — thin wrapper over :mod:`repro.fleet.bench`.

Runs the same fleet at ``jobs=1`` and ``--jobs N``, hard-gates that both
produce byte-identical results and merged traces, and records the
wall-clock (and shard-balance ideal) speedup::

    PYTHONPATH=src python benchmarks/fleet.py --preset medium --jobs 4 \\
        --out benchmarks/results/BENCH_fleet.json

See docs/fleet.md for how to read ``BENCH_fleet.json``.
"""

from __future__ import annotations

import sys

from repro.fleet.bench import main

if __name__ == "__main__":
    sys.exit(main())
