#!/usr/bin/env python
"""Read-serving benchmark — thin wrapper over :mod:`repro.serve.bench`.

Gates (1) read/restore equivalence: ``open_backup(id).read_all()`` is
counter-identical to ``service.restore(id)`` for every approach, and
(2, with ``--gate-latency``) aged point reads: GCCDF's piggybacked
defragmentation and MFDedup's lifecycle layout beat the naive baseline on
the oldest live backup's simulated read latency::

    PYTHONPATH=src python benchmarks/serve.py \\
        --gate-latency --out benchmarks/results/BENCH_serve.json

See docs/serving.md for how to read ``BENCH_serve.json``.
"""

from __future__ import annotations

import sys

from repro.serve.bench import main

if __name__ == "__main__":
    sys.exit(main())
