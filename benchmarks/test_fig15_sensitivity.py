"""Bench: regenerate Fig. 15 — segment-size and packing sensitivity (MIX).

Shape checks (paper §6.5): random packing costs extra read amplification
versus the proposed packing at the default segment size, and the smallest
segment size is never better than the largest.
"""

from repro.experiments import fig15, run_protocol


def test_fig15_sensitivity(benchmark, bench_scale, record_table):
    text = benchmark.pedantic(fig15.run, args=(bench_scale,), rounds=1, iterations=1)
    record_table("fig15_sensitivity", text)

    default = run_protocol("gccdf", "mix", bench_scale)
    random_packing = run_protocol("gccdf", "mix", bench_scale, packing="random")
    assert random_packing.mean_read_amplification > default.mean_read_amplification

    smallest = run_protocol("gccdf", "mix", bench_scale, segment_size=10)
    largest = run_protocol("gccdf", "mix", bench_scale, segment_size=200)
    assert largest.mean_read_amplification <= smallest.mean_read_amplification * 1.02
