#!/usr/bin/env python
"""Hybrid-dedup benchmark — thin wrapper over :mod:`repro.gc.hybridbench`.

Gates (1) drained equivalence: hybrid ingest plus GC-time coalescing ends
every approach in exactly the inline-dedup state; (2) hard equivalence
under a duplicated-source workload where the deferred-duplicate machinery
demonstrably fires, in both GC modes; and (3) probe reduction: hybrid's
ingest path performs measurably fewer index probes per chunk than inline::

    PYTHONPATH=src python benchmarks/hybrid.py \\
        --out benchmarks/results/BENCH_hybrid.json

See docs/hybrid-dedup.md for how to read ``BENCH_hybrid.json``.
"""

from __future__ import annotations

import sys

from repro.gc.hybridbench import main

if __name__ == "__main__":
    sys.exit(main())
