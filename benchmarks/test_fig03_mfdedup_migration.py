"""Bench: regenerate Fig. 3 — MFDedup's migration overhead.

Shape check (paper): on the single-source WEB dataset MFDedup migrates a
large fraction of the processed data (paper reports 50–80 %).
"""

from repro.backup.approaches import make_service
from repro.backup.driver import RotationDriver
from repro.experiments import fig03, get_scale
from repro.workloads.datasets import dataset


def test_fig03_mfdedup_migration(benchmark, bench_scale, record_table):
    text = benchmark.pedantic(fig03.run, args=(bench_scale,), rounds=1, iterations=1)
    record_table("fig03_mfdedup_migration", text)

    scale = get_scale(bench_scale)
    service = make_service("mfdedup", scale.config())
    RotationDriver(service, scale.config().retention, "web").run(
        dataset("web", scale=scale.workload_scale, num_backups=scale.num_backups("web"))
    )
    assert service.migration_fraction > 0.3
