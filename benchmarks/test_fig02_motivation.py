"""Bench: regenerate Fig. 2 — the §3.1 motivation comparison.

Shape checks (paper): Naïve dedups well but restores slowly; HAR pays dedup
ratio for modest restore gains; MFDedup is fine on single-source WEB and
collapses on multi-source MIX.
"""

import pytest

from repro.experiments import fig02, run_protocol


def test_fig02_motivation(benchmark, bench_scale, record_table):
    text = benchmark.pedantic(fig02.run, args=(bench_scale,), rounds=1, iterations=1)
    record_table("fig02_motivation", text)

    naive_web = run_protocol("naive", "web", bench_scale)
    har_web = run_protocol("har", "web", bench_scale)
    mf_web = run_protocol("mfdedup", "web", bench_scale)
    mf_mix = run_protocol("mfdedup", "mix", bench_scale)
    nondedup_web = run_protocol("nondedup", "web", bench_scale)

    # Naïve keeps the best ratio but the worst locality of the dedup group.
    assert naive_web.dedup_ratio > har_web.dedup_ratio
    assert naive_web.mean_read_amplification >= har_web.mean_read_amplification
    # MFDedup: effective on one source, degenerate on interleaved sources.
    assert mf_web.dedup_ratio > 3.0
    assert mf_mix.dedup_ratio == pytest.approx(1.0, abs=0.05)
    # Non-dedup is the ratio floor and the locality ceiling.
    assert nondedup_web.dedup_ratio == pytest.approx(1.0)
    assert nondedup_web.mean_read_amplification == pytest.approx(1.0, abs=0.05)
