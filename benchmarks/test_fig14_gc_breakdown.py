"""Bench: regenerate Fig. 14 — GC time-cost breakdown.

Shape checks (paper §6.4): mark cost is approach-independent (same recipe
traversal); the Analyze stage exists only for GCCDF and stays a minority of
its total; GCCDF's sweep I/O time from round 2 on is below Naïve's.
"""

import pytest

from repro.experiments import fig14, run_protocol

DATASETS = ("wiki", "code", "mix", "syn")


def test_fig14_gc_breakdown(benchmark, bench_scale, record_table):
    text = benchmark.pedantic(fig14.run, args=(bench_scale,), rounds=1, iterations=1)
    record_table("fig14_gc_breakdown", text)

    for ds in DATASETS:
        naive = run_protocol("naive", ds, bench_scale)
        gccdf = run_protocol("gccdf", ds, bench_scale)

        naive_mark = sum(r.mark_seconds for r in naive.gc_reports)
        gccdf_mark = sum(r.mark_seconds for r in gccdf.gc_reports)
        assert gccdf_mark == pytest.approx(naive_mark, rel=0.25), ds

        assert all(r.analyze_seconds == 0.0 for r in naive.gc_reports), ds
        assert any(r.analyze_seconds > 0.0 for r in gccdf.gc_reports), ds
        # Analyze stays a minority of GCCDF's total GC time (§6.4).
        gccdf_analyze = sum(r.analyze_seconds for r in gccdf.gc_reports)
        gccdf_total = sum(r.total_seconds for r in gccdf.gc_reports)
        assert gccdf_analyze < 0.5 * gccdf_total, ds

        naive_sweep = sum(
            r.sweep_read_seconds + r.sweep_write_seconds for r in naive.gc_reports[1:]
        )
        gccdf_sweep = sum(
            r.sweep_read_seconds + r.sweep_write_seconds for r in gccdf.gc_reports[1:]
        )
        if naive_sweep:
            assert gccdf_sweep < naive_sweep, ds
