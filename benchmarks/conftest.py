"""Benchmark-suite infrastructure.

Each benchmark regenerates one of the paper's tables/figures via the
``repro.experiments`` harness.  Scale comes from ``REPRO_BENCH_SCALE``
(default ``full`` — the paper's retention 100 / turnover 20 protocol;
set ``quick`` for a seconds-long smoke pass).

Before any benchmark runs, the protocol cells every *collected* figure
needs are satisfied in one parallel pass through
:func:`repro.experiments.run_matrix` — fanned out over
``REPRO_BENCH_JOBS`` worker processes (default: CPU count) and served from
the persistent run cache (disable with ``REPRO_BENCH_NO_CACHE=1``).  The
figure renderers then read the hydrated in-process memo, and the matrix's
per-cell wall-times are archived to ``benchmarks/results/BENCH_matrix.json``.

Rendered tables are persisted to ``benchmarks/results/<name>.txt`` and also
echoed in the terminal summary, so ``pytest benchmarks/ --benchmark-only``
output contains every reproduced figure.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments import run_matrix
from repro.experiments.run import EXPERIMENTS

_RESULTS: dict[str, str] = {}
_RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "full")


@pytest.fixture(scope="session", autouse=True)
def _matrix_prewarm(request, bench_scale):
    """Run the experiment matrix for every collected figure up front."""
    modules = {item.module.__name__ for item in request.session.items}
    selected = sorted(
        name
        for name in EXPERIMENTS
        if any(module.startswith(f"test_{name}") for module in modules)
    )
    if not selected:
        return
    jobs = int(os.environ.get("REPRO_BENCH_JOBS") or 0) or None
    use_cache = not os.environ.get("REPRO_BENCH_NO_CACHE")
    summary = run_matrix(
        selected,
        scale=bench_scale,
        jobs=jobs,
        use_cache=use_cache,
        progress=lambda line: print(f"[matrix] {line}", flush=True),
    )
    # Some experiments (table01, fig03) need no protocol cells; writing
    # their empty summary would clobber a previously archived matrix (its
    # ``cells`` list carries the per-cell wall times) with zero cells.
    if summary.outcomes:
        _RESULTS_DIR.mkdir(exist_ok=True)
        summary.write_json(_RESULTS_DIR / "BENCH_matrix.json")


@pytest.fixture
def record_table():
    """Register a rendered experiment table for summary + persistence."""

    def _record(name: str, text: str) -> None:
        _RESULTS[name] = text
        _RESULTS_DIR.mkdir(exist_ok=True)
        (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RESULTS:
        return
    terminalreporter.section("GCCDF reproduction — regenerated tables & figures")
    for name in sorted(_RESULTS):
        terminalreporter.write_line("")
        terminalreporter.write_line(_RESULTS[name])
