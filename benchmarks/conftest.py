"""Benchmark-suite infrastructure.

Each benchmark regenerates one of the paper's tables/figures via the
``repro.experiments`` harness.  Scale comes from ``REPRO_BENCH_SCALE``
(default ``full`` — the paper's retention 100 / turnover 20 protocol;
set ``quick`` for a seconds-long smoke pass).

Rendered tables are persisted to ``benchmarks/results/<name>.txt`` and also
echoed in the terminal summary, so ``pytest benchmarks/ --benchmark-only``
output contains every reproduced figure.
"""

from __future__ import annotations

import os
import pathlib

import pytest

_RESULTS: dict[str, str] = {}
_RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "full")


@pytest.fixture
def record_table():
    """Register a rendered experiment table for summary + persistence."""

    def _record(name: str, text: str) -> None:
        _RESULTS[name] = text
        _RESULTS_DIR.mkdir(exist_ok=True)
        (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RESULTS:
        return
    terminalreporter.section("GCCDF reproduction — regenerated tables & figures")
    for name in sorted(_RESULTS):
        terminalreporter.write_line("")
        terminalreporter.write_line(_RESULTS[name])
