#!/usr/bin/env python
"""Incremental-GC benchmark — thin wrapper over :mod:`repro.gc.incbench`.

Gates (1) drained-equivalence: budgeted incremental GC ends every approach
in exactly the stop-the-world state at the same simulated cost, and
(2) fleet interleaving: incremental mode's GC cost stays within tolerance
of stop-the-world while ``gc_step`` requests interleave collection with
foreground traffic, byte-identically across ``--jobs``::

    PYTHONPATH=src python benchmarks/incgc.py \\
        --out benchmarks/results/BENCH_incgc.json

See docs/incremental-gc.md for how to read ``BENCH_incgc.json``.
"""

from __future__ import annotations

import sys

from repro.gc.incbench import main

if __name__ == "__main__":
    sys.exit(main())
