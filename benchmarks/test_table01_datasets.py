"""Bench: regenerate Table 1 (dataset inventory)."""

from repro.experiments import table01


def test_table01_datasets(benchmark, bench_scale, record_table):
    text = benchmark.pedantic(table01.run, args=(bench_scale,), rounds=1, iterations=1)
    record_table("table01_datasets", text)
    for name in ("WIKI", "CODE", "MIX", "SYN"):
        assert name in text
