#!/usr/bin/env python
"""Hot-path microbench suite — thin wrapper over :mod:`repro.bench`.

Equivalent to the ``repro-bench`` console script::

    PYTHONPATH=src python benchmarks/hotpath.py --scale quick

Times ingest / GC mark / restore on the columnar engine versus the legacy
tuple-recipe path and writes ``benchmarks/results/BENCH_hotpath.json``
(see docs/performance.md for how to read it).
"""

from __future__ import annotations

import sys

from repro.bench import main

if __name__ == "__main__":
    sys.exit(main())
