"""Bench: regenerate Fig. 13 — GC container distribution.

Shape checks (paper §6.4): from the second GC round on, GCCDF produces
fewer containers than Naïve (the paper reports ≈1/3 — aggregated lifetimes
mean fewer surviving chunks need copying), and MFDedup never produces any.
"""

from repro.experiments import fig13, run_protocol

DATASETS = ("wiki", "code", "mix", "syn")


def test_fig13_container_distribution(benchmark, bench_scale, record_table):
    text = benchmark.pedantic(fig13.run, args=(bench_scale,), rounds=1, iterations=1)
    record_table("fig13_container_distribution", text)

    for ds in DATASETS:
        naive = run_protocol("naive", ds, bench_scale)
        gccdf = run_protocol("gccdf", ds, bench_scale)
        # Skip round 0 (layouts identical before the first reordering).
        naive_produced = sum(r.produced_containers for r in naive.gc_reports[1:])
        gccdf_produced = sum(r.produced_containers for r in gccdf.gc_reports[1:])
        if naive_produced:
            assert gccdf_produced < naive_produced, ds
        mfdedup = run_protocol("mfdedup", ds, bench_scale)
        assert all(r.produced_containers == 0 for r in mfdedup.gc_reports), ds
