"""Bench: the DESIGN.md §5 ablations (beyond the paper's own Fig. 15).

Shape checks: greedy packing is never worse than random; the Bloom VC table
never loses space safety (reclaims no *more* than exact — false positives
only ever retain); split denial's locality impact is second-order; with a
workable bounded restore cache GCCDF out-restores Naïve, and both degrade
when the cache is starved.
"""

import pytest

from repro.experiments import ablations, run_protocol


def test_ablations(benchmark, bench_scale, record_table):
    text = benchmark.pedantic(ablations.run, args=(bench_scale,), rounds=1, iterations=1)
    record_table("ablations", text)

    # Packing: greedy ≤ random on every dataset.
    for ds in ("wiki", "code", "mix", "syn"):
        greedy = run_protocol("gccdf", ds, bench_scale, packing="greedy")
        random_packing = run_protocol("gccdf", ds, bench_scale, packing="random")
        assert greedy.mean_read_amplification <= random_packing.mean_read_amplification, ds

    # VC table: Bloom retention can only keep extra bytes, never reclaim more.
    exact = run_protocol("gccdf", "mix", bench_scale, vc_table="exact")
    bloom = run_protocol("gccdf", "mix", bench_scale, vc_table="bloom")
    reclaimed_exact = sum(r.reclaimed_bytes for r in exact.gc_reports)
    reclaimed_bloom = sum(r.reclaimed_bytes for r in bloom.gc_reports)
    assert reclaimed_bloom <= reclaimed_exact

    # Split denial: a performance cap on the Analyzer whose locality impact
    # stays second-order (it is non-monotonic: denied leaves keep stream
    # order, which can offset the lost ownership separation).
    fine = run_protocol("gccdf", "mix", bench_scale, split_denial_threshold=4)
    coarse = run_protocol("gccdf", "mix", bench_scale, split_denial_threshold=64)
    assert coarse.mean_read_amplification == pytest.approx(
        fine.mean_read_amplification, rel=0.25
    )

    # Restore-cache pressure: with a workable cache (≥16 containers) the
    # clustered layout restores with less I/O than Naïve's; at a starved
    # 4-container cache both thrash and the comparison can invert (recipe
    # order hops between clusters) — asserted only as "both degrade".
    naive_mid = run_protocol("naive", "mix", bench_scale, restore_cache_containers=16)
    gccdf_mid = run_protocol("gccdf", "mix", bench_scale, restore_cache_containers=16)
    assert gccdf_mid.mean_read_amplification < naive_mid.mean_read_amplification
    naive_tiny = run_protocol("naive", "mix", bench_scale, restore_cache_containers=4)
    gccdf_tiny = run_protocol("gccdf", "mix", bench_scale, restore_cache_containers=4)
    naive_free = run_protocol("naive", "mix", bench_scale)
    gccdf_free = run_protocol("gccdf", "mix", bench_scale)
    assert naive_tiny.mean_read_amplification > naive_free.mean_read_amplification
    assert gccdf_tiny.mean_read_amplification > gccdf_free.mean_read_amplification
