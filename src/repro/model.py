"""Core data model shared by every layer.

The unit of deduplication is the *chunk*.  Above the chunking layer a chunk
is always handled by reference — a :class:`ChunkRef` carrying its SHA-1
fingerprint and logical size — while raw bytes, when they exist at all, live
only briefly inside the ingest and restore pipelines (:class:`Chunk`).
Keeping the reference type tiny and hashable is what lets the experiments
push hundreds of thousands of chunks through ingest/GC/restore quickly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hashing.fingerprints import short_fp


@dataclass(frozen=True, slots=True)
class ChunkRef:
    """A chunk identity: fingerprint plus logical size in bytes.

    Equality and hashing are by value, so a ``set[ChunkRef]`` or
    ``dict[ChunkRef, ...]`` deduplicates exactly like a fingerprint index.
    Two refs with equal fingerprints are the same chunk (the library treats
    SHA-1 collisions as impossible, as the paper's systems do).
    """

    fp: bytes
    size: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"chunk size must be >= 0, got {self.size}")

    def __repr__(self) -> str:
        return f"ChunkRef({short_fp(self.fp)}…, {self.size}B)"


@dataclass(frozen=True, slots=True)
class Chunk:
    """A materialised chunk: its reference plus content bytes.

    Only the byte-level pipeline (real chunking of real data) produces these;
    the trace-level pipeline used by the large experiments never does.
    """

    ref: ChunkRef
    data: bytes

    @property
    def fp(self) -> bytes:
        return self.ref.fp

    @property
    def size(self) -> int:
        return self.ref.size
