"""Workload generators for the paper's datasets (Table 1 + §3.1's WEB).

Real multi-hundred-GB snapshot corpora are not shippable; these generators
reproduce their *dedup structure* instead (see DESIGN.md §1): seeded source
models maintain an evolving file tree and emit each backup as a deterministic
chunk-reference stream.  Churn (modify/create/delete rates), file-size
distributions, source interleaving and backup counts are chosen per preset to
match each dataset's description and the behaviours the paper reports (e.g.
multi-source interleaving is what breaks MFDedup on WIKI/CODE/MIX/SYN).
"""

from repro.workloads.sizes import ChunkSizeSampler
from repro.workloads.source import MutationProfile, MutatingSource
from repro.workloads.datasets import (
    Dataset,
    DATASET_NAMES,
    WorkloadCache,
    dataset,
    materialize_dataset,
    web,
    wiki,
    code,
    mix,
    syn,
)
from repro.workloads.bytesgen import expand_chunk, synthetic_backup_bytes
from repro.workloads.trace import load_trace, save_trace, trace_stats

__all__ = [
    "ChunkSizeSampler",
    "MutationProfile",
    "MutatingSource",
    "Dataset",
    "DATASET_NAMES",
    "WorkloadCache",
    "dataset",
    "materialize_dataset",
    "web",
    "wiki",
    "code",
    "mix",
    "syn",
    "expand_chunk",
    "synthetic_backup_bytes",
    "load_trace",
    "save_trace",
    "trace_stats",
]
