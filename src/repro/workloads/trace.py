"""Backup-trace persistence: save and load chunk-reference streams.

Research dedup systems (destor, the paper's artifact) consume *traces* —
pre-chunked streams of (fingerprint, size) records — so experiments are
repeatable and shareable without the underlying data.  This module gives the
same capability: any iterable of :class:`~repro.backup.driver.BackupSpec`
(e.g. a dataset preset) can be serialised to a newline-delimited text format
and replayed later, byte-for-byte identically.

Format (one record per line)::

    #repro-trace v1
    B <source>            # begin backup from <source>
    C <hex fp> <size>     # one chunk reference
    B <source>            # next backup
    ...

Hex fingerprints keep the format greppable and diff-friendly; a ~4 MiB
scaled backup serialises to ~200 KiB, and gzip (applied transparently when
the path ends in ``.gz``) recovers most of the hex overhead.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro.backup.driver import BackupSpec
from repro.errors import ReproError
from repro.hashing.fingerprints import FINGERPRINT_SIZE
from repro.model import ChunkRef

_HEADER = "#repro-trace v1"


class TraceFormatError(ReproError):
    """The trace file is malformed or of an unsupported version."""


def _open(path: str | Path, mode: str) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, mode + "b"), encoding="ascii")
    return open(path, mode, encoding="ascii")


def save_trace(path: str | Path, backups: Iterable[BackupSpec]) -> int:
    """Serialise ``backups`` to ``path``; returns the backup count."""
    count = 0
    with _open(path, "w") as stream:
        stream.write(_HEADER + "\n")
        for spec in backups:
            if any(ch.isspace() for ch in spec.source):
                raise TraceFormatError(
                    f"source names must not contain whitespace: {spec.source!r}"
                )
            stream.write(f"B {spec.source or '-'}\n")
            for ref in spec.chunks:
                stream.write(f"C {ref.fp.hex()} {ref.size}\n")
            count += 1
    return count


def load_trace(path: str | Path) -> Iterator[BackupSpec]:
    """Stream :class:`BackupSpec` objects back out of a trace file.

    Backups are yielded lazily so multi-GiB traces replay in constant
    memory; each backup's chunk tuple is materialised when yielded.
    """
    with _open(path, "r") as stream:
        header = stream.readline().rstrip("\n")
        if header != _HEADER:
            raise TraceFormatError(f"unrecognised trace header: {header!r}")
        source: str | None = None
        chunks: list[ChunkRef] = []
        for line_number, raw in enumerate(stream, start=2):
            line = raw.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            tag, _, rest = line.partition(" ")
            if tag == "B":
                if source is not None:
                    yield BackupSpec(source=source, chunks=tuple(chunks))
                source = "" if rest == "-" else rest
                chunks = []
            elif tag == "C":
                if source is None:
                    raise TraceFormatError(
                        f"line {line_number}: chunk record before any backup"
                    )
                fp_hex, _, size_text = rest.partition(" ")
                try:
                    fp = bytes.fromhex(fp_hex)
                    size = int(size_text)
                except ValueError as exc:
                    raise TraceFormatError(f"line {line_number}: {exc}") from exc
                if len(fp) != FINGERPRINT_SIZE:
                    raise TraceFormatError(
                        f"line {line_number}: fingerprint must be "
                        f"{FINGERPRINT_SIZE} bytes, got {len(fp)}"
                    )
                chunks.append(ChunkRef(fp=fp, size=size))
            else:
                raise TraceFormatError(f"line {line_number}: unknown record {tag!r}")
        if source is not None:
            yield BackupSpec(source=source, chunks=tuple(chunks))


def trace_stats(path: str | Path) -> dict[str, int]:
    """Cheap single-pass statistics of a trace file."""
    backups = 0
    chunks = 0
    logical_bytes = 0
    unique: set[bytes] = set()
    for spec in load_trace(path):
        backups += 1
        chunks += len(spec.chunks)
        logical_bytes += spec.logical_bytes
        unique.update(ref.fp for ref in spec.chunks)
    return {
        "backups": backups,
        "chunks": chunks,
        "logical_bytes": logical_bytes,
        "unique_fingerprints": len(unique),
    }
