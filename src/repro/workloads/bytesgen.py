"""Deterministic byte expansion for byte-level runs.

The trace-level generators emit chunk *references*; when an example or test
wants to exercise the real chunker + payload-carrying pipeline end to end, it
needs actual bytes.  :func:`expand_chunk` expands a logical chunk identity
into deterministic pseudo-random content of the right length, and
:func:`synthetic_backup_bytes` builds whole version-to-version-similar backup
images the way the trace model does — so FastCDC re-finds the shared regions.
"""

from __future__ import annotations

import hashlib

from repro.util.rng import DeterministicRng, derive_seed


def expand_chunk(namespace: str, identity: int, version: int, size: int) -> bytes:
    """Deterministic pseudo-random bytes for one logical chunk.

    Built by chaining BLAKE2b blocks from the chunk's identity, so equal
    identities yield equal bytes and any version bump changes all of them.
    """
    if size < 0:
        raise ValueError("size must be >= 0")
    seed = f"{namespace}/{identity}/{version}".encode("utf-8")
    blocks: list[bytes] = []
    counter = 0
    produced = 0
    while produced < size:
        block = hashlib.blake2b(seed + counter.to_bytes(8, "big"), digest_size=64).digest()
        blocks.append(block)
        produced += len(block)
        counter += 1
    return b"".join(blocks)[:size]


def synthetic_backup_bytes(
    seed: int,
    version: int,
    size: int,
    region_size: int = 8192,
    churn: float = 0.1,
) -> bytes:
    """A backup image of ``size`` bytes whose successive versions share data.

    The image is a sequence of ``region_size`` regions; between version
    ``v`` and ``v+1`` each region mutates independently with probability
    ``churn``.  A region's content depends only on the version at which it
    last mutated, so unchanged regions are byte-identical across versions —
    exactly what content-defined chunking needs to find duplicates.
    """
    if not (0.0 <= churn <= 1.0):
        raise ValueError("churn must be in [0, 1]")
    if size <= 0:
        return b""
    pieces: list[bytes] = []
    num_regions = -(-size // region_size)
    for region in range(num_regions):
        # Replay the region's mutation history to find its last-change version.
        rng = DeterministicRng(derive_seed(seed, "region", region))
        last_changed = 0
        for v in range(1, version + 1):
            if rng.chance(churn):
                last_changed = v
        pieces.append(
            expand_chunk(f"img{seed}", region, last_changed, region_size)
        )
    return b"".join(pieces)[:size]
