"""Dataset presets reproducing Table 1 (WIKI/CODE/MIX/SYN) plus §3.1's WEB.

Each preset fixes: backup count, the set of sources and their interleaving,
per-source working-set size, and churn profile.  Absolute sizes are scaled to
the library's geometry (DESIGN.md §1): at ``scale=1.0`` a backup is a few MiB
against the default scaled chunking — large enough for hundreds of containers
of layout structure, small enough to run every approach in minutes.  Tests
use smaller scales; the geometry-relative structure (chunks per container,
churn per snapshot) is scale-invariant.

Source-interleaving choices, from the dataset descriptions:

* **WIKI** — "snapshots of a specific language Wikipedia": four language
  dumps rotated round-robin; few large archive files, low churn.
* **CODE** — Chromium/LLVM/Linux version history: three sources round-robin;
  many small files, frequent file creation/deletion (commits).
* **MIX** — "a news website and a Redis database": two alternating sources;
  the website churns slowly with article turnover, Redis is one big dump
  file with heavy in-place modification.
* **SYN** — synthetic file create/delete/modify volumes after Tarasov et
  al.: four sources with aggressive whole-file turnover.
* **WEB** — the §3.1 motivation dataset: the news website alone, single
  source (the regime where MFDedup *works*).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.backup.driver import BackupSpec
from repro.config import ChunkingConfig
from repro.errors import ConfigError
from repro.util.rng import derive_seed
from repro.util.units import KIB, MIB
from repro.workloads.source import MutatingSource, MutationProfile

#: Default trace-level chunk geometry (matches ``SystemConfig.scaled()``).
DEFAULT_CHUNKING = ChunkingConfig(min_size=256, avg_size=1 * KIB, max_size=4 * KIB)

#: Default dataset seed; part of the persistent run-cache key, so bumping it
#: invalidates cached protocol runs along with the workloads they ran over.
DEFAULT_SEED = 2025


@dataclass(frozen=True)
class SourceSpec:
    """Blueprint for one source inside a dataset."""

    name: str
    target_bytes: int
    file_size_mean: int
    profile: MutationProfile


class Dataset:
    """A named, re-iterable stream of :class:`BackupSpec` backups.

    Iterating builds fresh sources from the dataset seed, so every pass
    yields the identical backup sequence — approaches are compared on
    byte-identical inputs.
    """

    def __init__(
        self,
        name: str,
        num_backups: int,
        sources: list[SourceSpec],
        chunking: ChunkingConfig = DEFAULT_CHUNKING,
        seed: int = DEFAULT_SEED,
    ):
        if num_backups <= 0:
            raise ConfigError("num_backups must be positive")
        if not sources:
            raise ConfigError("a dataset needs at least one source")
        self.name = name
        self.num_backups = num_backups
        self.source_specs = sources
        self.chunking = chunking
        self.seed = seed

    def __iter__(self) -> Iterator[BackupSpec]:
        sources = [
            MutatingSource(
                name=f"{self.name}/{spec.name}",
                chunking=self.chunking,
                target_bytes=spec.target_bytes,
                file_size_mean=spec.file_size_mean,
                profile=spec.profile,
                seed=derive_seed(self.seed, self.name, spec.name),
            )
            for spec in self.source_specs
        ]
        for index in range(self.num_backups):
            source = sources[index % len(sources)]
            yield BackupSpec(source=source.name, chunks=source.snapshot())

    def __len__(self) -> int:
        return self.num_backups

    @property
    def logical_bytes_estimate(self) -> int:
        """Rough original-size estimate (working sets × backups)."""
        per_round = sum(spec.target_bytes for spec in self.source_specs)
        rounds = self.num_backups / len(self.source_specs)
        return int(per_round * rounds)


def _scaled(nbytes: float, scale: float) -> int:
    return max(16 * KIB, int(nbytes * scale))


def web(scale: float = 1.0, num_backups: int = 100, seed: int = DEFAULT_SEED) -> Dataset:
    """§3.1's WEB: 100 snapshots of a news website, single source."""
    profile = MutationProfile(
        modify_file_fraction=0.20,
        modify_chunk_fraction=0.15,
        insert_probability=0.3,
        hotspot_probability=0.4,
        create_file_fraction=0.02,
        delete_file_fraction=0.02,
    )
    return Dataset(
        name="web",
        num_backups=num_backups,
        sources=[
            SourceSpec(
                name="news",
                target_bytes=_scaled(2 * MIB, scale),
                file_size_mean=_scaled(32 * KIB, scale),
                profile=profile,
            )
        ],
        seed=seed,
    )


def wiki(scale: float = 1.0, num_backups: int = 120, seed: int = DEFAULT_SEED) -> Dataset:
    """Table 1 WIKI: Wikipedia dumps of four languages, round-robin."""
    profile = MutationProfile(
        modify_file_fraction=0.45,
        modify_chunk_fraction=0.05,
        insert_probability=0.3,
        hotspot_probability=0.4,
        create_file_fraction=0.01,
        delete_file_fraction=0.01,
    )
    languages = ("en", "de", "fr", "ja")
    return Dataset(
        name="wiki",
        num_backups=num_backups,
        sources=[
            SourceSpec(
                name=lang,
                target_bytes=_scaled(4 * MIB, scale),
                file_size_mean=_scaled(256 * KIB, scale),
                profile=profile,
            )
            for lang in languages
        ],
        seed=seed,
    )


def code(scale: float = 1.0, num_backups: int = 220, seed: int = DEFAULT_SEED) -> Dataset:
    """Table 1 CODE: Chromium/LLVM/Linux version history, round-robin."""
    profile = MutationProfile(
        modify_file_fraction=0.30,
        modify_chunk_fraction=0.20,
        insert_probability=0.4,
        hotspot_probability=0.4,
        create_file_fraction=0.03,
        delete_file_fraction=0.03,
    )
    projects = ("chromium", "llvm", "linux")
    return Dataset(
        name="code",
        num_backups=num_backups,
        sources=[
            SourceSpec(
                name=project,
                target_bytes=_scaled(1.5 * MIB, scale),
                file_size_mean=_scaled(8 * KIB, scale),
                profile=profile,
            )
            for project in projects
        ],
        seed=seed,
    )


def mix(scale: float = 1.0, num_backups: int = 200, seed: int = DEFAULT_SEED) -> Dataset:
    """Table 1 MIX: news website + Redis dumps, strictly alternating."""
    web_profile = MutationProfile(
        modify_file_fraction=0.20,
        modify_chunk_fraction=0.15,
        insert_probability=0.3,
        hotspot_probability=0.4,
        create_file_fraction=0.02,
        delete_file_fraction=0.02,
    )
    redis_profile = MutationProfile(
        modify_file_fraction=1.0,  # the dump file always changes
        modify_chunk_fraction=0.03,
        insert_probability=0.6,  # appends: Redis datasets grow
        hotspot_probability=0.3,
        create_file_fraction=0.0,
        delete_file_fraction=0.0,
    )
    return Dataset(
        name="mix",
        num_backups=num_backups,
        sources=[
            SourceSpec(
                name="news",
                target_bytes=_scaled(2 * MIB, scale),
                file_size_mean=_scaled(32 * KIB, scale),
                profile=web_profile,
            ),
            SourceSpec(
                name="redis",
                target_bytes=_scaled(3 * MIB, scale),
                file_size_mean=_scaled(3 * MIB, scale),
                profile=redis_profile,
            ),
        ],
        seed=seed,
    )


def syn(scale: float = 1.0, num_backups: int = 240, seed: int = DEFAULT_SEED) -> Dataset:
    """Table 1 SYN: synthetic create/delete/modify volumes (Tarasov-style)."""
    profile = MutationProfile(
        modify_file_fraction=0.30,
        modify_chunk_fraction=0.15,
        insert_probability=0.3,
        hotspot_probability=0.4,
        create_file_fraction=0.06,
        delete_file_fraction=0.06,
    )
    return Dataset(
        name="syn",
        num_backups=num_backups,
        sources=[
            SourceSpec(
                name=f"vol{i}",
                target_bytes=_scaled(4 * MIB, scale),
                file_size_mean=_scaled(64 * KIB, scale),
                profile=profile,
            )
            for i in range(4)
        ],
        seed=seed,
    )


_REGISTRY: dict[str, Callable[..., Dataset]] = {
    "web": web,
    "wiki": wiki,
    "code": code,
    "mix": mix,
    "syn": syn,
}

DATASET_NAMES = tuple(sorted(_REGISTRY))


def dataset(name: str, **kwargs) -> Dataset:
    """Build a dataset preset by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown dataset {name!r}; choose from {DATASET_NAMES}"
        ) from None
    return factory(**kwargs)


class WorkloadCache:
    """Memoizes materialised backup streams by (dataset, scale, backups, seed).

    Generating a workload stream is pure — the same preset parameters always
    produce the identical :class:`~repro.backup.driver.BackupSpec` sequence —
    but not free: chunking and mutation simulation dominate setup time at
    fleet scale.  A cache instance materialises each distinct parameter tuple
    once and hands every later requester the same immutable tuple.  ``hits``
    and ``misses`` feed runtime metrics (``runtime.workload_cache.*``).

    Scoping is the caller's determinism lever: the fleet shard runner creates
    one cache *per shard execution*, so its hit counters are a pure function
    of the shard's tenants — identical whether shards run serially in one
    process or fan out over workers.  The module-level default instance
    behind :func:`materialize_dataset` is for single-process callers (tools,
    benchmarks) where cross-call reuse is the point.
    """

    def __init__(self) -> None:
        self._streams: dict[tuple, tuple[BackupSpec, ...]] = {}
        self.hits = 0
        self.misses = 0

    def materialize(
        self,
        name: str,
        scale: float,
        num_backups: int,
        seed: int = DEFAULT_SEED,
    ) -> tuple[BackupSpec, ...]:
        """The preset's full backup stream, generated at most once per key."""
        key = (name, float(scale), int(num_backups), int(seed))
        stream = self._streams.get(key)
        if stream is not None:
            self.hits += 1
            return stream
        self.misses += 1
        stream = tuple(
            dataset(name, scale=scale, num_backups=num_backups, seed=seed)
        )
        self._streams[key] = stream
        return stream

    def counters(self) -> dict[str, int]:
        """Hit/miss counters in runtime-metrics form."""
        return {"workload_cache.hits": self.hits, "workload_cache.misses": self.misses}

    def __len__(self) -> int:
        return len(self._streams)


#: Process-wide default cache behind :func:`materialize_dataset`.
_DEFAULT_CACHE = WorkloadCache()


def materialize_dataset(
    name: str,
    scale: float,
    num_backups: int,
    seed: int = DEFAULT_SEED,
    cache: WorkloadCache | None = None,
) -> tuple[BackupSpec, ...]:
    """Materialise a preset's backup stream through a :class:`WorkloadCache`
    (the process-wide default unless ``cache`` is given)."""
    return (cache if cache is not None else _DEFAULT_CACHE).materialize(
        name, scale, num_backups, seed
    )
