"""Chunk-size sampling for trace-level workloads.

FastCDC output sizes are roughly a shifted exponential truncated at the
maximum: cut points arrive as a Poisson process after the minimum size, with
normalized chunking pulling mass toward the average.  The sampler mimics that
shape — ``min + Exp(mean = avg - min)`` clipped to ``max`` — so trace-level
streams fill containers the way byte-level FastCDC streams do.
"""

from __future__ import annotations

from repro.config import ChunkingConfig
from repro.util.rng import DeterministicRng


class ChunkSizeSampler:
    """Draws chunk sizes matching a :class:`ChunkingConfig`'s geometry."""

    def __init__(self, config: ChunkingConfig, rng: DeterministicRng):
        config.validate()
        self.config = config
        self._rng = rng
        self._scale = max(1.0, float(config.avg_size - config.min_size))

    def sample(self) -> int:
        """One chunk size in ``[min_size, max_size]`` with mean ≈ avg_size."""
        size = self.config.min_size + int(self._rng.expovariate(1.0 / self._scale))
        return min(size, self.config.max_size)

    def sample_total(self, total_bytes: int) -> list[int]:
        """Sizes summing to ≈ ``total_bytes`` (last chunk absorbs the slack,
        still clipped to the configured bounds)."""
        sizes: list[int] = []
        remaining = total_bytes
        while remaining > 0:
            size = self.sample()
            if size >= remaining:
                size = max(self.config.min_size, min(remaining, self.config.max_size))
                sizes.append(size)
                break
            sizes.append(size)
            remaining -= size
        return sizes
