"""The evolving backup source model.

A :class:`MutatingSource` owns a file tree whose files are lists of logical
chunks ``(identity, version, size)``; a snapshot is the concatenation of all
files' chunks in stable tree order (the tar-image model of paper §2.3).
Between snapshots the source mutates per its :class:`MutationProfile`:

* **modify** — a fraction of files receive localized edits.  Each file has a
  *persistent hotspot*: a region that, once edited, tends to be edited again
  on subsequent snapshots (log-structured files, databases, and documents
  all behave this way).  Rewriting the same region repeatedly makes chunk
  deaths *cohort-structured* — the chunks born at edit *t* die together at
  the next edit *t'* — which is what gives real backup data its
  characteristic ownership clusters (large groups of chunks alive for the
  same backup range).  A smaller fraction of edits land at random offsets,
  adding the scattered-churn component.
* **create / delete** — whole-file turnover (the Tarasov et al. generator's
  file operations), keeping the working-set size roughly stationary; a
  deleted file kills its entire chunk cohort at once.

Two snapshots of the same source share all untouched chunks; snapshots of
different sources share nothing — multi-source datasets interleave several
sources, which is exactly the regime where neighbor-only dedup (MFDedup)
collapses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import ChunkingConfig
from repro.errors import ConfigError
from repro.hashing.fingerprints import synthetic_fingerprint
from repro.model import ChunkRef
from repro.util.rng import DeterministicRng
from repro.workloads.sizes import ChunkSizeSampler


@dataclass(frozen=True)
class MutationProfile:
    """Per-snapshot churn rates of a source."""

    #: Fraction of files edited between consecutive snapshots.
    modify_file_fraction: float = 0.2
    #: Fraction of an edited file's chunks rewritten per edit run.
    modify_chunk_fraction: float = 0.15
    #: Probability that an edit also inserts a brand-new chunk.
    insert_probability: float = 0.2
    #: Probability an edit hits the file's persistent hotspot (cohort
    #: deaths) rather than a random offset (scattered churn).
    hotspot_probability: float = 0.8
    #: Files created per snapshot, as a fraction of the file count.
    create_file_fraction: float = 0.02
    #: Files deleted per snapshot, as a fraction of the file count.
    delete_file_fraction: float = 0.02

    def validate(self) -> None:
        for name in (
            "modify_file_fraction",
            "modify_chunk_fraction",
            "insert_probability",
            "hotspot_probability",
            "create_file_fraction",
            "delete_file_fraction",
        ):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ConfigError(f"{name} must be in [0, 1], got {value}")


@dataclass
class _File:
    """One file: an ordered list of logical chunks plus its edit hotspot."""

    file_id: int
    chunks: list[tuple[int, int, int]] = field(default_factory=list)  # (identity, version, size)
    #: Persistent hotspot position as a fraction of the file length.
    hotspot: float = 0.5

    @property
    def size(self) -> int:
        return sum(size for _, _, size in self.chunks)


class MutatingSource:
    """A backup source producing successive snapshots of its file tree."""

    def __init__(
        self,
        name: str,
        chunking: ChunkingConfig,
        target_bytes: int,
        file_size_mean: int,
        profile: MutationProfile,
        seed: int,
    ):
        """``target_bytes``: initial working-set size; ``file_size_mean``:
        mean file size (controls how many files the tree holds)."""
        profile.validate()
        if target_bytes <= 0 or file_size_mean <= 0:
            raise ConfigError("target_bytes and file_size_mean must be positive")
        self.name = name
        self.profile = profile
        self._rng = DeterministicRng(seed)
        self._sampler = ChunkSizeSampler(chunking, self._rng.fork("sizes"))
        self._next_identity = 0
        self._next_file_id = 0
        self._files: list[_File] = []
        self.snapshots_taken = 0
        num_files = max(1, round(target_bytes / file_size_mean))
        for _ in range(num_files):
            self._files.append(self._new_file(file_size_mean))
        self._file_size_mean = file_size_mean

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _new_chunk(self, size: int) -> tuple[int, int, int]:
        identity = self._next_identity
        self._next_identity += 1
        return (identity, 0, size)

    def _new_file(self, size_hint: int) -> _File:
        file = _File(file_id=self._next_file_id, hotspot=self._rng.random())
        self._next_file_id += 1
        # Vary file sizes around the mean (0.5×–1.5×).
        size = max(1, int(size_hint * (0.5 + self._rng.random())))
        for chunk_size in self._sampler.sample_total(size):
            file.chunks.append(self._new_chunk(chunk_size))
        return file

    # ------------------------------------------------------------------
    # Snapshot production
    # ------------------------------------------------------------------

    def snapshot(self) -> tuple[ChunkRef, ...]:
        """Emit the current state as a chunk stream, then mutate.

        The first call returns the initial state; successive calls return
        progressively mutated states.
        """
        refs = tuple(
            ChunkRef(
                fp=synthetic_fingerprint(self.name, identity, version),
                size=size,
            )
            for file in self._files
            for identity, version, size in file.chunks
        )
        self._mutate()
        self.snapshots_taken += 1
        return refs

    @property
    def working_set_bytes(self) -> int:
        return sum(file.size for file in self._files)

    @property
    def num_files(self) -> int:
        return len(self._files)

    # ------------------------------------------------------------------
    # Mutation machinery
    # ------------------------------------------------------------------

    def _mutate(self) -> None:
        self._modify_files()
        self._delete_files()
        self._create_files()

    def _modify_files(self) -> None:
        count = round(len(self._files) * self.profile.modify_file_fraction)
        if count <= 0 or not self._files:
            return
        count = min(count, len(self._files))
        for file in self._rng.sample(self._files, count):
            self._edit_file(file)

    def _edit_file(self, file: _File) -> None:
        """Bump versions of a contiguous chunk run; maybe insert new chunks.

        With probability ``hotspot_probability`` the run is anchored at the
        file's persistent hotspot, so the chunks written by this edit form a
        cohort that dies together at the file's next hotspot edit.
        """
        if not file.chunks:
            return
        run_length = max(1, round(len(file.chunks) * self.profile.modify_chunk_fraction))
        max_start = max(0, len(file.chunks) - run_length)
        if self._rng.chance(self.profile.hotspot_probability):
            start = min(max_start, int(file.hotspot * len(file.chunks)))
        else:
            start = self._rng.randint(0, max_start)
        for position in range(start, min(start + run_length, len(file.chunks))):
            identity, version, size = file.chunks[position]
            file.chunks[position] = (identity, version + 1, size)
        if self._rng.chance(self.profile.insert_probability):
            insert_at = self._rng.randint(0, len(file.chunks))
            file.chunks.insert(insert_at, self._new_chunk(self._sampler.sample()))

    def _delete_files(self) -> None:
        count = round(len(self._files) * self.profile.delete_file_fraction)
        if count <= 0 or len(self._files) <= 1:
            return
        count = min(count, len(self._files) - 1)
        victims = {file.file_id for file in self._rng.sample(self._files, count)}
        self._files = [file for file in self._files if file.file_id not in victims]

    def _create_files(self) -> None:
        count = round(
            (len(self._files) or 1) * self.profile.create_file_fraction
        )
        for _ in range(count):
            self._files.append(self._new_file(self._file_size_mean))
