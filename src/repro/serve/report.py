"""Read-serving accounting: per-request bytes and simulated latency.

A :class:`ReadReport` is the point-read analogue of
:class:`~repro.restore.report.RestoreReport`: one record per
``pread(offset, length)`` call, carrying the chunk window the request
mapped onto, the tiered-cache outcome, and the simulated seconds the
request's device I/O cost — the quantity the serve benchmark plots as
read latency.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class ReadReport:
    """Metrics for one random-access read against a backup."""

    backup_id: int
    #: Requested stream offset.
    offset: int
    #: Requested length (pre-clamp).
    length: int
    #: Logical bytes actually served (clamped to the backup's size).
    bytes_read: int
    #: Chunk entries the request window overlapped.
    num_chunks: int
    #: Chunks served from the hot-chunk cache tier (no container touched).
    chunk_hits: int
    #: Container fetches answered by the container cache tier.
    container_hits: int
    #: Device fetches (container reads, or positioned volume reads for
    #: MFDedup's container-free layout).
    containers_read: int
    #: Bytes fetched from the device for this request.
    container_bytes_read: int
    #: Simulated seconds of device I/O — the request's latency.
    read_seconds: float

    def to_dict(self) -> dict:
        """Plain-scalar dict; round-trips through JSON."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ReadReport":
        return cls(**data)

    @property
    def read_amplification(self) -> float:
        """Device bytes fetched per logical byte served."""
        if self.bytes_read == 0:
            return 0.0
        return self.container_bytes_read / self.bytes_read

    @property
    def latency(self) -> float:
        """Alias for :attr:`read_seconds` (simulated request latency)."""
        return self.read_seconds
