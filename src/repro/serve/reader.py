"""Random-access readers over live backups (mount-a-backup semantics).

A :class:`BackupReader` maps ``(offset, length)`` windows onto chunk
ranges by bisecting the recipe's cached prefix-sum offset column
(``chunk_starts``), then resolves the touched chunks through the service's
:class:`~repro.serve.cache.TieredReadCache`.  Each ``pread`` runs under
one ``read`` phase on the simulated disk, so its :class:`ReadReport`
carries the request's device bytes and simulated latency, and the trace
(when enabled) gains one ``read`` span per request.

The chunk-resolution step is the only part that differs per layout, so it
is a strategy object:

* :class:`ContainerReadStrategy` — container-based approaches; a chunk-tier
  miss resolves the storage fingerprint through the index and fetches the
  owning container whole (full read amplification, exactly as restore).
* :class:`MFDedupReadStrategy` — MFDedup's volume layout; chunks of one
  backup are adjacent in lifecycle order, so each maximal run of
  chunk-tier misses is charged as a single positioned read of exactly the
  run's bytes (the point-read analogue of the engine's single-scan
  restore model).

``read_all()`` deliberately *delegates* to the service's restore path:
sequential whole-backup reads take the streaming engine with its own
forward-assembly cache, which keeps the two paths counter-identical by
construction for every approach.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Callable, Protocol

from repro.errors import IntegrityError
from repro.index.fingerprint_index import FingerprintIndex
from repro.index.recipe import AnyRecipe
from repro.restore.report import RestoreReport
from repro.serve.cache import TieredReadCache
from repro.serve.report import ReadReport
from repro.simio.disk import DiskModel


class ReadStrategy(Protocol):
    """Layout-specific chunk resolution behind a :class:`BackupReader`."""

    cache: TieredReadCache

    def read_range(self, entries, collect: bool) -> tuple[int, list[bytes] | None]:
        """Resolve a window of recipe entries, charging simulated I/O.

        Returns ``(device_reads, payloads)`` — the number of device
        fetches performed, and the touched chunks' payloads when
        ``collect`` (or ``None`` otherwise).
        """


class ContainerReadStrategy:
    """Chunk → index placement → whole-container fetch via the tiers."""

    __slots__ = ("index", "cache")

    def __init__(self, index: FingerprintIndex, cache: TieredReadCache):
        self.index = index
        self.cache = cache

    def read_range(self, entries, collect: bool) -> tuple[int, list[bytes] | None]:
        cache = self.cache
        index_get = self.index.get
        misses_before = cache.container_misses
        payloads: list[bytes] | None = [] if collect else None
        for entry in entries:
            fp = entry.fp
            cached = cache.get_chunk(fp)
            if cached is not None:
                payload = cached[1]
            else:
                container = cache.get_container(index_get(fp).container_id)
                payload = container.payload(fp)
                cache.put_chunk(fp, entry.size, payload)
            if collect:
                if payload is None:
                    raise IntegrityError(
                        "container holds no payload for a requested chunk "
                        "(trace-level data cannot be read as bytes)"
                    )
                payloads.append(payload)
        return cache.container_misses - misses_before, payloads


class MFDedupReadStrategy:
    """Positioned reads over MFDedup's adjacent lifecycle layout.

    Every maximal run of consecutive chunk-cache misses costs one
    positioned read of the run's bytes — one seek plus transfer — because
    the covering volumes lay a backup's chunks out adjacently in stream
    order (the same property that makes the engine's full restore a
    single sequential scan).
    """

    __slots__ = ("disk", "cache")

    def __init__(self, disk: DiskModel, cache: TieredReadCache):
        self.disk = disk
        self.cache = cache

    def read_range(self, entries, collect: bool) -> tuple[int, list[bytes] | None]:
        if collect:
            raise IntegrityError(
                "mfdedup stores no chunk payloads; byte-level reads are unavailable"
            )
        cache = self.cache
        disk_read = self.disk.read
        reads = 0
        run_bytes = 0
        for entry in entries:
            if cache.get_chunk(entry.fp) is not None:
                if run_bytes:
                    disk_read(run_bytes)
                    reads += 1
                    run_bytes = 0
                continue
            run_bytes += entry.size
            cache.put_chunk(entry.fp, entry.size, None)
        if run_bytes:
            disk_read(run_bytes)
            reads += 1
        return reads, None


class BackupReader:
    """Random-access handle over one live backup.

    Obtained from :meth:`repro.backup.service.BackupService.open_backup`;
    usable as a context manager.  ``pread`` returns accounting only;
    ``pread_bytes`` additionally returns the window's bytes (requires a
    payload-carrying pipeline); ``read_all`` runs the service's restore
    path and returns its :class:`~repro.restore.report.RestoreReport`.
    """

    def __init__(
        self,
        backup_id: int,
        recipe: AnyRecipe,
        strategy: ReadStrategy,
        disk: DiskModel,
        restore: Callable[[], RestoreReport],
    ):
        self.backup_id = backup_id
        self._recipe = recipe
        self._strategy = strategy
        self._disk = disk
        self._restore = restore
        self._starts = recipe.chunk_starts
        self._closed = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """The backup's logical (pre-dedup) size in bytes."""
        return self._recipe.logical_size

    @property
    def num_chunks(self) -> int:
        return self._recipe.num_chunks

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def pread(self, offset: int, length: int) -> ReadReport:
        """Read ``length`` bytes at ``offset``; returns accounting only."""
        report, _ = self._run(offset, length, collect=False)
        return report

    def pread_bytes(self, offset: int, length: int) -> tuple[ReadReport, bytes]:
        """Read a window and return its bytes (payload pipelines only)."""
        report, data = self._run(offset, length, collect=True)
        assert data is not None
        return report, data

    def read_all(self) -> RestoreReport:
        """Sequential whole-backup read — the service's restore path.

        Counter-identical to ``service.restore(backup_id)`` by
        construction (it *is* that path).
        """
        self._check_open()
        return self._restore()

    def _run(self, offset: int, length: int, collect: bool):
        self._check_open()
        if offset < 0:
            raise ValueError("read offset must be >= 0")
        if length < 0:
            raise ValueError("read length must be >= 0")
        size = self._recipe.logical_size
        end = min(offset + length, size)
        if offset >= size or end <= offset:
            # Past-EOF or zero-length: no chunks touched, no I/O, no span.
            report = ReadReport(
                backup_id=self.backup_id,
                offset=offset,
                length=length,
                bytes_read=0,
                num_chunks=0,
                chunk_hits=0,
                container_hits=0,
                containers_read=0,
                container_bytes_read=0,
                read_seconds=0.0,
            )
            return report, (b"" if collect else None)

        starts = self._starts
        first = bisect_right(starts, offset) - 1
        last = bisect_left(starts, end)  # exclusive
        entries = self._recipe.entries[first:last]

        cache = self._strategy.cache
        chunk_hits_before = cache.chunk_hits
        container_hits_before = cache.container_hits
        with self._disk.phase("read") as ph:
            device_reads, payloads = self._strategy.read_range(entries, collect)
            ph.annotate(
                backup_id=self.backup_id,
                offset=offset,
                length=end - offset,
                chunks=last - first,
                containers_read=device_reads,
                chunk_hits=cache.chunk_hits - chunk_hits_before,
                container_hits=cache.container_hits - container_hits_before,
            )

        report = ReadReport(
            backup_id=self.backup_id,
            offset=offset,
            length=length,
            bytes_read=end - offset,
            num_chunks=last - first,
            chunk_hits=cache.chunk_hits - chunk_hits_before,
            container_hits=cache.container_hits - container_hits_before,
            containers_read=device_reads,
            container_bytes_read=ph.delta.read_bytes,
            read_seconds=ph.delta.read_seconds,
        )
        if not collect:
            return report, None
        head = offset - starts[first]
        data = b"".join(payloads)[head : head + (end - offset)]
        return report, data

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the reader (idempotent); further reads raise."""
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("I/O operation on closed BackupReader")

    def __enter__(self) -> "BackupReader":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"BackupReader(backup_id={self.backup_id}, size={self.size}, "
            f"num_chunks={self.num_chunks}, {state})"
        )
