"""The tiered read cache behind the serving layer.

Point reads have a different locality profile from sequential restores: a
mounted backup is probed at scattered offsets, often re-touching the same
hot chunks (file-system metadata, index blocks) while the surrounding
containers churn.  The serving layer therefore stacks two tiers:

* **container tier** — a bounded :class:`~repro.storage.cache.ContainerCache`
  LRU in front of the store, shared across all readers of a service; the
  I/O unit stays the whole container, so a miss charges full-container
  read amplification exactly as a restore would;
* **hot-chunk tier** — a small LRU of individual chunks (keyed by the
  recipe's storage fingerprint) consulted *before* the container tier;
  a hit serves the chunk with no device or container-cache traffic at all.

Chunk-cache entries are content-addressed — a fingerprint's size and
payload never change, even when GC migrates the chunk to a different
container — so the chunk tier needs no invalidation hook.  The container
tier registers with the store for deletion invalidation as usual.

All six counters (`chunk`/`container` × hits/misses/evictions) surface in
the service's ``runtime_metrics()`` under ``read_cache.*`` once the cache
exists, and feed per-request accounting in
:class:`~repro.serve.report.ReadReport`.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigError
from repro.storage.cache import ContainerCache
from repro.storage.container import Container
from repro.storage.store import ContainerStore


class TieredReadCache:
    """Hot-chunk LRU in front of a container LRU in front of the store.

    ``store=None`` builds a chunk-only cache (MFDedup's volume layout has
    no containers to cache).  Either capacity may be ``None`` for an
    unbounded tier; bounded capacities must be positive.
    """

    def __init__(
        self,
        store: ContainerStore | None,
        container_capacity: int | None = 8,
        chunk_capacity: int | None = 1024,
    ):
        if chunk_capacity is not None and chunk_capacity <= 0:
            raise ConfigError("chunk cache capacity must be positive or None")
        self.containers: ContainerCache | None = (
            ContainerCache(store, container_capacity) if store is not None else None
        )
        self.chunk_capacity = chunk_capacity
        #: fp → (size, payload-or-None); payload is kept when the container
        #: carries bytes so ``pread_bytes`` can serve chunk-tier hits.
        self._chunks: "OrderedDict[bytes, tuple[int, bytes | None]]" = OrderedDict()
        self.chunk_hits = 0
        self.chunk_misses = 0
        self.chunk_evictions = 0

    # ------------------------------------------------------------------
    # Hot-chunk tier
    # ------------------------------------------------------------------

    def get_chunk(self, fp: bytes) -> tuple[int, bytes | None] | None:
        """Probe the hot-chunk tier; counts a hit or a miss either way."""
        entry = self._chunks.get(fp)
        if entry is not None:
            self.chunk_hits += 1
            if self.chunk_capacity is not None:
                self._chunks.move_to_end(fp)
            return entry
        self.chunk_misses += 1
        return None

    def put_chunk(self, fp: bytes, size: int, payload: bytes | None) -> None:
        """Insert a chunk fetched from the lower tiers, evicting LRU-first.

        Re-inserting a fingerprint that is already cached refreshes its
        recency — assignment alone leaves an existing key at its old
        position in the ``OrderedDict``, which would let a hot chunk be
        evicted from deep in the LRU order.
        """
        refresh = fp in self._chunks
        self._chunks[fp] = (size, payload)
        if self.chunk_capacity is not None:
            if refresh:
                self._chunks.move_to_end(fp)
            elif len(self._chunks) > self.chunk_capacity:
                self._chunks.popitem(last=False)
                self.chunk_evictions += 1

    # ------------------------------------------------------------------
    # Container tier
    # ------------------------------------------------------------------

    def get_container(self, container_id: int) -> Container:
        """Fetch through the container tier (device read on a tier miss)."""
        if self.containers is None:
            raise ConfigError("this read cache has no container tier")
        return self.containers.get(container_id)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def container_hits(self) -> int:
        return self.containers.hits if self.containers is not None else 0

    @property
    def container_misses(self) -> int:
        return self.containers.misses if self.containers is not None else 0

    @property
    def container_evictions(self) -> int:
        return self.containers.evictions if self.containers is not None else 0

    def counters(self) -> dict[str, int]:
        """The ``read_cache.*`` counter block for ``runtime_metrics()``."""
        return {
            "read_cache.chunk_hits": self.chunk_hits,
            "read_cache.chunk_misses": self.chunk_misses,
            "read_cache.chunk_evictions": self.chunk_evictions,
            "read_cache.container_hits": self.container_hits,
            "read_cache.container_misses": self.container_misses,
            "read_cache.container_evictions": self.container_evictions,
        }

    def clear(self) -> None:
        """Drop both tiers' entries (counters are cumulative and remain)."""
        self._chunks.clear()
        if self.containers is not None:
            self.containers.clear()

    def __len__(self) -> int:
        """Cached chunk count (the hot tier's population)."""
        return len(self._chunks)
