"""Read-serving benchmark — writes ``BENCH_serve.json``.

Two claims, two measurements:

1. **Read/restore equivalence** (hard gate): for every approach,
   ``open_backup(id).read_all()`` returns *exactly* the report
   ``service.restore(id)`` returns — same counters, same simulated
   seconds — because ``read_all`` delegates to the restore path.  Checked
   on twin services (same config, same protocol) so neither path sees the
   other's cache state.

2. **Point-read latency vs. backup age** (the figure): after the §6.1
   rotation protocol, every live backup is probed with seeded point reads
   through a cold tiered read cache.  *Age* is dedup-chain depth: the
   newest generation has aged through the whole chain, so its chunks
   scatter across the entire container history (the paper's fig. 12
   fragmentation regime) and its reads pay the most seeks under naive.
   GCCDF's piggybacked defragmentation and MFDedup's lifecycle-adjacent
   volumes keep those aged reads fast.  With ``--gate-latency`` the
   benchmark *requires* GCCDF and MFDedup to beat naive on the aged
   generation's mean simulated latency (the headline claim
   ``BENCH_serve.json`` records).

Usage::

    PYTHONPATH=src python benchmarks/serve.py \\
        --gate-latency --out benchmarks/results/BENCH_serve.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.backup.approaches import APPROACHES, make_service
from repro.backup.driver import RotationDriver
from repro.backup.options import ServiceOptions
from repro.config import SystemConfig
from repro.util.rng import DeterministicRng, derive_seed
from repro.workloads.datasets import dataset

#: Approaches on the latency figure (the paper's restore-speed cast:
#: no-defrag baseline, rewriting, GCCDF, and the volume-layout engine).
FIGURE_APPROACHES = ("naive", "capping", "gccdf", "mfdedup")

#: Benchmark scales: the protocol each service ages under, and the point
#: reads issued per live backup.  ``quick`` is the CI smoke (equivalence
#: hard, latency report-only); ``default`` is the committed figure.
SCALES = {
    "quick": dict(
        dataset="web", workload_scale=0.06, num_backups=12,
        retained=8, turnover=2, reads=6,
    ),
    "default": dict(
        dataset="web", workload_scale=0.2, num_backups=30,
        retained=20, turnover=5, reads=12,
    ),
}

#: Equivalence-section protocol (small: it runs all seven approaches twice).
EQUIV_DATASET = "web"
EQUIV_SCALE = 0.05
EQUIV_BACKUPS = 10
EQUIV_RETAINED = 6
EQUIV_TURNOVER = 2


def _quantile(samples: list[float], p: float) -> float:
    """Nearest-rank quantile over a sorted sample list."""
    if not samples:
        return 0.0
    rank = max(1, -(-int(p * 1000) * len(samples) // 1000))  # ceil(p*n)
    return samples[rank - 1]


def _run_protocol(approach: str, params: dict, seed: int = 0):
    config = SystemConfig.scaled(
        retained=params["retained"], turnover=params["turnover"]
    )
    service = make_service(approach, config, seed=seed)
    driver = RotationDriver(service, config.retention, dataset_name=params["dataset"])
    driver.run(
        dataset(
            params["dataset"],
            scale=params["workload_scale"],
            num_backups=params["num_backups"],
        )
    )
    return service


def equivalence_section(progress) -> tuple[dict, bool]:
    """Part 1: ``read_all`` ≡ ``restore``, every approach, twin services."""
    params = dict(
        dataset=EQUIV_DATASET, workload_scale=EQUIV_SCALE,
        num_backups=EQUIV_BACKUPS, retained=EQUIV_RETAINED,
        turnover=EQUIV_TURNOVER,
    )
    approaches = {}
    ok = True
    for approach in APPROACHES:
        progress(f"equivalence: {approach}")
        restore_service = _run_protocol(approach, params)
        serve_service = _run_protocol(approach, params)
        live = sorted(restore_service.live_backup_ids())
        equal = live == sorted(serve_service.live_backup_ids())
        for backup_id in live:
            expected = restore_service.restore(backup_id)
            with serve_service.open_backup(backup_id) as reader:
                actual = reader.read_all()
            if expected != actual:
                equal = False
        approaches[approach] = {"backups": len(live), "reports_equal": equal}
        if not equal:
            ok = False
            progress(f"  FAIL: {approach}: read_all != restore")
    return {
        "dataset": EQUIV_DATASET,
        "scale": EQUIV_SCALE,
        "num_backups": EQUIV_BACKUPS,
        "approaches": approaches,
        "all_equal": ok,
    }, ok


def _probe_backup(service, backup_id: int, reads: int, fraction: float, seed: int):
    """Seeded point reads against one backup through a cold cache."""
    service.read_cache.clear()
    samples = []
    containers = 0
    chunks = 0
    with service.open_backup(backup_id) as reader:
        length = max(1, int(reader.size * fraction))
        for i in range(reads):
            rng = DeterministicRng(derive_seed(seed, "serve", backup_id, i))
            offset = rng.randint(0, max(0, reader.size - length))
            report = reader.pread(offset, length)
            samples.append(report.read_seconds)
            containers += report.containers_read
            chunks += report.num_chunks
    return samples, containers, chunks


def latency_section(args: argparse.Namespace, progress) -> tuple[dict, bool]:
    """Part 2: point-read latency vs. backup age, per approach."""
    params = dict(SCALES[args.scale])
    reads = args.reads if args.reads is not None else params["reads"]
    approaches: dict[str, dict] = {}
    for approach in FIGURE_APPROACHES:
        progress(f"latency: {approach} ({args.scale} scale)")
        service = _run_protocol(approach, params, seed=args.seed)
        live = sorted(service.live_backup_ids())
        ages = []
        # age = dedup-chain depth: the newest live backup (highest age)
        # deduplicates against the longest history, so its chunks are the
        # most scattered — the aged-read regime the gate probes.
        for age, backup_id in enumerate(live):
            samples, containers, chunks = _probe_backup(
                service, backup_id, reads, args.read_fraction, args.seed
            )
            ordered = sorted(samples)
            ages.append(
                {
                    "age": age,
                    "backup_id": backup_id,
                    "reads": len(samples),
                    "mean": sum(samples) / len(samples),
                    "p50": _quantile(ordered, 0.50),
                    "p99": _quantile(ordered, 0.99),
                    "containers_read": containers,
                    "chunks": chunks,
                }
            )
        aged = ages[-1]
        approaches[approach] = {
            "live_backups": len(live),
            "ages": ages,
            "aged_mean": aged["mean"],
            "aged_p99": aged["p99"],
        }

    naive_aged = approaches["naive"]["aged_mean"]
    speedups = {
        approach: (
            naive_aged / approaches[approach]["aged_mean"]
            if approaches[approach]["aged_mean"]
            else float("inf")
        )
        for approach in FIGURE_APPROACHES
        if approach != "naive"
    }
    gate = {
        "gccdf_beats_naive": approaches["gccdf"]["aged_mean"] < naive_aged,
        "mfdedup_beats_naive": approaches["mfdedup"]["aged_mean"] < naive_aged,
    }
    ok = all(gate.values())
    if args.gate_latency and not ok:
        progress(f"  FAIL: aged-read latency gate: {gate}")
    return {
        "scale": args.scale,
        "params": params,
        "reads_per_backup": reads,
        "read_fraction": args.read_fraction,
        "approaches": approaches,
        "aged_speedup_vs_naive": speedups,
        "gate": gate,
        "gate_enforced": bool(args.gate_latency),
    }, (ok or not args.gate_latency)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Read-serving benchmark (read/restore equivalence + "
        "point-read latency vs. backup age).",
    )
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default="default",
        help="benchmark scale (default: %(default)s)",
    )
    parser.add_argument(
        "--reads", type=int, default=None,
        help="point reads per live backup (default: the scale's preset)",
    )
    parser.add_argument(
        "--read-fraction", type=float, default=0.0625,
        help="fraction of the backup each point read covers (default: %(default)s)",
    )
    parser.add_argument("--seed", type=int, default=0, help="probe seed")
    parser.add_argument(
        "--gate-latency", action="store_true",
        help="fail unless GCCDF and MFDedup beat naive on aged reads "
        "(leave off at quick scale, where the figure is report-only)",
    )
    parser.add_argument(
        "--out", default="BENCH_serve.json", help="output path (default: %(default)s)"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    def progress(line: str) -> None:
        print(line, file=sys.stderr, flush=True)

    equivalence, equiv_ok = equivalence_section(progress)
    latency, latency_ok = latency_section(args, progress)
    ok = equiv_ok and latency_ok
    payload = {
        "equivalence": equivalence,
        "latency": latency,
        "gate_passed": ok,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"benchmark written to {args.out}", file=sys.stderr)
    print(
        json.dumps(
            {
                "all_equal": equivalence["all_equal"],
                "aged_speedup_vs_naive": {
                    name: round(value, 3)
                    for name, value in latency["aged_speedup_vs_naive"].items()
                },
                "gate": latency["gate"],
            }
        )
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
