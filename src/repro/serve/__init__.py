"""Read serving: random-access reads over live backups.

The paper evaluates fragmentation through full sequential restores; this
package extends the argument to the traffic class where fragmentation
hurts most — latency-sensitive point reads from *old* backups
(mount-a-backup semantics, ROADMAP item 4).  ``service.open_backup``
returns a :class:`BackupReader` whose ``pread(offset, length)`` bisects
the recipe's prefix-sum offset column, resolves the touched chunks
through a :class:`TieredReadCache` (hot-chunk LRU in front of a container
LRU), and reports the request's simulated latency; ``read_all()`` is the
existing restore path, counter-identical by construction.

See ``docs/serving.md`` for the API, the cache tiers, the latency model,
and the read-latency-vs-backup-age figure (``benchmarks/serve.py``).
"""

from repro.serve.cache import TieredReadCache
from repro.serve.reader import (
    BackupReader,
    ContainerReadStrategy,
    MFDedupReadStrategy,
)
from repro.serve.report import ReadReport

__all__ = [
    "BackupReader",
    "ContainerReadStrategy",
    "MFDedupReadStrategy",
    "ReadReport",
    "TieredReadCache",
]
