"""Content-defined and fixed-size chunking.

The paper chunks backup streams with FastCDC (Xia et al., USENIX ATC '16)
at 1 KiB min / 4 KiB avg / 32 KiB max (§6.1).  This package implements
FastCDC from scratch (gear hash, two-stage normalized chunking) plus a
fixed-size chunker used to illustrate the boundary-shift problem (§5.5).
"""

from repro.chunking.base import Chunker, chunk_stream, reassemble
from repro.chunking.fixed import FixedChunker
from repro.chunking.fastcdc import FastCDC
from repro.chunking.gear import gear_table

__all__ = [
    "Chunker",
    "chunk_stream",
    "reassemble",
    "FixedChunker",
    "FastCDC",
    "gear_table",
]
