"""FastCDC content-defined chunking (Xia et al., USENIX ATC '16).

The algorithm rolls a gear hash over the data and declares a cut point when
the hash matches a mask.  FastCDC's contribution over plain gear-CDC is
*normalized chunking*: a stricter mask (more mask bits) is used before the
average-size target and a looser one after it, pulling the chunk-size
distribution in around the average; plus cut-point skipping of the first
``min_size`` bytes.

The masks follow the paper's recipe with a normalization level of 2:
``mask_strict`` has ``log2(avg) + 2`` bits, ``mask_loose`` has
``log2(avg) - 2``.  Mask bits are spread across the word (we take the top
bits of the 64-bit gear hash) which empirically behaves like the paper's
"padded" masks.
"""

from __future__ import annotations

from repro.chunking.gear import gear_table
from repro.config import ChunkingConfig
from repro.errors import ChunkingError

_MASK_64 = (1 << 64) - 1


def _top_bits_mask(bits: int) -> int:
    """A 64-bit mask selecting the ``bits`` most significant bits."""
    if bits <= 0:
        return 0
    bits = min(bits, 64)
    return ((1 << bits) - 1) << (64 - bits)


class FastCDC:
    """A reusable FastCDC chunker configured by :class:`ChunkingConfig`."""

    def __init__(self, config: ChunkingConfig | None = None, normalization: int = 2):
        self.config = config or ChunkingConfig()
        self.config.validate()
        if normalization < 0:
            raise ChunkingError("normalization level must be >= 0")
        self.min_size = self.config.min_size
        self.avg_size = self.config.avg_size
        self.max_size = self.config.max_size
        avg_bits = self.avg_size.bit_length() - 1
        self.mask_strict = _top_bits_mask(avg_bits + normalization)
        self.mask_loose = _top_bits_mask(max(1, avg_bits - normalization))
        self._gear = gear_table(self.config.gear_seed)

    def cut(self, data: bytes, start: int, end: int) -> int:
        """Find the next cut point in ``data[start:end]``.

        Follows the FastCDC paper's structure: skip ``min_size`` bytes, roll
        with the strict mask until ``avg_size``, then the loose mask until
        ``max_size``; fall back to a hard cut at ``max_size`` (or ``end``).
        """
        if start >= end:
            raise ChunkingError(f"empty window [{start}, {end})")
        remaining = end - start
        if remaining <= self.min_size:
            return end
        gear = self._gear
        hash_value = 0
        boundary_avg = start + min(self.avg_size, remaining)
        boundary_max = start + min(self.max_size, remaining)
        index = start + self.min_size
        mask = self.mask_strict
        while index < boundary_avg:
            hash_value = ((hash_value << 1) + gear[data[index]]) & _MASK_64
            if not (hash_value & mask):
                return index + 1
            index += 1
        mask = self.mask_loose
        while index < boundary_max:
            hash_value = ((hash_value << 1) + gear[data[index]]) & _MASK_64
            if not (hash_value & mask):
                return index + 1
            index += 1
        return boundary_max
