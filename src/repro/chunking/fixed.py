"""Fixed-size chunking.

Included as the counter-example from the paper's §5.5 discussion: fixed-size
chunking suffers the *boundary shift problem* — a small insertion early in a
stream changes every later chunk — which is why backup dedup uses CDC.
The unit tests demonstrate exactly that contrast against FastCDC.
"""

from __future__ import annotations

from repro.errors import ChunkingError


class FixedChunker:
    """Splits data into fixed ``size``-byte chunks (last one may be short)."""

    def __init__(self, size: int):
        if size <= 0:
            raise ChunkingError("fixed chunk size must be positive")
        self.size = size

    @property
    def max_size(self) -> int:
        return self.size

    def cut(self, data: bytes, start: int, end: int) -> int:
        if start >= end:
            raise ChunkingError(f"empty window [{start}, {end})")
        return min(start + self.size, end)
