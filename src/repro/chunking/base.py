"""Chunker interface and stream helpers.

A chunker turns a byte string into a sequence of cut points; the helpers here
lift that into :class:`~repro.model.Chunk` production over whole buffers or
incrementally over file-like streams.
"""

from __future__ import annotations

from typing import BinaryIO, Iterable, Iterator, Protocol

from repro.errors import ChunkingError
from repro.hashing.fingerprints import fingerprint
from repro.model import Chunk, ChunkRef


class Chunker(Protocol):
    """Anything that can split a buffer into contiguous chunk lengths."""

    @property
    def max_size(self) -> int:
        """Largest chunk the algorithm can emit, in bytes."""
        ...

    def cut(self, data: bytes, start: int, end: int) -> int:
        """Return the end offset of the next chunk beginning at ``start``.

        ``end`` bounds the usable data.  Implementations must return an
        offset in ``(start, end]`` and must be deterministic functions of
        ``data[start:end]`` only (self-containedness is what gives CDC its
        boundary-shift resistance).
        """
        ...


def split(chunker: Chunker, data: bytes) -> Iterator[Chunk]:
    """Split an in-memory buffer into fingerprinted chunks."""
    offset = 0
    length = len(data)
    while offset < length:
        cut = chunker.cut(data, offset, length)
        if not (offset < cut <= length):
            raise ChunkingError(
                f"chunker returned invalid cut point {cut} for window [{offset}, {length})"
            )
        piece = data[offset:cut]
        yield Chunk(ref=ChunkRef(fp=fingerprint(piece), size=len(piece)), data=piece)
        offset = cut


def chunk_stream(chunker: Chunker, stream: BinaryIO, read_size: int = 1 << 20) -> Iterator[Chunk]:
    """Incrementally chunk a binary stream.

    The buffer is kept at least one ``max_size`` deep (until EOF) so that
    every cut decision sees the same window it would over the whole buffer,
    making streamed and whole-buffer chunking produce identical output.
    """
    if read_size <= 0:
        raise ChunkingError("read_size must be positive")
    buffer = bytearray()
    eof = False
    while True:
        while not eof and len(buffer) < max(chunker.max_size * 2, read_size):
            block = stream.read(read_size)
            if not block:
                eof = True
                break
            buffer.extend(block)
        if not buffer:
            return
        view = bytes(buffer)
        offset = 0
        # Keep a full max_size window after each cut unless we hit EOF.
        limit = len(view) if eof else len(view) - chunker.max_size
        while offset < len(view) and (eof or offset <= limit):
            cut = chunker.cut(view, offset, len(view))
            if not eof and cut == len(view) and cut - offset < chunker.max_size:
                break  # ambiguous tail; refill first
            piece = view[offset:cut]
            yield Chunk(ref=ChunkRef(fp=fingerprint(piece), size=len(piece)), data=piece)
            offset = cut
        del buffer[:offset]
        if eof and not buffer:
            return


def reassemble(chunks: Iterable[Chunk]) -> bytes:
    """Concatenate chunk payloads back into the original buffer."""
    return b"".join(chunk.data for chunk in chunks)
