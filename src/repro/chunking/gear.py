"""Gear-hash table generation for FastCDC.

FastCDC's rolling hash is the *gear* hash:

    h = (h << 1 + gear[byte]) mod 2^64

where ``gear`` is a table of 256 random 64-bit integers.  The original
implementations ship a hard-coded random table; we generate one
deterministically from a seed so the whole library stays reproducible while
remaining faithful to the construction.
"""

from __future__ import annotations

from functools import lru_cache

from repro.util.rng import DeterministicRng

_MASK_64 = (1 << 64) - 1


@lru_cache(maxsize=8)
def gear_table(seed: int) -> tuple[int, ...]:
    """256 pseudo-random 64-bit gear values derived from ``seed``."""
    rng = DeterministicRng(seed)
    return tuple(rng.token() & _MASK_64 for _ in range(256))
