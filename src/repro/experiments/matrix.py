"""Process-parallel experiment-matrix runner.

Figures 11–14, the ablations and the sensitivity sweep all project from the
same six-approach × four-dataset protocol runs, but the figure modules
execute cells lazily and serially.  This module turns the other side of
that coin into a scheduler:

1. :func:`cells_for` enumerates every protocol cell the selected
   experiments will request — declaratively, from the figure modules' own
   approach/dataset/sweep constants — and deduplicates across figures
   (fig12/13/14's cells are a subset of fig11's; the ablations share the
   plain GCCDF cells' datasets but carry overrides).
2. :func:`run_matrix` serves each cell from the per-process memo, then the
   persistent :class:`~repro.experiments.cache.RunCache`, and fans the
   remaining misses out over a :class:`~concurrent.futures.ProcessPoolExecutor`.
3. Completed runs are hydrated into ``common._RUN_CACHE`` under the exact
   keys :func:`~repro.experiments.common.run_protocol` computes, so the
   figure renderers run unmodified — and render in milliseconds.

Workers return :class:`~repro.backup.driver.RotationResult` as plain dicts
(``to_dict``/``from_dict``), which round-trip exactly, so a ``--jobs 4``
matrix renders byte-identical tables to a serial run.

With ``trace_path`` set, every cell runs under a
:class:`~repro.obs.tracer.TraceRecorder` (cache loads are bypassed — a
cached result has no events to replay) and the per-cell event streams are
merged into one JSON Lines file: cells in :func:`cells_for` enumeration
order, each introduced by a ``cell`` header event, sequence numbers
reassigned globally.  Because events carry only simulated time, the merged
file is byte-identical whichever worker ran which cell.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.backup.driver import RotationResult
from repro.errors import ConfigError
from repro.experiments import ablations, common, fig02, fig11, fig12, fig13, fig14, fig15
from repro.experiments.cache import RunCache, run_cache_key
from repro.experiments.common import ExperimentScale, get_scale, run_protocol
from repro.experiments.pool import run_tasks
from repro.obs.tracer import TraceRecorder, Tracer, write_trace

#: Where cell wall-times land unless the caller overrides it.  Kept with
#: the other committed benchmark artifacts so a bare ``repro-experiments``
#: run never litters the repository root.
DEFAULT_BENCH_PATH = "benchmarks/results/BENCH_matrix.json"


@dataclass(frozen=True)
class Cell:
    """One protocol cell: everything :func:`run_protocol` needs, picklable."""

    approach: str
    dataset: str
    scale: str
    vc_table: str | None = None
    restore_cache_containers: int | None = None
    #: Sorted ``(name, value)`` pairs of GCCDF overrides.
    gccdf_overrides: tuple[tuple[str, object], ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "gccdf_overrides", tuple(sorted(self.gccdf_overrides)))

    def memo_key(self) -> tuple:
        return common.memo_key(
            self.approach,
            self.dataset,
            self.scale,
            self.vc_table,
            self.restore_cache_containers,
            self.gccdf_overrides,
        )

    def cache_key(self, spec: ExperimentScale | None = None) -> str:
        """Content hash for the persistent run cache (resolves the config)."""
        spec = get_scale(spec if spec is not None else self.scale)
        config = spec.config(
            vc_table=self.vc_table,
            restore_cache_containers=self.restore_cache_containers,
            **dict(self.gccdf_overrides),
        )
        return run_cache_key(
            self.approach,
            self.dataset,
            spec.name,
            config,
            spec.workload_scale,
            spec.num_backups(self.dataset),
        )

    @property
    def label(self) -> str:
        """Compact human-readable cell id for progress lines and JSON."""
        extras = [f"{k}={v}" for k, v in self.gccdf_overrides]
        if self.vc_table is not None:
            extras.append(f"vc={self.vc_table}")
        if self.restore_cache_containers is not None:
            extras.append(f"rcache={self.restore_cache_containers}")
        suffix = f" [{' '.join(extras)}]" if extras else ""
        return f"{self.approach}/{self.dataset}@{self.scale}{suffix}"

    def run(self, tracer: Tracer | None = None) -> RotationResult:
        """Execute the cell in this process (bypassing the memo)."""
        return run_protocol(
            self.approach,
            self.dataset,
            self.scale,
            use_cache=False,
            vc_table=self.vc_table,
            restore_cache_containers=self.restore_cache_containers,
            tracer=tracer,
            **dict(self.gccdf_overrides),
        )

    def header_event(self, alias_of: str | None = None) -> dict:
        """The ``cell`` header event introducing this cell's stream in a
        merged trace (``alias_of`` marks config-dedup sharers)."""
        fields = {
            "label": self.label,
            "approach": self.approach,
            "dataset": self.dataset,
            "scale": self.scale,
        }
        if alias_of is not None:
            fields["alias_of"] = alias_of
        return {
            "seq": 0,  # reassigned at merge time
            "name": "cell",
            "sim_time": 0.0,
            "duration": 0.0,
            "fields": fields,
        }


def _grid(approaches: Sequence[str], datasets: Sequence[str], scale: str) -> list[Cell]:
    return [Cell(a, d, scale) for d in datasets for a in approaches]


def _fig15_cells(scale: str) -> list[Cell]:
    cells = [
        Cell("gccdf", fig15.DATASET, scale, gccdf_overrides=(("segment_size", size),))
        for size in fig15.SEGMENT_SIZES
    ]
    cells.append(Cell("gccdf", fig15.DATASET, scale, gccdf_overrides=(("packing", "random"),)))
    return cells


def _ablation_cells(scale: str) -> list[Cell]:
    cells = [
        Cell("gccdf", dataset, scale, gccdf_overrides=(("packing", packing),))
        for dataset in ablations.DATASETS
        for packing in ablations.PACKINGS
    ]
    cells += [
        Cell("gccdf", dataset, scale, vc_table=vc_table)
        for dataset in ablations.VC_DATASETS
        for vc_table in ablations.VC_TABLES
    ]
    cells += [
        Cell(
            "gccdf",
            ablations.SPLIT_DATASET,
            scale,
            gccdf_overrides=(("split_denial_threshold", threshold),),
        )
        for threshold in ablations.SPLIT_THRESHOLDS
    ]
    cells += [
        Cell(approach, ablations.RESTORE_CACHE_DATASET, scale, restore_cache_containers=size)
        for approach in ablations.RESTORE_CACHE_APPROACHES
        for size in ablations.RESTORE_CACHE_SIZES
    ]
    return cells


#: experiment id → cells it requests through ``run_protocol``.  table01 and
#: fig03 drive their own (cheap) inventory passes and need no cells.
CELL_BUILDERS: dict[str, Callable[[str], list[Cell]]] = {
    "table01": lambda scale: [],
    "fig02": lambda scale: _grid(fig02.APPROACHES, fig02.DATASETS, scale),
    "fig03": lambda scale: [],
    "fig11": lambda scale: _grid(fig11.APPROACHES, fig11.DATASETS, scale),
    "fig12": lambda scale: _grid(fig12.APPROACHES, fig12.DATASETS, scale),
    "fig13": lambda scale: _grid(fig13.APPROACHES, fig13.DATASETS, scale),
    "fig14": lambda scale: _grid(fig14.APPROACHES, fig14.DATASETS, scale),
    "fig15": _fig15_cells,
    "ablations": _ablation_cells,
}


def cells_for(experiments: Iterable[str], scale: str) -> tuple[Cell, ...]:
    """Every distinct cell the selected experiments need, in first-seen order."""
    spec = get_scale(scale)
    seen: dict[Cell, None] = {}
    for name in experiments:
        try:
            builder = CELL_BUILDERS[name]
        except KeyError:
            raise ConfigError(
                f"unknown experiment {name!r}; choose from {sorted(CELL_BUILDERS)}"
            ) from None
        for cell in builder(spec.name):
            seen.setdefault(cell, None)
    return tuple(seen)


def _execute_cell(payload: tuple[Cell, bool]) -> tuple[dict, float, list[dict] | None]:
    """Worker-side entry point: run one cell, ship the result as a dict
    (plus the cell's event stream as dicts when tracing)."""
    cell, trace = payload
    started = time.perf_counter()
    recorder = TraceRecorder() if trace else None
    result = cell.run(tracer=recorder)
    seconds = time.perf_counter() - started
    return result.to_dict(), seconds, recorder.to_dicts() if recorder else None


@dataclass(frozen=True)
class CellOutcome:
    """How one cell was satisfied and what it cost."""

    cell: Cell
    #: ``"run"`` (executed), ``"disk"`` (persistent cache), ``"memo"``
    #: (already in this process's memo), ``"dedup"`` (shared another
    #: pending cell's run because the resolved configs were identical —
    #: e.g. an ablation overriding a knob with its default value).
    source: str
    #: Wall-clock seconds of the protocol run (0 for cache hits).
    seconds: float


@dataclass
class MatrixSummary:
    """Everything a matrix invocation did, for summaries and BENCH json."""

    scale: str
    jobs: int
    outcomes: list[CellOutcome] = field(default_factory=list)
    #: Wall-clock seconds of the whole matrix pass (cache probes included).
    wall_seconds: float = 0.0

    @property
    def executed(self) -> int:
        return sum(1 for o in self.outcomes if o.source == "run")

    @property
    def disk_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.source == "disk")

    @property
    def memo_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.source == "memo")

    @property
    def dedup_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.source == "dedup")

    @property
    def total_cell_seconds(self) -> float:
        """Sum of per-cell protocol wall-times (CPU-side work parallelised)."""
        return sum(o.seconds for o in self.outcomes)

    def format_summary(self) -> str:
        return (
            f"matrix: {len(self.outcomes)} cells at scale={self.scale}, jobs={self.jobs} — "
            f"{self.executed} executed, {self.disk_hits} disk-cache hits, "
            f"{self.memo_hits} memo hits, {self.dedup_hits} config-dedup hits; "
            f"cell seconds {self.total_cell_seconds:.1f}, "
            f"wall {self.wall_seconds:.1f}s"
        )

    def to_dict(self) -> dict:
        return {
            "scale": self.scale,
            "jobs": self.jobs,
            "cells_total": len(self.outcomes),
            "executed": self.executed,
            "disk_hits": self.disk_hits,
            "memo_hits": self.memo_hits,
            "dedup_hits": self.dedup_hits,
            "total_cell_seconds": self.total_cell_seconds,
            "total_wall_seconds": self.wall_seconds,
            "cells": [
                {
                    "label": o.cell.label,
                    "approach": o.cell.approach,
                    "dataset": o.cell.dataset,
                    "scale": o.cell.scale,
                    "vc_table": o.cell.vc_table,
                    "restore_cache_containers": o.cell.restore_cache_containers,
                    "gccdf_overrides": dict(o.cell.gccdf_overrides),
                    "source": o.source,
                    "seconds": o.seconds,
                }
                for o in self.outcomes
            ],
        }

    def write_json(self, path: str | os.PathLike = DEFAULT_BENCH_PATH) -> None:
        """Persist per-cell and total wall-time (the BENCH_matrix.json file)."""
        parent = os.path.dirname(os.fspath(path))
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


def _merged_events(
    cells: Sequence[Cell],
    pending: dict[str, list[Cell]],
    key_of: dict[Cell, str],
    events_by_key: dict[str, list[dict]],
):
    """Yield the merged trace stream, deterministically.

    Cells appear in :func:`cells_for` enumeration order — never in worker
    completion order — each introduced by a ``cell`` header event.  The
    representative of a config-dedup group carries the group's events;
    sharers get an ``alias_of`` header and no events.  Sequence numbers are
    reassigned globally so the file reads as one dense stream.
    """
    seq = 0
    for cell in cells:
        key = key_of[cell]
        representative = pending[key][0]
        if cell is representative:
            header = cell.header_event()
        else:
            header = cell.header_event(alias_of=representative.label)
        header["seq"] = seq
        seq += 1
        yield header
        if cell is representative:
            for event in events_by_key.get(key, []):
                yield {**event, "seq": seq}
                seq += 1


def run_matrix(
    experiments: Iterable[str],
    scale: str = "quick",
    jobs: int | None = None,
    use_cache: bool = True,
    cache_dir: str | os.PathLike | None = None,
    progress: Callable[[str], None] | None = None,
    trace_path: str | os.PathLike | None = None,
) -> MatrixSummary:
    """Satisfy every cell the selected experiments need, in parallel.

    Afterwards ``common._RUN_CACHE`` holds all results, so rendering the
    experiments costs no protocol runs.  ``use_cache=False`` skips the
    persistent cache entirely (both probe and store); ``jobs=1`` runs the
    misses serially in-process, with no worker pool.

    ``trace_path`` writes a merged JSON Lines trace of every cell's event
    stream.  Tracing forces every cell to execute (memo and disk-cache
    *loads* are bypassed — cached results carry no events), but completed
    runs are still stored, so a later untraced pass hits the cache.
    """
    spec = get_scale(scale)
    tracing = trace_path is not None
    jobs = jobs if jobs is not None else (os.cpu_count() or 1)
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    emit = progress or (lambda line: None)
    cache = RunCache(cache_dir) if use_cache else None
    if cache is not None:
        # Fail fast on an unwritable root (e.g. a mistyped REPRO_CACHE_DIR)
        # rather than after the first completed cell tries to persist.
        try:
            cache.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ConfigError(
                f"run-cache directory {cache.root} is not writable ({exc}); "
                "set REPRO_CACHE_DIR to a writable path or disable the "
                "cache (--no-cache / use_cache=False)"
            ) from exc

    wall_started = time.perf_counter()
    cells = cells_for(experiments, spec.name)
    outcomes: dict[Cell, CellOutcome] = {}
    # Pending cells grouped by content hash: cells whose resolved configs
    # are identical (e.g. an ablation overriding a knob with its default
    # value) share one protocol run — and therefore one cache entry, so a
    # rerun served from disk renders byte-identically to the cold pass.
    pending: dict[str, list[Cell]] = {}
    key_of: dict[Cell, str] = {}
    events_by_key: dict[str, list[dict]] = {}
    for cell in cells:
        key = cell.cache_key(spec)
        key_of[cell] = key
        # Tracing bypasses memo and disk-cache *loads*: a cached result has
        # no events to replay, so every cell must actually execute.
        if not tracing:
            if common.memoized(cell.memo_key()) is not None:
                outcomes[cell] = CellOutcome(cell, "memo", 0.0)
                continue
            if cache is not None:
                result = cache.load(key)
                if result is not None:
                    common.hydrate(cell.memo_key(), result)
                    outcomes[cell] = CellOutcome(cell, "disk", 0.0)
                    emit(f"[cache] {cell.label}")
                    continue
        pending.setdefault(key, []).append(cell)

    def finish(
        key: str,
        result: RotationResult,
        seconds: float,
        done: int,
        events: list[dict] | None = None,
    ) -> None:
        representative, *sharers = pending[key]
        if cache is not None:
            cache.store(key, result)
        if events is not None:
            events_by_key[key] = events
        for cell in pending[key]:
            common.hydrate(cell.memo_key(), result)
        outcomes[representative] = CellOutcome(representative, "run", seconds)
        for cell in sharers:
            outcomes[cell] = CellOutcome(cell, "dedup", 0.0)
        shared = f" (+{len(sharers)} shared)" if sharers else ""
        emit(f"[{done}/{len(pending)}] {representative.label}: {seconds:.1f}s{shared}")

    def on_cell_done(
        key: str, outcome: tuple[dict, float, list[dict] | None], done: int
    ) -> None:
        data, seconds, events = outcome
        finish(key, RotationResult.from_dict(data), seconds, done, events)

    run_tasks(
        [(key, (group[0], tracing)) for key, group in pending.items()],
        _execute_cell,
        jobs,
        on_cell_done,
    )

    if tracing:
        written = write_trace(trace_path, _merged_events(cells, pending, key_of, events_by_key))
        emit(f"[trace] {written} events -> {trace_path}")

    summary = MatrixSummary(
        scale=spec.name,
        jobs=jobs,
        outcomes=[outcomes[cell] for cell in cells],
        wall_seconds=time.perf_counter() - wall_started,
    )
    emit(summary.format_summary())
    return summary
