"""Fig. 3 — MFDedup's data-migration overhead (§3.1).

MFDedup reorganises chunks with a dedicated migration stage at every ingest;
the paper reports the migrated volume at 50–80 % of the processed dataset
size.  This experiment runs MFDedup over WEB and MIX and reports cumulative
migrated bytes as a fraction of cumulative ingested bytes.

Note the asymmetry with MIX: there MFDedup removes almost no duplicates, so
little data is shared with the neighbouring backup and the migration
fraction collapses together with the dedup ratio — the same degenerate
behaviour Fig. 2(b) shows.
"""

from __future__ import annotations

from repro.experiments.common import get_scale
from repro.backup.driver import RotationDriver
from repro.backup.approaches import make_service
from repro.metrics.table import Column, ResultTable, fmt_float
from repro.util.units import format_bytes
from repro.workloads.datasets import dataset as make_dataset

DATASETS = ("web", "mix")


def run(scale: str = "quick") -> str:
    spec = get_scale(scale)
    table = ResultTable(
        title=f"Fig. 3 — MFDedup migration overhead (scale={spec.name})",
        columns=[
            Column("dataset", align="<"),
            Column("processed", align=">"),
            Column("migrated", align=">"),
            Column("migrated fraction", format=fmt_float(2)),
            Column("dedup ratio", format=fmt_float(2)),
        ],
    )
    for dataset_name in DATASETS:
        config = spec.config()
        service = make_service("mfdedup", config)
        driver = RotationDriver(service, config.retention, dataset_name=dataset_name)
        driver.run(
            make_dataset(
                dataset_name,
                scale=spec.workload_scale,
                num_backups=spec.num_backups(dataset_name),
            )
        )
        table.add_row(
            dataset_name.upper(),
            format_bytes(service.cumulative_logical_bytes),
            format_bytes(service.migrated_bytes),
            service.migration_fraction,
            service.dedup_ratio,
        )
    return table.render()


def main() -> None:
    print(run("quick"))


if __name__ == "__main__":
    main()
