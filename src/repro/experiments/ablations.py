"""Design-choice ablations beyond the paper's own sensitivity study.

DESIGN.md §5 commits to four ablations of choices the paper makes but does
not individually quantify:

* **packing** — tree order (§5.4's implementation) vs the explicit greedy
  §4.2 strategy vs random, on every dataset (Fig. 15a does this on MIX only);
* **vc-table** — exact set vs Bloom filter in the mark stage: space saved
  vs dead chunks retained by false positives;
* **split-denial** — the Analyzer's leaf-size threshold (§5.3 ③): cluster
  count and read amplification across thresholds;
* **restore-cache** — bounded restore caches vs the read-once model: how
  cache pressure inflates effective read amplification per approach.

Each function returns a rendered table; ``run`` concatenates all four.
"""

from __future__ import annotations

from repro.experiments.common import run_protocol
from repro.metrics.table import Column, ResultTable, fmt_float, fmt_mib

DATASETS = ("wiki", "code", "mix", "syn")

#: Sweep points, shared with :mod:`repro.experiments.matrix` so the parallel
#: runner enumerates exactly the cells these ablations consume.
PACKINGS = ("greedy", "tree", "random")
VC_DATASETS = ("web", "mix")
VC_TABLES = ("exact", "bloom")
SPLIT_DATASET = "mix"
SPLIT_THRESHOLDS = (0, 2, 4, 16, 64)
RESTORE_CACHE_DATASET = "mix"
RESTORE_CACHE_APPROACHES = ("naive", "gccdf")
RESTORE_CACHE_SIZES = (4, 16, 64, None)


def packing_ablation(scale: str = "quick") -> str:
    """Tree vs greedy vs random packing on every dataset."""
    table = ResultTable(
        title=f"Ablation — packing strategy (scale={scale})",
        columns=[
            Column("dataset", align="<"),
            Column("packing", align="<"),
            Column("mean read amp", format=fmt_float(3)),
            Column("restore MiB/s", format=fmt_mib()),
        ],
    )
    for dataset_name in DATASETS:
        for packing in PACKINGS:
            result = run_protocol("gccdf", dataset_name, scale, packing=packing)
            table.add_row(
                dataset_name.upper(),
                packing,
                result.mean_read_amplification,
                result.restore_speed,
            )
    return table.render()


def vc_table_ablation(scale: str = "quick") -> str:
    """Exact vs Bloom VC table: reclaimed space and physical residue."""
    table = ResultTable(
        title=f"Ablation — VC table type (scale={scale})",
        columns=[
            Column("dataset", align="<"),
            Column("vc table", align="<"),
            Column("reclaimed bytes"),
            Column("final physical bytes"),
            Column("mean read amp", format=fmt_float(3)),
        ],
    )
    for dataset_name in VC_DATASETS:
        for vc_table in VC_TABLES:
            result = run_protocol("gccdf", dataset_name, scale, vc_table=vc_table)
            reclaimed = sum(r.reclaimed_bytes for r in result.gc_reports)
            table.add_row(
                dataset_name.upper(),
                vc_table,
                reclaimed,
                result.physical_bytes,
                result.mean_read_amplification,
            )
    return table.render()


def split_denial_ablation(scale: str = "quick") -> str:
    """Analyzer split-denial threshold sweep on MIX."""
    table = ResultTable(
        title=f"Ablation — Analyzer split-denial threshold, MIX (scale={scale})",
        columns=[
            Column("threshold"),
            Column("mean read amp", format=fmt_float(3)),
            Column("GC analyze ms", format=lambda s: f"{s * 1000:.1f}"),
        ],
    )
    for threshold in SPLIT_THRESHOLDS:
        result = run_protocol(
            "gccdf", SPLIT_DATASET, scale, split_denial_threshold=threshold
        )
        analyze = sum(r.analyze_seconds for r in result.gc_reports)
        table.add_row(threshold, result.mean_read_amplification, analyze)
    return table.render()


def restore_cache_ablation(scale: str = "quick") -> str:
    """Bounded restore caches: read-once model vs LRU pressure."""
    table = ResultTable(
        title=f"Ablation — restore cache size, MIX (scale={scale})",
        columns=[
            Column("approach", align="<"),
            Column("cache (containers)", align="<"),
            Column("mean read amp", format=fmt_float(3)),
        ],
    )
    for approach in RESTORE_CACHE_APPROACHES:
        for cache in RESTORE_CACHE_SIZES:
            result = run_protocol(
                approach,
                RESTORE_CACHE_DATASET,
                scale,
                restore_cache_containers=cache,
            )
            table.add_row(
                approach,
                "unbounded" if cache is None else str(cache),
                result.mean_read_amplification,
            )
    return table.render()


def run(scale: str = "quick") -> str:
    return "\n\n".join(
        [
            packing_ablation(scale),
            vc_table_ablation(scale),
            split_denial_ablation(scale),
            restore_cache_ablation(scale),
        ]
    )


def main() -> None:
    print(run("quick"))


if __name__ == "__main__":
    main()
