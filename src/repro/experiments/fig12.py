"""Fig. 12 — read amplification per retained backup (§6.3).

After the final GC round, every retained backup is restored and its read
amplification factor recorded.  The paper plots one curve per approach per
dataset (oldest retained backup on the left); this harness prints each
curve compressed to eight bucket means plus the overall mean.

Expected shape: GCCDF's curve is the lowest among dedup-preserving
approaches across all datasets; MFDedup sits at ≈1.0 because it holds no
shared chunks on these datasets ("free from fragmentation" by forfeiting
dedup); Naïve's curve is the highest and rises for more recent backups.
"""

from __future__ import annotations

from repro.experiments.common import run_protocol
from repro.metrics.series import bucket_means
from repro.metrics.table import Column, ResultTable, fmt_float

APPROACHES = ("naive", "capping", "har", "smr", "mfdedup", "gccdf")
DATASETS = ("wiki", "code", "mix", "syn")
NUM_BUCKETS = 8


def run(scale: str = "quick") -> str:
    blocks = []
    for dataset_name in DATASETS:
        table = ResultTable(
            title=(
                f"Fig. 12 — read amplification of retained backups, "
                f"{dataset_name.upper()} (scale={scale}; buckets oldest→newest)"
            ),
            columns=[Column("approach", align="<")]
            + [Column(f"b{i}", format=fmt_float(2)) for i in range(NUM_BUCKETS)]
            + [Column("mean", format=fmt_float(2))],
        )
        for approach in APPROACHES:
            result = run_protocol(approach, dataset_name, scale)
            amps = [r.read_amplification for r in result.restore_reports]
            buckets = bucket_means(amps, NUM_BUCKETS)
            buckets += [0.0] * (NUM_BUCKETS - len(buckets))
            table.add_row(approach, *buckets, result.mean_read_amplification)
        blocks.append(table.render())
    return "\n\n".join(blocks)


def main() -> None:
    print(run("quick"))


if __name__ == "__main__":
    main()
