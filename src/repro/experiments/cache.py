"""Persistent, content-addressed cache of completed protocol runs.

A full-scale protocol cell (one approach × dataset × configuration) costs
minutes of CPU; the quantities every figure reads off it are a few KiB of
report dataclasses.  This module persists those reports under a cache
directory so re-running figures, benchmarks, or the experiment matrix in a
fresh process costs milliseconds per cell.

Keys are content-addressed: a SHA-256 over a canonical JSON payload of
everything that determines a run's output — approach, dataset, scale
geometry, the *entire resolved* :class:`~repro.config.SystemConfig` (so any
GCCDF override, VC-table choice or restore-cache bound yields a distinct
key), the workload seed, and a cache-format version.  Bumping
``CACHE_FORMAT_VERSION`` invalidates every stored run at once (used when
report schemas or protocol semantics change).

Layout on disk: ``<root>/<key[:2]>/<key>.json``, written atomically
(temp file + ``os.replace``) so concurrent writers at worst duplicate
work, never corrupt entries.  The root defaults to ``.repro-cache/`` in
the current directory and is overridable with ``REPRO_CACHE_DIR``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import tempfile

from repro.backup.driver import RotationResult
from repro.config import SystemConfig
from repro.workloads.datasets import DEFAULT_SEED

#: Bump to invalidate every persisted run (schema or semantics change).
#: v2: RotationResult carries a ``metrics`` payload (repro.obs), so v1
#: entries — which would hydrate with empty metrics — are invalidated.
#: v3: metrics gained ``runtime.*`` counters (index probes, Bloom-guard
#: skip rate); v2 entries would hydrate without them.
CACHE_FORMAT_VERSION = 3

#: Environment variable overriding the cache root directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Default cache root, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


def config_payload(config: SystemConfig) -> dict:
    """The full config contents as plain data (nested dataclasses → dicts)."""
    return dataclasses.asdict(config)


def run_cache_key(
    approach: str,
    dataset: str,
    scale_name: str,
    config: SystemConfig,
    workload_scale: float,
    num_backups: int,
    workload_seed: int = DEFAULT_SEED,
) -> str:
    """Stable content hash identifying one protocol run.

    The payload covers every input of :func:`repro.experiments.run_protocol`
    *after* resolution: the resolved ``SystemConfig`` already reflects
    ``gccdf_overrides``, ``vc_table`` and ``restore_cache_containers``, so
    distinct overrides hash to distinct keys without enumerating them.
    """
    payload = {
        "format": CACHE_FORMAT_VERSION,
        "approach": approach,
        "dataset": dataset,
        "scale": scale_name,
        "workload_scale": workload_scale,
        "num_backups": num_backups,
        "workload_seed": workload_seed,
        "config": config_payload(config),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def default_cache_dir() -> pathlib.Path:
    """Resolve the cache root: ``$REPRO_CACHE_DIR`` or ``.repro-cache/``."""
    return pathlib.Path(os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR)


class RunCache:
    """On-disk store of :class:`RotationResult`s keyed by content hash."""

    def __init__(self, root: str | os.PathLike | None = None):
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> RotationResult | None:
        """Return the cached run, or None on a miss (or unreadable entry)."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
            if entry.get("format") != CACHE_FORMAT_VERSION:
                raise ValueError(f"cache format {entry.get('format')!r}")
            result = RotationResult.from_dict(entry["result"])
        except (OSError, ValueError, KeyError, TypeError):
            # Missing, truncated, or stale-format entries all count as
            # misses; the matrix reruns the cell and overwrites the entry.
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, key: str, result: RotationResult) -> pathlib.Path:
        """Persist one run atomically; returns the entry's path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "format": CACHE_FORMAT_VERSION,
            "key": key,
            "result": result.to_dict(),
        }
        payload = json.dumps(entry, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*/*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
