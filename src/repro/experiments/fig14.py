"""Fig. 14 — GC time-cost breakdown (§6.4).

Per approach and dataset: total seconds spent in the mark, analyze,
sweep-read and sweep-write stages, summed over all GC rounds.  All four
stages are in simulated seconds — the analyze stage converts the
Analyzer/Planner operation count through a modelled per-op cost so it is
comparable with the I/O stages (the raw Python wall time is reported in the
extra ``cpu`` column for transparency).  Analyze is zero for every approach
but GCCDF, which has no such stage.

Expected shape: mark is approach-independent; GCCDF's analyze stage is a
small fraction of its total; GCCDF's sweep-read/sweep-write shrink from the
second round on because it reclaims and produces fewer containers
(Fig. 13), typically making its total GC time competitive with or better
than Naïve's despite the added analysis.
"""

from __future__ import annotations

from repro.experiments.common import run_protocol
from repro.metrics.table import Column, ResultTable

APPROACHES = ("naive", "capping", "har", "smr", "mfdedup", "gccdf")
DATASETS = ("wiki", "code", "mix", "syn")


def _ms(seconds: float) -> str:
    return f"{seconds * 1000:.1f}"


def run(scale: str = "quick") -> str:
    blocks = []
    for dataset_name in DATASETS:
        table = ResultTable(
            title=(
                f"Fig. 14 — GC time breakdown (ms, summed over rounds), "
                f"{dataset_name.upper()} (scale={scale})"
            ),
            columns=[
                Column("approach", align="<"),
                Column("mark", format=_ms),
                Column("analyze", format=_ms),
                Column("sweep-read", format=_ms),
                Column("sweep-write", format=_ms),
                Column("total", format=_ms),
                Column("(cpu)", format=_ms),
            ],
        )
        for approach in APPROACHES:
            result = run_protocol(approach, dataset_name, scale)
            mark = sum(r.mark_seconds for r in result.gc_reports)
            analyze = sum(r.analyze_seconds for r in result.gc_reports)
            sweep_read = sum(r.sweep_read_seconds for r in result.gc_reports)
            sweep_write = sum(r.sweep_write_seconds for r in result.gc_reports)
            cpu = sum(r.analyze_cpu_seconds for r in result.gc_reports)
            table.add_row(
                approach,
                mark,
                analyze,
                sweep_read,
                sweep_write,
                mark + analyze + sweep_read + sweep_write,
                cpu,
            )
        blocks.append(table.render())
    return "\n\n".join(blocks)


def main() -> None:
    print(run("quick"))


if __name__ == "__main__":
    main()
