"""Shared experiment infrastructure: scales, protocol runs, and a run cache.

Three scales trade fidelity for runtime.  Backup counts shrink
proportionally with the retention window so every scale performs the same
*number of GC rounds* as the paper's protocol would:

* ``quick``  — retention 20/5, ~0.15× working sets; seconds.  Used by tests.
* ``medium`` — retention 50/10, 0.5× working sets; tens of seconds.
* ``full``   — the paper's retention 100/20 at 1.0× working sets; minutes.
  Used by the benchmark suite that regenerates the figures.

Figures 11–14 read different projections of the *same* six-approach ×
four-dataset protocol runs, so completed runs are memoised per process.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.backup.approaches import make_service
from repro.backup.options import ServiceOptions
from repro.backup.driver import RotationDriver, RotationResult
from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.workloads.datasets import dataset as make_dataset

#: Paper backup counts per dataset (Table 1 / §3.1).
PAPER_BACKUP_COUNTS = {"wiki": 120, "code": 220, "mix": 200, "syn": 240, "web": 100}


@dataclass(frozen=True)
class ExperimentScale:
    """One fidelity level for running the protocol."""

    name: str
    retained: int
    turnover: int
    workload_scale: float

    def num_backups(self, dataset_name: str) -> int:
        """Backup count preserving the paper's GC-round structure."""
        paper_count = PAPER_BACKUP_COUNTS[dataset_name]
        return max(
            self.retained + self.turnover,
            round(paper_count * self.retained / 100),
        )

    def config(
        self,
        vc_table: str | None = None,
        restore_cache_containers: int | None = None,
        **gccdf_overrides,
    ) -> SystemConfig:
        config = SystemConfig.scaled(retained=self.retained, turnover=self.turnover)
        if gccdf_overrides:
            config = config.with_gccdf(**gccdf_overrides)
        if vc_table is not None or restore_cache_containers is not None:
            config = replace(
                config,
                vc_table=vc_table if vc_table is not None else config.vc_table,
                restore_cache_containers=(
                    restore_cache_containers
                    if restore_cache_containers is not None
                    else config.restore_cache_containers
                ),
            )
            config.validate()
        return config


SCALES = {
    "quick": ExperimentScale("quick", retained=20, turnover=5, workload_scale=0.15),
    "medium": ExperimentScale("medium", retained=50, turnover=10, workload_scale=0.5),
    "full": ExperimentScale("full", retained=100, turnover=20, workload_scale=1.0),
}


def get_scale(name: str | ExperimentScale) -> ExperimentScale:
    if isinstance(name, ExperimentScale):
        return name
    try:
        return SCALES[name]
    except KeyError:
        raise ConfigError(f"unknown scale {name!r}; choose from {sorted(SCALES)}") from None


_RUN_CACHE: dict[tuple, RotationResult] = {}

#: Protocol executions (actual driver runs) in this process; the matrix CLI
#: prints it so a warm-cache rerun can prove it re-ran nothing.
_PROTOCOL_RUNS = 0


def protocol_runs() -> int:
    """Number of protocol cells actually executed (not served from any
    cache) by this process since import."""
    return _PROTOCOL_RUNS


def memo_key(
    approach: str,
    dataset_name: str,
    scale_name: str,
    vc_table: str | None = None,
    restore_cache_containers: int | None = None,
    gccdf_overrides: tuple[tuple[str, object], ...] = (),
) -> tuple:
    """The in-process memo key for one protocol cell.

    Shared with the matrix runner (:mod:`repro.experiments.matrix`), which
    hydrates ``_RUN_CACHE`` under exactly these keys so the figure renderers
    hit the memo instead of re-running protocols.
    """
    return (
        approach,
        dataset_name,
        scale_name,
        vc_table,
        restore_cache_containers,
        tuple(sorted(gccdf_overrides)),
    )


def memoized(key: tuple) -> RotationResult | None:
    """Look up a completed run in the per-process memo."""
    return _RUN_CACHE.get(key)


def hydrate(key: tuple, result: RotationResult) -> None:
    """Install an externally produced run (worker process / disk cache)
    into the per-process memo."""
    _RUN_CACHE[key] = result


def run_protocol(
    approach: str,
    dataset_name: str,
    scale: str | ExperimentScale = "quick",
    use_cache: bool = True,
    vc_table: str | None = None,
    restore_cache_containers: int | None = None,
    tracer=None,
    **gccdf_overrides,
) -> RotationResult:
    """Run the §6.1 protocol for one (approach, dataset) pair.

    Results are memoised per process (figures 11–14 share runs); extra
    overrides (GCCDF knobs, ``vc_table``, ``restore_cache_containers``)
    force a fresh run cached under its own key.

    ``tracer`` attaches a :class:`~repro.obs.tracer.Tracer` to the run's
    simulated disk.  A traced call always executes the protocol (a memoised
    result has no events to replay), but still memoises its result, since
    tracing never changes it.
    """
    scale = get_scale(scale)
    key = memo_key(
        approach,
        dataset_name,
        scale.name,
        vc_table,
        restore_cache_containers,
        tuple(gccdf_overrides.items()),
    )
    if use_cache and tracer is None and key in _RUN_CACHE:
        return _RUN_CACHE[key]
    global _PROTOCOL_RUNS
    _PROTOCOL_RUNS += 1
    config = scale.config(
        vc_table=vc_table,
        restore_cache_containers=restore_cache_containers,
        **gccdf_overrides,
    )
    service = make_service(approach, config, ServiceOptions(tracer=tracer))
    driver = RotationDriver(service, config.retention, dataset_name=dataset_name)
    backups = make_dataset(
        dataset_name,
        scale=scale.workload_scale,
        num_backups=scale.num_backups(dataset_name),
    )
    result = driver.run(backups)
    if use_cache:
        _RUN_CACHE[key] = result
    return result


def clear_cache() -> None:
    """Drop memoised protocol runs (tests use this for isolation)."""
    _RUN_CACHE.clear()
