"""Fig. 13 — container distribution during GC (§6.4).

Per GC round and approach: *involved* containers (GS list — may hold
invalid chunks), *reclaimed* containers (confirmed and deleted), and
*produced* containers (receivers of migrated valid chunks).  These measure
the I/O scale of data migration, the dominant GC cost.

Expected shape: rewriting approaches involve/reclaim *more* containers than
Naïve (their duplicate copies become garbage); GCCDF needs *fewer* of all
three kinds from the second round on — aggregated chunk lifetimes mean
whole containers die together — with produced containers dropping toward a
third of Naïve's.  MFDedup rows express deleted volume bytes in container
units and never produce containers.
"""

from __future__ import annotations

from repro.experiments.common import run_protocol
from repro.metrics.table import Column, ResultTable

APPROACHES = ("naive", "capping", "har", "smr", "mfdedup", "gccdf")
DATASETS = ("wiki", "code", "mix", "syn")


def run(scale: str = "quick") -> str:
    blocks = []
    for dataset_name in DATASETS:
        table = ResultTable(
            title=(
                f"Fig. 13 — containers involved/reclaimed/produced per GC round, "
                f"{dataset_name.upper()} (scale={scale})"
            ),
            columns=[
                Column("approach", align="<"),
                Column("round"),
                Column("involved"),
                Column("reclaimed"),
                Column("produced"),
            ],
        )
        for approach in APPROACHES:
            result = run_protocol(approach, dataset_name, scale)
            for report in result.gc_reports:
                table.add_row(
                    approach,
                    report.round_index,
                    report.involved_containers,
                    report.reclaimed_containers,
                    report.produced_containers,
                )
        blocks.append(table.render())
    return "\n\n".join(blocks)


def main() -> None:
    print(run("quick"))


if __name__ == "__main__":
    main()
