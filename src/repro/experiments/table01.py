"""Table 1 — dataset inventory.

Regenerates the paper's dataset table for this reproduction's scaled
workloads: backup count, sources, total logical (pre-dedup) size, and the
per-backup size — the analogue of the paper's "Original Size" column.
"""

from __future__ import annotations

from repro.experiments.common import PAPER_BACKUP_COUNTS, get_scale
from repro.metrics.table import Column, ResultTable
from repro.util.units import format_bytes
from repro.workloads.datasets import dataset as make_dataset

DESCRIPTIONS = {
    "wiki": "snapshots of four language Wikipedias, round-robin",
    "code": "versions of Chromium/LLVM/Linux trees, round-robin",
    "mix": "news website + Redis dump snapshots, alternating",
    "syn": "synthetic create/delete/modify volumes, four sources",
}


def run(scale: str = "quick") -> str:
    """Materialise each dataset once and report its inventory."""
    spec = get_scale(scale)
    table = ResultTable(
        title=f"Table 1 — evaluated datasets (scale={spec.name})",
        columns=[
            Column("dataset", align="<"),
            Column("backups"),
            Column("sources"),
            Column("original size"),
            Column("avg backup"),
            Column("chunks"),
            Column("description", align="<"),
        ],
    )
    for name in ("wiki", "code", "mix", "syn"):
        ds = make_dataset(
            name,
            scale=spec.workload_scale,
            num_backups=spec.num_backups(name),
        )
        total_bytes = 0
        total_chunks = 0
        count = 0
        for backup in ds:
            total_bytes += backup.logical_bytes
            total_chunks += len(backup.chunks)
            count += 1
        table.add_row(
            name.upper(),
            count,
            len(ds.source_specs),
            format_bytes(total_bytes),
            format_bytes(total_bytes // count),
            total_chunks,
            DESCRIPTIONS[name],
        )
    return table.render()


def main() -> None:
    print(run("quick"))


if __name__ == "__main__":
    main()
