"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments.run --figure fig11 --scale full
    python -m repro.experiments.run --all --scale quick
    repro-experiments --figure table01          # console script

Figures sharing protocol runs (11–14) reuse each other's results within one
invocation, so ``--all`` costs barely more than the slowest single figure.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import common  # noqa: F401  (re-exported scales)
from repro.experiments import (
    ablations,
    fig02,
    fig03,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    table01,
)

EXPERIMENTS = {
    "table01": table01.run,
    "fig02": fig02.run,
    "fig03": fig03.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "fig14": fig14.run,
    "fig15": fig15.run,
    "ablations": ablations.run,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the GCCDF paper's tables and figures.",
    )
    parser.add_argument(
        "--figure",
        choices=sorted(EXPERIMENTS),
        action="append",
        help="experiment id (repeatable); see DESIGN.md's experiment index",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    parser.add_argument(
        "--scale",
        choices=sorted(common.SCALES),
        default="quick",
        help="fidelity level (quick=seconds, full=the paper's protocol)",
    )
    args = parser.parse_args(argv)

    selected = sorted(EXPERIMENTS) if args.all else (args.figure or [])
    if not selected:
        parser.error("pass --figure <id> (repeatable) or --all")

    for name in selected:
        started = time.perf_counter()
        print(EXPERIMENTS[name](args.scale))
        elapsed = time.perf_counter() - started
        print(f"[{name} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
