"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments.run --figure fig11 --scale full
    python -m repro.experiments.run --all --scale quick --jobs 4
    repro-experiments --list                    # experiment index
    repro-experiments --figure table01          # console script

Protocol cells are scheduled by :mod:`repro.experiments.matrix`: the cells
the selected figures need are enumerated up front, deduplicated (figures
11–14 share runs), served from the persistent run cache under
``.repro-cache/`` (``REPRO_CACHE_DIR`` overrides; ``--no-cache`` bypasses),
and the misses fan out over ``--jobs`` worker processes.  Rendering then
reads the hydrated in-process memo, so ``--all`` costs barely more than the
slowest cell — and a warm-cache rerun costs no protocol runs at all.

Tables go to stdout; progress lines, the matrix summary and cache-hit
counters go to stderr, so redirected stdout is byte-stable across ``--jobs``
values and cache states.  Per-cell and total wall-times are written to
``benchmarks/results/BENCH_matrix.json`` (``--bench-json`` overrides the
path).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.errors import ConfigError
from repro.experiments import common, matrix
from repro.experiments import (
    ablations,
    fig02,
    fig03,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    table01,
)

_MODULES = {
    "table01": table01,
    "fig02": fig02,
    "fig03": fig03,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "ablations": ablations,
}

EXPERIMENTS = {name: module.run for name, module in _MODULES.items()}


def describe(name: str) -> str:
    """One-line description of an experiment: its module docstring's head."""
    doc = _MODULES[name].__doc__ or ""
    first = doc.strip().splitlines()[0] if doc.strip() else ""
    return first.rstrip(".")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the GCCDF paper's tables and figures.",
    )
    parser.add_argument(
        "--figure",
        choices=sorted(EXPERIMENTS),
        action="append",
        help="experiment id (repeatable); see --list or DESIGN.md's index",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print experiment ids with one-line descriptions and exit",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(common.SCALES),
        default="quick",
        help="fidelity level (quick=seconds, full=the paper's protocol)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for protocol cells (default: CPU count)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the persistent run cache (neither read nor write it)",
    )
    parser.add_argument(
        "--bench-json",
        default=matrix.DEFAULT_BENCH_PATH,
        metavar="PATH",
        help="where to write per-cell wall-times (default: %(default)s)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a merged JSONL trace of every cell's event stream "
        "(forces all cells to execute; see docs/observability.md)",
    )
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")

    if args.list:
        width = max(len(name) for name in EXPERIMENTS)
        for name in sorted(EXPERIMENTS):
            print(f"{name:<{width}}  {describe(name)}")
        return 0

    selected = sorted(EXPERIMENTS) if args.all else (args.figure or [])
    if not selected:
        parser.error("pass --figure <id> (repeatable), --all, or --list")

    def progress(line: str) -> None:
        print(line, file=sys.stderr, flush=True)

    try:
        summary = matrix.run_matrix(
            selected,
            scale=args.scale,
            jobs=args.jobs,
            use_cache=not args.no_cache,
            progress=progress,
            trace_path=args.trace,
        )
    except ConfigError as exc:
        parser.error(str(exc))
    summary.write_json(args.bench_json)

    runs_after_matrix = common.protocol_runs()
    for name in selected:
        started = time.perf_counter()
        print(EXPERIMENTS[name](args.scale))
        elapsed = time.perf_counter() - started
        print(f"[{name} completed in {elapsed:.1f}s]\n")

    progress(
        "protocol re-runs while rendering (0 means the matrix covered "
        f"every cell): {common.protocol_runs() - runs_after_matrix}"
    )
    progress(f"wall-times written to {args.bench_json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
