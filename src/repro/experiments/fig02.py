"""Fig. 2 — motivation: the limitations of existing approaches (§3.1).

Four approaches (Non-dedup, Naïve, HAR, MFDedup) on the WEB and MIX
datasets; two panels: (a) actual deduplication ratio, (b) restoration
performance.  Expected shape (paper §3.1):

* Naïve — high dedup ratio, poor restore speed;
* HAR — restore gain over Naïve at a visible dedup-ratio cost;
* MFDedup — good on WEB (single source), collapses to ≈ no-dedup on MIX;
* Non-dedup — ratio 1.0, fast restore.
"""

from __future__ import annotations

from repro.experiments.common import run_protocol
from repro.metrics.table import Column, ResultTable, fmt_float, fmt_mib

APPROACHES = ("nondedup", "naive", "har", "mfdedup")
DATASETS = ("web", "mix")


def run(scale: str = "quick") -> str:
    table = ResultTable(
        title=f"Fig. 2 — motivation on WEB and MIX (scale={scale})",
        columns=[
            Column("dataset", align="<"),
            Column("approach", align="<"),
            Column("dedup ratio", format=fmt_float(2)),
            Column("restore MiB/s", format=fmt_mib()),
            Column("mean read amp", format=fmt_float(2)),
        ],
    )
    for dataset_name in DATASETS:
        for approach in APPROACHES:
            result = run_protocol(approach, dataset_name, scale)
            table.add_row(
                dataset_name.upper(),
                approach,
                result.dedup_ratio,
                result.restore_speed,
                result.mean_read_amplification,
            )
    return table.render()


def main() -> None:
    print(run("quick"))


if __name__ == "__main__":
    main()
