"""Experiment harness: one module per table/figure of the paper.

=========  ==========================================================
module     reproduces
=========  ==========================================================
table01    Table 1 — dataset inventory
fig02      Fig. 2 — motivation: dedup ratio & restore speed (§3.1)
fig03      Fig. 3 — MFDedup migration overhead (§3.1)
fig11      Fig. 11 — overall dedup ratio vs restore performance
fig12      Fig. 12 — read amplification per retained backup
fig13      Fig. 13 — container distribution during GC
fig14      Fig. 14 — GC time-cost breakdown
fig15      Fig. 15 — sensitivity: segment size & packing strategy
=========  ==========================================================

Each module exposes ``run(scale) -> str`` returning the rendered tables;
``python -m repro.experiments.run --figure fig11 --scale full`` drives them
from the command line, and the ``benchmarks/`` suite wraps the same calls.
"""

from repro.experiments.common import (
    SCALES,
    ExperimentScale,
    clear_cache,
    get_scale,
    protocol_runs,
    run_protocol,
)
from repro.experiments.cache import RunCache, run_cache_key
from repro.experiments.matrix import Cell, MatrixSummary, cells_for, run_matrix

__all__ = [
    "SCALES",
    "Cell",
    "ExperimentScale",
    "MatrixSummary",
    "RunCache",
    "cells_for",
    "clear_cache",
    "get_scale",
    "protocol_runs",
    "run_cache_key",
    "run_matrix",
    "run_protocol",
]
