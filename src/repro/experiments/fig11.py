"""Fig. 11 — overall performance: dedup ratio vs restoration speed (§6.2).

Six approaches × four datasets.  The paper's scatter plot puts dedup ratio
on one axis and restore speed on the other ("up and to the right is
better"); the table below prints both plus the speedup over Naïve.

Expected shape: GCCDF matches Naïve's dedup ratio exactly while restoring
fastest among dedup-preserving approaches; rewriting (Capping/HAR/SMR)
trades ratio for modest speed; MFDedup degrades to ≈ no-dedup on these
multi-source datasets.
"""

from __future__ import annotations

from repro.experiments.common import run_protocol
from repro.metrics.table import Column, ResultTable, fmt_float, fmt_mib

APPROACHES = ("nondedup", "naive", "capping", "har", "smr", "mfdedup", "gccdf")
DATASETS = ("wiki", "code", "mix", "syn")


def run(scale: str = "quick") -> str:
    table = ResultTable(
        title=f"Fig. 11 — overall dedup ratio vs restore speed (scale={scale})",
        columns=[
            Column("dataset", align="<"),
            Column("approach", align="<"),
            Column("dedup ratio", format=fmt_float(2)),
            Column("restore MiB/s", format=fmt_mib()),
            Column("speedup vs naive", format=fmt_float(2)),
        ],
    )
    for dataset_name in DATASETS:
        naive_speed = run_protocol("naive", dataset_name, scale).restore_speed
        for approach in APPROACHES:
            result = run_protocol(approach, dataset_name, scale)
            table.add_row(
                dataset_name.upper(),
                approach,
                result.dedup_ratio,
                result.restore_speed,
                result.restore_speed / naive_speed if naive_speed else 0.0,
            )
    return table.render()


def main() -> None:
    print(run("quick"))


if __name__ == "__main__":
    main()
