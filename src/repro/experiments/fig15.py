"""Fig. 15 — sensitivity analysis of GCCDF's designs (§6.5).

On the MIX dataset:

* panel (a): mean read amplification for segment sizes {10, 25, 50, 100,
  200} containers under the proposed packing, plus the random-packing
  ablation at the default segment size;
* panel (b): GCCDF's GC time (analyze + sweep) per round for each segment
  size;
* panels (c)/(d)/(e): involved / reclaimed / produced containers per GC
  round for each segment size.

Expected shape: very small segments hinder defragmentation (clusters get
chopped at segment boundaries → higher read amplification and more GC work
in later rounds); random packing costs ≈20 % extra read amplification while
barely moving the GC-side numbers.
"""

from __future__ import annotations

from repro.experiments.common import run_protocol
from repro.metrics.table import Column, ResultTable, fmt_float

DATASET = "mix"
SEGMENT_SIZES = (10, 25, 50, 100, 200)


def _variants(scale: str):
    """(label, result) pairs for every sensitivity configuration."""
    for segment_size in SEGMENT_SIZES:
        result = run_protocol(
            "gccdf", DATASET, scale, segment_size=segment_size
        )
        yield f"seg={segment_size}", result
    result = run_protocol("gccdf", DATASET, scale, packing="random")
    yield "random packing", result


def run(scale: str = "quick") -> str:
    variants = list(_variants(scale))

    amp_table = ResultTable(
        title=f"Fig. 15(a) — read amplification vs segment size / packing, MIX (scale={scale})",
        columns=[
            Column("configuration", align="<"),
            Column("mean read amp", format=fmt_float(3)),
        ],
    )
    for label, result in variants:
        amp_table.add_row(label, result.mean_read_amplification)

    time_table = ResultTable(
        title="Fig. 15(b) — GCCDF time per GC round (ms: analyze + sweep)",
        columns=[Column("configuration", align="<"), Column("per-round ms", align="<")],
    )
    for label, result in variants:
        per_round = [
            f"{(r.analyze_seconds + r.sweep_read_seconds + r.sweep_write_seconds) * 1000:.1f}"
            for r in result.gc_reports
        ]
        time_table.add_row(label, " ".join(per_round))

    container_tables = []
    for panel, field in (("c", "involved_containers"), ("d", "reclaimed_containers"), ("e", "produced_containers")):
        table = ResultTable(
            title=f"Fig. 15({panel}) — {field.replace('_', ' ')} per GC round",
            columns=[Column("configuration", align="<"), Column("per-round", align="<")],
        )
        for label, result in variants:
            table.add_row(
                label,
                " ".join(str(getattr(r, field)) for r in result.gc_reports),
            )
        container_tables.append(table.render())

    return "\n\n".join([amp_table.render(), time_table.render(), *container_tables])


def main() -> None:
    print(run("quick"))


if __name__ == "__main__":
    main()
