"""Shared process-pool fan-out for independent, picklable tasks.

Both parallel schedulers in this repository — the experiment matrix
(:mod:`repro.experiments.matrix`) and the fleet shard runner
(:mod:`repro.fleet.runner`) — have the same shape: a set of independent
tasks, a module-level worker function that executes one task in a child
process, and a ``finish`` callback that folds each completed result into
caller-side state.  :func:`run_tasks` is that shape, factored out once.

Determinism contract: ``finish`` may be called in any order (workers
complete when they complete), so callers that promise byte-identical
output across ``--jobs`` values must collect results keyed by task and
merge them in task-enumeration order *after* the pool drains — exactly
what the matrix's trace merge and the fleet's shard merge do.  With
``jobs=1`` the worker runs in-process, in task order, through the very
same ``finish`` path, so serial and pooled runs exercise identical
result plumbing (including ``to_dict``/``from_dict`` round-trips).
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Hashable, Sequence, TypeVar

K = TypeVar("K", bound=Hashable)
P = TypeVar("P")
R = TypeVar("R")


def run_tasks(
    tasks: Sequence[tuple[K, P]],
    worker: Callable[[P], R],
    jobs: int,
    finish: Callable[[K, R, int], None],
) -> None:
    """Execute every ``(key, payload)`` task and hand results to ``finish``.

    ``worker`` must be a module-level (picklable) function taking one
    payload; ``finish(key, result, done)`` receives the task's key, the
    worker's return value, and a 1-based completion counter.  ``jobs=1``
    (or a single task) runs everything in-process in task order; otherwise
    payloads fan out over a :class:`~concurrent.futures.ProcessPoolExecutor`
    and ``finish`` runs in completion order on the calling process.
    """
    if jobs == 1 or len(tasks) <= 1:
        for done, (key, payload) in enumerate(tasks, start=1):
            finish(key, worker(payload), done)
        return
    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        futures = {pool.submit(worker, payload): key for key, payload in tasks}
        done = 0
        remaining = set(futures)
        while remaining:
            completed, remaining = wait(remaining, return_when=FIRST_COMPLETED)
            for future in completed:
                done += 1
                finish(futures[future], future.result(), done)
