"""Fingerprinting and probabilistic membership structures."""

from repro.hashing.fingerprints import (
    FINGERPRINT_SIZE,
    fingerprint,
    fingerprint_hex,
    short_fp,
    synthetic_fingerprint,
)
from repro.hashing.bloom import BloomFilter

__all__ = [
    "FINGERPRINT_SIZE",
    "fingerprint",
    "fingerprint_hex",
    "short_fp",
    "synthetic_fingerprint",
    "BloomFilter",
]
