"""A classic Bloom filter over byte-string keys.

Used in two places, both from the paper:

* the mark stage's *VC table* variant (§2.4 notes the VC table may be "Bloom
  filter or bitvector");
* the Analyzer's per-recipe reference filters (§5.3 optimization ①), which
  turn "is chunk c referenced by backup b?" into an O(k) probe instead of a
  recipe scan.

The implementation uses the standard Kirsch–Mitzenmacher double-hashing
construction: two 64-bit halves of a BLAKE2b digest generate all ``k`` probe
positions.  Determinism matters here (tests, reproducible experiments), so no
randomised salts are involved unless the caller passes one.
"""

from __future__ import annotations

import hashlib
import math
from functools import partial
from typing import Iterable

from repro.errors import ConfigError


class BloomFilter:
    """Fixed-capacity Bloom filter with a target false-positive rate.

    Parameters
    ----------
    capacity:
        Expected number of distinct keys.  Inserting more than this degrades
        the false-positive rate but never causes false negatives.
    fp_rate:
        Target false-positive probability at ``capacity`` insertions.
    salt:
        Optional domain-separation salt mixed into the hash, so that several
        filters over the same keys (e.g. one per backup recipe) do not share
        collision patterns.  Salts longer than BLAKE2b's 16-byte limit are
        pre-hashed down to 16 bytes (not truncated), so arbitrarily long
        salts still separate; salts of at most 16 bytes are used as-is,
        keeping historical probe sequences bit-identical.
    """

    __slots__ = (
        "capacity",
        "fp_rate",
        "num_bits",
        "num_hashes",
        "_bits",
        "_salt",
        "_hasher",
        "count",
    )

    def __init__(self, capacity: int, fp_rate: float = 0.01, salt: bytes = b""):
        if capacity <= 0:
            raise ConfigError("bloom capacity must be positive")
        if not (0.0 < fp_rate < 1.0):
            raise ConfigError("bloom fp_rate must be in (0, 1)")
        self.capacity = capacity
        self.fp_rate = fp_rate
        num_bits = max(8, int(-capacity * math.log(fp_rate) / (math.log(2) ** 2)))
        self.num_bits = num_bits
        self.num_hashes = max(1, round(num_bits / capacity * math.log(2)))
        self._bits = bytearray((num_bits + 7) // 8)
        self._salt = salt
        # Pre-bound digest constructor: probing is a hot path (the mark
        # stage's per-key index guard, the Analyzer's reference filters),
        # so keyword-argument setup is paid once here, not per key.
        # BLAKE2b accepts at most 16 salt bytes; longer salts are folded
        # through a 16-byte digest so distinct salts keep distinct probe
        # sequences (truncation would alias salts sharing a 16-byte
        # prefix).  Salts of <= 16 bytes pass through unchanged, keeping
        # every existing filter bit-identical.
        if len(salt) > 16:
            effective_salt = hashlib.blake2b(salt, digest_size=16).digest()
        else:
            effective_salt = salt
        self._hasher = partial(hashlib.blake2b, digest_size=16, salt=effective_salt)
        self.count = 0

    def _probes(self, key: bytes) -> Iterable[int]:
        digest = self._hasher(key).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:], "big") | 1
        bits = self.num_bits
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % bits

    def add(self, key: bytes) -> None:
        """Insert ``key``."""
        digest = self._hasher(key).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:], "big") | 1
        bits = self.num_bits
        bit_bytes = self._bits
        for i in range(self.num_hashes):
            position = (h1 + i * h2) % bits
            bit_bytes[position >> 3] |= 1 << (position & 7)
        self.count += 1

    def update(self, keys: Iterable[bytes]) -> None:
        """Insert every key in ``keys``."""
        hasher = self._hasher
        bits = self.num_bits
        num_hashes = self.num_hashes
        bit_bytes = self._bits
        inserted = 0
        for key in keys:
            digest = hasher(key).digest()
            h1 = int.from_bytes(digest[:8], "big")
            h2 = int.from_bytes(digest[8:], "big") | 1
            for i in range(num_hashes):
                position = (h1 + i * h2) % bits
                bit_bytes[position >> 3] |= 1 << (position & 7)
            inserted += 1
        self.count += inserted

    def __contains__(self, key: bytes) -> bool:
        digest = self._hasher(key).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:], "big") | 1
        bits = self.num_bits
        bit_bytes = self._bits
        for i in range(self.num_hashes):
            position = (h1 + i * h2) % bits
            if not bit_bytes[position >> 3] & (1 << (position & 7)):
                return False
        return True

    def __len__(self) -> int:
        return self.count

    @property
    def size_bytes(self) -> int:
        """Memory footprint of the bit array."""
        return len(self._bits)

    def fill_ratio(self) -> float:
        """Fraction of bits set — a health indicator for over-full filters."""
        set_bits = sum(bin(byte).count("1") for byte in self._bits)
        return set_bits / self.num_bits

    def expected_fp_rate(self) -> float:
        """Current false-positive probability estimate from the fill ratio."""
        return self.fill_ratio() ** self.num_hashes
