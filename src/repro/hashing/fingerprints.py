"""Chunk fingerprinting.

The paper fingerprints chunks with SHA-1 (§6.1).  Fingerprints are plain
20-byte :class:`bytes` values throughout the library — a deliberate choice:
they are hashable, compact, compare in C, and sidestep wrapper-object
overhead on the hot ingest path.

Two producers exist:

* :func:`fingerprint` — SHA-1 over real chunk bytes (byte-level pipeline).
* :func:`synthetic_fingerprint` — SHA-1 over a logical chunk identity, used
  by the workload generators that emit chunk-reference streams without
  materialising content (DESIGN.md §4, "two ingestion granularities").

Both produce values from the same 20-byte space, so every layer below
chunking treats them identically.
"""

from __future__ import annotations

import hashlib

#: SHA-1 digest size in bytes.
FINGERPRINT_SIZE = 20


def fingerprint(data: bytes) -> bytes:
    """SHA-1 fingerprint of real chunk content."""
    return hashlib.sha1(data).digest()


def fingerprint_hex(fp: bytes) -> str:
    """Full hex rendering of a fingerprint."""
    return fp.hex()


def short_fp(fp: bytes) -> str:
    """Abbreviated hex rendering for logs and reprs (first 5 bytes)."""
    return fp[:5].hex()


def synthetic_fingerprint(namespace: str, identity: int, version: int = 0) -> bytes:
    """Fingerprint of a *logical* chunk.

    Workload models identify a chunk by ``(namespace, identity, version)``;
    two logical chunks are duplicates exactly when those triples match, which
    is how the generators control the dedup structure of a dataset.  The
    mapping into the 20-byte space is collision-resistant (SHA-1 of the
    triple), so synthetic streams interoperate with every real component
    (index, Bloom filters, VC table).
    """
    payload = f"{namespace}\x00{identity}\x00{version}".encode("utf-8")
    return hashlib.sha1(payload).digest()
