"""Central configuration objects for the backup system.

:class:`SystemConfig` collects every tunable the paper mentions — chunk-size
bounds, container size, GCCDF segment size, retention policy — plus the knobs
this reproduction adds (scaled geometry, VC-table type, restore-cache size).

Two geometry presets are provided:

* ``SystemConfig.paper()`` — the paper's exact geometry (4 MiB containers,
  1 KiB/4 KiB/32 KiB FastCDC bounds, 100-container segments).
* ``SystemConfig.scaled()`` — a scaled-down geometry (128 KiB containers,
  256 B/1 KiB/4 KiB chunks, so ~128 chunks per container vs the paper's
  ~1024) that keeps packing and fragmentation effects visible while letting
  hundreds of backups run in minutes.  All experiments use this preset.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.util.units import KIB, MIB


@dataclass(frozen=True)
class ChunkingConfig:
    """Bounds for FastCDC content-defined chunking (paper §6.1)."""

    min_size: int = 1 * KIB
    avg_size: int = 4 * KIB
    max_size: int = 32 * KIB
    #: Seed for the gear table; fixed so fingerprint streams are reproducible.
    gear_seed: int = 0x9E3779B9

    def validate(self) -> None:
        if not (0 < self.min_size <= self.avg_size <= self.max_size):
            raise ConfigError(
                "chunk sizes must satisfy 0 < min <= avg <= max, got "
                f"{self.min_size}/{self.avg_size}/{self.max_size}"
            )
        if self.avg_size & (self.avg_size - 1):
            raise ConfigError(f"avg chunk size must be a power of two, got {self.avg_size}")


@dataclass(frozen=True)
class RetentionConfig:
    """Backup rotation policy (paper §6.1): retain the most recent
    ``retained`` backups; each round deletes the oldest ``turnover``."""

    retained: int = 100
    turnover: int = 20

    def validate(self) -> None:
        if self.retained <= 0 or self.turnover <= 0:
            raise ConfigError("retention counts must be positive")
        if self.turnover > self.retained:
            raise ConfigError("cannot turn over more backups than are retained")


@dataclass(frozen=True)
class GCCDFConfig:
    """Knobs specific to GCCDF (paper §5)."""

    #: Number of containers per Preprocessor segment (paper default: 100).
    segment_size: int = 100
    #: Leaf nodes at or below this chunk count are denied further splitting
    #: (Analyzer optimization ③). 0 disables the optimization.
    split_denial_threshold: int = 4
    #: Packing strategy: 'greedy' is §4.2's explicit algorithm (similarity
    #: chain + longest-matching-suffix tie-break) and the default; 'tree'
    #: is §5.4's binary-tree-order implementation of it (cheaper, slightly
    #: weaker on multi-source data); 'random' is the §6.5 ablation baseline.
    packing: str = "greedy"
    #: Bloom filter false-positive rate for per-recipe reference filters.
    bloom_fp_rate: float = 0.001
    #: Use exact sets instead of Bloom filters in the Analyzer (ablation).
    exact_reference_check: bool = False
    #: Simulated seconds per Analyzer/Planner operation (one membership
    #: probe or chunk move).  The Fig. 14 breakdown needs analyze time in
    #: the same currency as the simulated I/O stages; a native-code hash
    #: probe is ~10 ns, which this models.  Measured Python wall time is
    #: reported separately (``GCReport.analyze_cpu_seconds``).
    analyze_op_cost: float = 1e-8

    def validate(self) -> None:
        if self.segment_size <= 0:
            raise ConfigError("segment_size must be positive")
        if self.split_denial_threshold < 0:
            raise ConfigError("split_denial_threshold must be >= 0")
        if self.packing not in ("tree", "greedy", "random"):
            raise ConfigError(f"unknown packing strategy {self.packing!r}")
        if not (0.0 < self.bloom_fp_rate < 1.0):
            raise ConfigError("bloom_fp_rate must be in (0, 1)")
        if self.analyze_op_cost < 0:
            raise ConfigError("analyze_op_cost must be >= 0")


@dataclass(frozen=True)
class DiskConfig:
    """Parameters of the simulated backup-storage disk (stands in for the
    paper's 2× S4610 RAID-0 array; see DESIGN.md substitution table)."""

    #: Sequential bandwidth in bytes/second.
    bandwidth: float = 1.0 * 1024 * MIB
    #: Per-I/O positioning latency in seconds (SSD-scale, amortised by
    #: container-sized reads exactly as in the paper's layout argument).
    seek_time: float = 100e-6

    def validate(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigError("bandwidth must be positive")
        if self.seek_time < 0:
            raise ConfigError("seek_time must be >= 0")


@dataclass(frozen=True)
class SystemConfig:
    """Top-level configuration for a :class:`repro.backup.BackupSystem`."""

    container_size: int = 4 * MIB
    chunking: ChunkingConfig = field(default_factory=ChunkingConfig)
    retention: RetentionConfig = field(default_factory=RetentionConfig)
    gccdf: GCCDFConfig = field(default_factory=GCCDFConfig)
    disk: DiskConfig = field(default_factory=DiskConfig)
    #: 'exact' keeps a hash set of valid fingerprints in the mark stage;
    #: 'bloom' uses a Bloom filter (paper §2.4 allows either).
    vc_table: str = "exact"
    #: Containers held by the restore engine's LRU cache; None models an
    #: adequate forward-assembly area (each container is fetched at most once
    #: per restore — the paper's read-amplification accounting).  A bounded
    #: value enables the cache-pressure ablation.
    restore_cache_containers: int | None = None

    def validate(self) -> None:
        if self.container_size <= 0:
            raise ConfigError("container_size must be positive")
        if self.container_size < self.chunking.max_size:
            raise ConfigError(
                "container must hold at least one max-size chunk: "
                f"container={self.container_size}, max chunk={self.chunking.max_size}"
            )
        if self.vc_table not in ("exact", "bloom"):
            raise ConfigError(f"unknown vc_table type {self.vc_table!r}")
        if self.restore_cache_containers is not None and self.restore_cache_containers <= 0:
            raise ConfigError("restore_cache_containers must be positive or None")
        self.chunking.validate()
        self.retention.validate()
        self.gccdf.validate()
        self.disk.validate()

    @classmethod
    def paper(cls) -> "SystemConfig":
        """The paper's exact geometry (§6.1)."""
        config = cls()
        config.validate()
        return config

    @classmethod
    def scaled(
        cls,
        *,
        retained: int = 100,
        turnover: int = 20,
        segment_size: int = 100,
    ) -> "SystemConfig":
        """A CI-friendly geometry: 128 KiB containers, 256 B/1 KiB/4 KiB chunks.

        Chunk:container ratio is 128:1 (vs the paper's 1024:1), preserving the
        cluster/container misalignment effects §4.2 targets while shrinking
        run time by orders of magnitude.
        """
        config = cls(
            container_size=128 * KIB,
            chunking=ChunkingConfig(min_size=256, avg_size=1 * KIB, max_size=4 * KIB),
            retention=RetentionConfig(retained=retained, turnover=turnover),
            gccdf=GCCDFConfig(segment_size=segment_size),
            # Keep the paper geometry's seek:transfer ratio: a 4 MiB
            # container at ~1 GiB/s transfers in ~4 ms against a 100 µs
            # seek; a 128 KiB container transfers in ~122 µs, so the seek
            # is shrunk proportionally to stay a second-order cost.
            disk=DiskConfig(seek_time=2e-6),
        )
        config.validate()
        return config

    def with_gccdf(self, **kwargs) -> "SystemConfig":
        """Return a copy with GCCDF knobs overridden."""
        config = replace(self, gccdf=replace(self.gccdf, **kwargs))
        config.validate()
        return config

    def with_retention(self, **kwargs) -> "SystemConfig":
        """Return a copy with retention knobs overridden."""
        config = replace(self, retention=replace(self.retention, **kwargs))
        config.validate()
        return config
