"""Plain-text result tables.

Every experiment prints the rows/series its paper figure reports; the
benchmarks capture the same tables into ``bench_output.txt``.  The renderer
is dependency-free and aligns columns for terminal reading.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence


@dataclass(frozen=True)
class Column:
    """One table column: header plus a formatter for cell values."""

    header: str
    format: Callable[[Any], str] = str
    align: str = ">"  # numbers right-align by default

    def render(self, value: Any) -> str:
        return self.format(value)


@dataclass
class ResultTable:
    """An append-only table rendered with aligned columns."""

    title: str
    columns: Sequence[Column]
    rows: list[Sequence[Any]] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(values)

    def render(self) -> str:
        headers = [column.header for column in self.columns]
        rendered_rows = [
            [column.render(value) for column, value in zip(self.columns, row)]
            for row in self.rows
        ]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rendered_rows)) if rendered_rows else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [self.title]
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rendered_rows:
            cells = []
            for column, cell, width in zip(self.columns, row, widths):
                cells.append(cell.rjust(width) if column.align == ">" else cell.ljust(width))
            lines.append("  ".join(cells))
        return "\n".join(lines)

    def print(self) -> None:
        print(self.render())
        print()


def fmt_float(digits: int = 2) -> Callable[[Any], str]:
    """Formatter factory for fixed-precision floats."""
    def _fmt(value: Any) -> str:
        return f"{value:.{digits}f}"
    return _fmt


def fmt_mib() -> Callable[[Any], str]:
    """Formatter for byte/second rates rendered as MiB/s."""
    def _fmt(value: Any) -> str:
        return f"{value / (1024 * 1024):.1f}"
    return _fmt
