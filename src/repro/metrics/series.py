"""Helpers for per-backup series (the Fig. 12/15 curves)."""

from __future__ import annotations

import math
from typing import Sequence


def bucket_means(values: Sequence[float], num_buckets: int) -> list[float]:
    """Compress a series into ``num_buckets`` equal-width bucket means.

    Used to print Fig. 12-style curves (80 per-backup read-amplification
    values) as a handful of readable columns.  Buckets cover the series in
    order; a short final bucket averages whatever remains.
    """
    if num_buckets <= 0:
        raise ValueError("num_buckets must be positive")
    if not values:
        return []
    size = max(1, math.ceil(len(values) / num_buckets))
    return [
        sum(values[start : start + size]) / len(values[start : start + size])
        for start in range(0, len(values), size)
    ]


def series_summary(values: Sequence[float]) -> dict[str, float]:
    """min/mean/median/max of a series (empty series → zeros)."""
    if not values:
        return {"min": 0.0, "mean": 0.0, "median": 0.0, "max": 0.0}
    ordered = sorted(values)
    mid = len(ordered) // 2
    median = (
        ordered[mid]
        if len(ordered) % 2
        else (ordered[mid - 1] + ordered[mid]) / 2.0
    )
    return {
        "min": ordered[0],
        "mean": sum(ordered) / len(ordered),
        "median": median,
        "max": ordered[-1],
    }
