"""Result collection and text rendering for the experiment harness."""

from repro.metrics.table import Column, ResultTable
from repro.metrics.series import bucket_means, series_summary

__all__ = ["Column", "ResultTable", "bucket_means", "series_summary"]
