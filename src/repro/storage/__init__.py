"""Container-based storage layout (paper §2.1).

Backup storage writes chunks into large, immutable, fixed-capacity
*containers* — the fundamental I/O unit.  Reading any chunk means reading its
whole container, which is what turns fragmentation into read amplification.
"""

from repro.storage.container import Container
from repro.storage.store import ContainerStore
from repro.storage.writer import ContainerWriter
from repro.storage.cache import ContainerCache

__all__ = ["Container", "ContainerStore", "ContainerWriter", "ContainerCache"]
