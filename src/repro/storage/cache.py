"""LRU container cache used by the restore engine.

Restoration in container-based backup systems reads whole containers and
keeps the most recent ones in a bounded memory cache, so a chunk whose
container is already cached costs no I/O.  The cache capacity (in containers)
is the standard knob trading restore memory for speed; the paper's restore
measurements implicitly include such a cache, and our sensitivity suite
sweeps it.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigError
from repro.storage.container import Container
from repro.storage.store import ContainerStore


class ContainerCache:
    """LRU of containers in front of a :class:`ContainerStore`.

    ``capacity=None`` makes the cache unbounded for its lifetime — the
    read-each-container-once model behind the paper's read-amplification
    definition (an adequate forward-assembly area).  A positive capacity
    gives a classic bounded LRU for cache-pressure experiments.
    """

    def __init__(self, store: ContainerStore, capacity: int | None):
        if capacity is not None and capacity <= 0:
            raise ConfigError("cache capacity must be positive or None")
        self.store = store
        self.capacity = capacity
        self._entries: "OrderedDict[int, Container]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Subscribe for invalidation: a cache that outlives a GC (or crash
        # recovery) must not keep serving containers the store deleted.
        store.register_cache(self)

    def get(self, container_id: int) -> Container:
        """Fetch a container, reading from disk only on a miss."""
        cached = self._entries.get(container_id)
        if cached is not None:
            self.hits += 1
            # An unbounded cache never evicts, so recency bookkeeping
            # would be pure per-chunk overhead on the restore hot path.
            if self.capacity is not None:
                self._entries.move_to_end(container_id)
            return cached
        self.misses += 1
        container = self.store.read_container(container_id)
        self._entries[container_id] = container
        if self.capacity is not None and len(self._entries) > self.capacity:
            evicted_id, _ = self._entries.popitem(last=False)
            self.evictions += 1
            tracer = self.store.disk.tracer
            if tracer.enabled:
                # Evictions are the scarce, diagnostic event of a bounded
                # restore cache (a thrashing backup shows up here, not in
                # per-chunk hit counters, which stay in RestoreReport).
                tracer.emit(
                    "cache.evict",
                    sim_time=self.store.disk.sim_time,
                    fields={"container_id": evicted_id, "for_container": container_id},
                )
        return container

    def read_column(self, container_ids) -> None:
        """Drive the cache over a pre-resolved container-id column.

        The columnar restore engine resolves a whole recipe to container
        ids first, then replays the column here.  Hit/miss accounting, read
        order, and eviction behaviour are exactly those of calling
        :meth:`get` per id; the unbounded case (no eviction, no recency
        bookkeeping) additionally batches the counter updates and skips the
        per-chunk method call.
        """
        if self.capacity is not None:
            get = self.get
            for container_id in container_ids:
                get(container_id)
            return
        entries = self._entries
        entries_get = entries.get
        read_container = self.store.read_container
        hits = 0
        misses = 0
        for container_id in container_ids:
            if entries_get(container_id) is None:
                misses += 1
                entries[container_id] = read_container(container_id)
            else:
                hits += 1
        self.hits += hits
        self.misses += misses

    def invalidate(self, container_id: int) -> None:
        """Drop a container from the cache (e.g. after GC deletes it)."""
        self._entries.pop(container_id, None)

    def clear(self) -> None:
        self._entries.clear()

    def __contains__(self, container_id: int) -> bool:
        return container_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
