"""The container store: all sealed containers on the backup disk.

The store owns the durable container map and charges every container-granular
read and write against the simulated :class:`~repro.simio.DiskModel`.  Two
rules, both from the container-based layouts the paper builds on:

* **Reads are container-granular.**  ``read_container`` charges the whole
  container's used bytes even if the caller wants one chunk — that is the
  mechanism of read amplification.
* **Containers are immutable.**  There is no partial overwrite; space comes
  back only via :meth:`delete_container` after GC copies valid chunks away.

Every durable container operation emits a ``container.read`` /
``container.write`` / ``container.delete`` trace event through the disk's
tracer (guarded by ``tracer.enabled``, so the default null tracer costs one
attribute check per container — not per chunk).
"""

from __future__ import annotations

import weakref
from typing import Iterable, Iterator

from repro.errors import UnknownContainerError
from repro.faults.journal import IntentJournal
from repro.simio.disk import DiskModel
from repro.storage.container import Container


class ContainerStore:
    """Durable map of container id → sealed :class:`Container`."""

    def __init__(self, capacity: int, disk: DiskModel):
        self.capacity = capacity
        self.disk = disk
        self._containers: dict[int, Container] = {}
        self._next_id = 0
        #: Interner of the owning service's recipe store, bound only on the
        #: columnar path; sealed containers then carry an id manifest (see
        #: :meth:`bind_interner`).
        self._interner = None
        #: Monotonic counters for auditing GC behaviour.
        self.containers_written = 0
        self.containers_deleted = 0
        #: Intent journal bracketing every multi-step mutation (container
        #: writes here; sweep/copy-forward/reclaim intents from the GC).
        #: Modelled as an NVRAM metadata log: it charges no simulated I/O.
        self.journal = IntentJournal()
        #: Caches to notify when a container leaves the store.  Weak so a
        #: per-restore cache does not outlive its restore.
        self._caches: "weakref.WeakSet" = weakref.WeakSet()

    def bind_interner(self, interner) -> None:
        """Bind the service's fingerprint interner (columnar path only).

        From here on every sealed container gets an interned-id manifest —
        parallel ``array('q')`` id/size columns the sweep kernels partition
        with set algebra.  Containers sealed *before* the bind are
        rehydrated lazily by :meth:`peek`.  Legacy services never call this,
        keeping their containers manifest-free and the per-entry sweep loops
        in charge.
        """
        self._interner = interner

    def register_cache(self, cache) -> None:
        """Subscribe a :class:`~repro.storage.cache.ContainerCache` for
        invalidation when containers are deleted (GC) or dropped (recovery)."""
        self._caches.add(cache)

    def _invalidate_caches(self, container_id: int) -> None:
        for cache in self._caches:
            cache.invalidate(container_id)

    def allocate(self) -> Container:
        """Create a fresh open container with the store's capacity."""
        container = Container(self._next_id, self.capacity)
        self._next_id += 1
        return container

    def commit(self, container: Container) -> None:
        """Seal ``container`` and write it to disk (charging write I/O).

        The write is bracketed by a ``container.write`` intent: a crash at
        the armed ``store.commit.torn`` point leaves the container in the
        map with its I/O charged but the intent still open — the torn-write
        state recovery rolls back.
        """
        container.seal()
        if not container.entries:
            return  # nothing to persist; id is simply burned
        if self._interner is not None:
            container.build_manifest(self._interner)
        intent = self.journal.begin(
            "container.write", container_id=container.container_id
        )
        self._containers[container.container_id] = container
        self.disk.write(container.used_bytes)
        self.disk.crash_point(
            "store.commit.torn",
            container_id=container.container_id,
            bytes=container.used_bytes,
        )
        self.journal.commit(intent)
        self.journal.close(intent)
        self.containers_written += 1
        tracer = self.disk.tracer
        if tracer.enabled:
            tracer.emit(
                "container.write",
                sim_time=self.disk.sim_time,
                fields={
                    "container_id": container.container_id,
                    "bytes": container.used_bytes,
                    "chunks": len(container.entries),
                },
            )

    def read_container(self, container_id: int) -> Container:
        """Fetch a container from disk, charging a full-container read."""
        container = self._containers.get(container_id)
        if container is None:
            raise UnknownContainerError(f"container {container_id} not in store")
        self.disk.read(container.used_bytes)
        tracer = self.disk.tracer
        if tracer.enabled:
            tracer.emit(
                "container.read",
                sim_time=self.disk.sim_time,
                fields={"container_id": container_id, "bytes": container.used_bytes},
            )
        return container

    def peek(self, container_id: int) -> Container:
        """Metadata-only access: no I/O charged.

        Used by policies that consult container metadata assumed to be held
        in memory (e.g. HAR's utilization records, the mark stage's GS-list
        construction), mirroring how real systems keep container metadata in
        an in-memory index.
        """
        container = self._containers.get(container_id)
        if container is None:
            raise UnknownContainerError(f"container {container_id} not in store")
        if self._interner is not None and container.chunk_ids is None:
            # Sealed before the interner was bound (or hand-seeded state):
            # rehydrate the manifest so the columnar sweep kernels apply.
            container.build_manifest(self._interner)
        return container

    def delete_container(self, container_id: int) -> None:
        """Reclaim a container's space (GC only)."""
        if container_id not in self._containers:
            raise UnknownContainerError(f"container {container_id} not in store")
        del self._containers[container_id]
        self.containers_deleted += 1
        self._invalidate_caches(container_id)
        tracer = self.disk.tracer
        if tracer.enabled:
            tracer.emit(
                "container.delete",
                sim_time=self.disk.sim_time,
                fields={"container_id": container_id},
            )

    def discard_container(self, container_id: int) -> None:
        """Drop a container during crash recovery (torn write or rolled-back
        copy-forward destination).

        Unlike :meth:`delete_container` this is not a GC reclaim: it keeps
        the audit counters untouched and emits no ``container.delete`` event
        — recovery reports its own ``recovery.*`` events.  Caches are still
        invalidated.  Idempotent: discarding an absent id is a no-op.
        """
        if self._containers.pop(container_id, None) is not None:
            self._invalidate_caches(container_id)

    def __contains__(self, container_id: int) -> bool:
        return container_id in self._containers

    def __len__(self) -> int:
        return len(self._containers)

    def ids(self) -> Iterator[int]:
        """All live container ids (ascending)."""
        return iter(sorted(self._containers))

    def containers(self) -> Iterable[Container]:
        """All live containers, in id order."""
        for container_id in sorted(self._containers):
            yield self._containers[container_id]

    @property
    def stored_bytes(self) -> int:
        """Total chunk bytes across live containers (physical space cost)."""
        return sum(c.used_bytes for c in self._containers.values())
