"""The container data structure.

A container is an append-until-sealed, then immutable, collection of chunks
with a fixed byte capacity (4 MiB in the paper).  Immutability is the
property that forces garbage collection to *copy forward* valid chunks
rather than overwrite invalid ones in place (§2.4), which is the hook GCCDF
piggybacks on.

Containers optionally carry chunk payload bytes.  The byte-level pipeline
stores them (so restore can return real data); the trace-level pipeline used
by the large experiments does not, and all accounting works purely on sizes.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ContainerFullError, ContainerSealedError
from repro.model import ChunkRef


class Container:
    """One container: an ordered list of chunk entries within a capacity."""

    __slots__ = ("container_id", "capacity", "entries", "used_bytes", "sealed", "_payloads")

    def __init__(self, container_id: int, capacity: int):
        self.container_id = container_id
        self.capacity = capacity
        self.entries: list[ChunkRef] = []
        self.used_bytes = 0
        self.sealed = False
        self._payloads: dict[bytes, bytes] | None = None

    def fits(self, size: int) -> bool:
        """Would a chunk of ``size`` bytes fit without exceeding capacity?"""
        return self.used_bytes + size <= self.capacity

    def append(self, ref: ChunkRef, payload: bytes | None = None) -> None:
        """Append a chunk entry (and optionally its bytes).

        Raises :class:`ContainerSealedError` after :meth:`seal`, and
        :class:`ContainerFullError` if the chunk does not fit — callers are
        expected to check :meth:`fits` and roll over to a new container.
        """
        if self.sealed:
            raise ContainerSealedError(f"container {self.container_id} is sealed")
        if not self.fits(ref.size):
            raise ContainerFullError(
                f"chunk of {ref.size}B does not fit in container {self.container_id} "
                f"({self.used_bytes}/{self.capacity}B used)"
            )
        self.entries.append(ref)
        self.used_bytes += ref.size
        if payload is not None:
            if self._payloads is None:
                self._payloads = {}
            self._payloads[ref.fp] = payload

    def seal(self) -> None:
        """Make the container immutable.  Sealing twice is a no-op."""
        self.sealed = True

    def payload(self, fp: bytes) -> bytes | None:
        """Stored bytes for ``fp``, or None when running payload-free."""
        if self._payloads is None:
            return None
        return self._payloads.get(fp)

    def has_payloads(self) -> bool:
        return bool(self._payloads)

    def fingerprints(self) -> set[bytes]:
        """The set of distinct fingerprints held by this container."""
        return {entry.fp for entry in self.entries}

    def __iter__(self) -> Iterator[ChunkRef]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def utilization(self) -> float:
        """Fraction of capacity occupied by chunk bytes."""
        return self.used_bytes / self.capacity if self.capacity else 0.0

    def __repr__(self) -> str:
        state = "sealed" if self.sealed else "open"
        return (
            f"Container(id={self.container_id}, {len(self.entries)} chunks, "
            f"{self.used_bytes}/{self.capacity}B, {state})"
        )
