"""The container data structure.

A container is an append-until-sealed, then immutable, collection of chunks
with a fixed byte capacity (4 MiB in the paper).  Immutability is the
property that forces garbage collection to *copy forward* valid chunks
rather than overwrite invalid ones in place (§2.4), which is the hook GCCDF
piggybacks on.

Containers optionally carry chunk payload bytes.  The byte-level pipeline
stores them (so restore can return real data); the trace-level pipeline used
by the large experiments does not, and all accounting works purely on sizes.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.errors import ContainerFullError, ContainerSealedError
from repro.model import ChunkRef

if TYPE_CHECKING:
    from repro.index.interning import FingerprintInterner


class Container:
    """One container: an ordered list of chunk entries within a capacity.

    Sealed containers of a columnar service additionally carry an
    *interned-id manifest*: parallel ``array('q')`` id/size columns over the
    entry list (plus a cached distinct-id set), built once at seal time and
    immutable thereafter.  The GC sweep kernels partition validity against
    these columns with C-level set algebra instead of walking ``entries``
    one :class:`~repro.model.ChunkRef` at a time.  Legacy services never
    bind an interner to their store, so their containers keep
    ``chunk_ids is None`` and the per-entry code paths.
    """

    __slots__ = (
        "container_id",
        "capacity",
        "entries",
        "used_bytes",
        "sealed",
        "_payloads",
        "chunk_ids",
        "chunk_sizes",
        "_distinct_ids",
    )

    def __init__(self, container_id: int, capacity: int):
        self.container_id = container_id
        self.capacity = capacity
        self.entries: list[ChunkRef] = []
        self.used_bytes = 0
        self.sealed = False
        self._payloads: dict[bytes, bytes] | None = None
        #: Interned chunk ids / sizes parallel to ``entries`` (manifest).
        self.chunk_ids: array | None = None
        self.chunk_sizes: array | None = None
        self._distinct_ids: frozenset[int] | None = None

    def fits(self, size: int) -> bool:
        """Would a chunk of ``size`` bytes fit without exceeding capacity?"""
        return self.used_bytes + size <= self.capacity

    def append(self, ref: ChunkRef, payload: bytes | None = None) -> None:
        """Append a chunk entry (and optionally its bytes).

        Raises :class:`ContainerSealedError` after :meth:`seal`, and
        :class:`ContainerFullError` if the chunk does not fit — callers are
        expected to check :meth:`fits` and roll over to a new container.
        """
        if self.sealed:
            raise ContainerSealedError(f"container {self.container_id} is sealed")
        if not self.fits(ref.size):
            raise ContainerFullError(
                f"chunk of {ref.size}B does not fit in container {self.container_id} "
                f"({self.used_bytes}/{self.capacity}B used)"
            )
        self.entries.append(ref)
        self.used_bytes += ref.size
        if payload is not None:
            if self._payloads is None:
                self._payloads = {}
            self._payloads[ref.fp] = payload

    def extend(
        self,
        refs: list[ChunkRef],
        total_bytes: int,
        ids: "Sequence[int] | None" = None,
        sizes: "Sequence[int] | None" = None,
    ) -> None:
        """Append a pre-validated run of payload-free chunk entries.

        The batched copy-forward computes run boundaries against the
        remaining capacity up front (prefix sums + bisect), so the per-chunk
        ``fits`` check collapses to one bounds check per run.

        When the caller already knows the run's interned ids (the sweep
        kernels carry id columns end to end), passing ``ids``/``sizes``
        grows the manifest incrementally, making the seal-time
        :meth:`build_manifest` a no-op instead of a re-interning pass.  The
        manifest is only maintained while it exactly tracks ``entries``;
        any interleaved per-chunk :meth:`append` desynchronises it and the
        seal-time rebuild takes over (the length check there catches it).
        """
        if self.sealed:
            raise ContainerSealedError(f"container {self.container_id} is sealed")
        if self.used_bytes + total_bytes > self.capacity:
            raise ContainerFullError(
                f"batch of {total_bytes}B does not fit in container "
                f"{self.container_id} ({self.used_bytes}/{self.capacity}B used)"
            )
        if ids is not None:
            if self.chunk_ids is None:
                if not self.entries:
                    self.chunk_ids = array("q")
                    self.chunk_sizes = array("q")
            if self.chunk_ids is not None and len(self.chunk_ids) == len(
                self.entries
            ):
                self.chunk_ids.extend(ids)
                self.chunk_sizes.extend(
                    sizes if sizes is not None else (ref.size for ref in refs)
                )
                self._distinct_ids = None
        self.entries.extend(refs)
        self.used_bytes += total_bytes

    def seal(self) -> None:
        """Make the container immutable.  Sealing twice is a no-op."""
        self.sealed = True

    def build_manifest(self, interner: "FingerprintInterner") -> None:
        """Build (or rebuild) the interned-id manifest for a sealed container.

        Idempotent and cheap to re-run; called at seal time by the store's
        commit path and again by :meth:`ContainerStore.peek
        <repro.storage.store.ContainerStore.peek>` for containers sealed
        before the interner was bound (e.g. rebuilt state after recovery).
        Every key of a columnar service's sealed container was interned
        during ingest/migration, so :meth:`intern
        <repro.index.interning.FingerprintInterner.intern>` here is a pure
        dict probe; genuinely fresh keys (hand-built test containers) are
        interned on the spot.
        """
        if self.chunk_ids is not None and len(self.chunk_ids) == len(self.entries):
            if self._distinct_ids is None:
                self._distinct_ids = frozenset(self.chunk_ids)
            return
        self.chunk_ids = array("q", map(interner.intern, (e.fp for e in self.entries)))
        self.chunk_sizes = array("q", (e.size for e in self.entries))
        # Eager distinct-id set: sealing happens on the ingest/migration
        # write path where this is one cheap frozenset per ~4 MiB container,
        # keeping the first-touch build out of the timed GC partition.
        self._distinct_ids = frozenset(self.chunk_ids)

    def distinct_ids(self) -> frozenset[int]:
        """The distinct interned ids of this container's manifest (cached).

        Only valid once :meth:`build_manifest` ran; raises ``TypeError``
        otherwise (``frozenset(None)``) — callers gate on ``chunk_ids``.
        """
        ids = self._distinct_ids
        if ids is None:
            ids = self._distinct_ids = frozenset(self.chunk_ids)
        return ids

    def payload(self, fp: bytes) -> bytes | None:
        """Stored bytes for ``fp``, or None when running payload-free."""
        if self._payloads is None:
            return None
        return self._payloads.get(fp)

    def has_payloads(self) -> bool:
        return bool(self._payloads)

    def fingerprints(self) -> set[bytes]:
        """The set of distinct fingerprints held by this container."""
        return {entry.fp for entry in self.entries}

    def __iter__(self) -> Iterator[ChunkRef]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def utilization(self) -> float:
        """Fraction of capacity occupied by chunk bytes."""
        return self.used_bytes / self.capacity if self.capacity else 0.0

    def __repr__(self) -> str:
        state = "sealed" if self.sealed else "open"
        return (
            f"Container(id={self.container_id}, {len(self.entries)} chunks, "
            f"{self.used_bytes}/{self.capacity}B, {state})"
        )
