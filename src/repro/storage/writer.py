"""Sequential container writer.

Chunks surviving dedup (and chunks migrated by GC) are appended to an open
container; when the next chunk would overflow, the container is sealed,
committed to the store, and a fresh one is opened.  The writer reports each
chunk's placement so callers can update the fingerprint index.

Observability: sealing a container through :meth:`ContainerStore.commit`
emits a ``container.write`` trace event (when the store's disk has an
enabled tracer), so the writer itself stays tracer-free — every durable
write is already visible at the store boundary.

Crash consistency: the ``on_commit`` hook fires *after* the store has made
the container durable (and journalled its write intent), which is what lets
:class:`repro.gc.migration.JournaledCopyForward` treat it as the seal
notification — index repointing and intent close happen inside the hook, so
a crash during the commit itself always leaves the copy-forward intent open
and therefore rollable-back.  If :meth:`ContainerStore.commit` raises (an
injected torn write), the hook is never invoked and ``committed_ids`` does
not record the container.
"""

from __future__ import annotations

from typing import Callable

from repro.model import ChunkRef
from repro.storage.container import Container
from repro.storage.store import ContainerStore

#: Callback invoked as ``on_commit(container)`` whenever a container seals.
CommitHook = Callable[[Container], None]


class ContainerWriter:
    """Fills containers sequentially from a stream of chunks."""

    def __init__(self, store: ContainerStore, on_commit: CommitHook | None = None):
        self.store = store
        self._on_commit = on_commit
        self._open: Container | None = None
        self.committed_ids: list[int] = []

    def append(self, ref: ChunkRef, payload: bytes | None = None) -> int:
        """Write one chunk; returns the id of the container it landed in."""
        if self._open is not None and not self._open.fits(ref.size):
            self._commit_open()
        if self._open is None:
            self._open = self.store.allocate()
        self._open.append(ref, payload)
        return self._open.container_id

    def open_for(self, size: int) -> Container:
        """The open container ready to take ``size`` more bytes, sealing and
        rolling over exactly as :meth:`append` would.

        Batched callers use this to locate run boundaries up front: commit
        the full container, allocate a fresh one, and hand it back so a
        whole run of pre-validated chunks can be appended through
        :meth:`Container.extend <repro.storage.container.Container.extend>`
        without a per-chunk ``fits`` check.  (A chunk larger than an empty
        container is the caller's to surface, as with :meth:`append`.)
        """
        if self._open is not None and not self._open.fits(size):
            self._commit_open()
        if self._open is None:
            self._open = self.store.allocate()
        return self._open

    def _commit_open(self) -> None:
        container = self._open
        self._open = None
        assert container is not None
        self.store.commit(container)
        if container.entries:
            self.committed_ids.append(container.container_id)
            if self._on_commit is not None:
                self._on_commit(container)

    def flush(self) -> list[int]:
        """Seal any open container; returns ids of all containers committed
        through this writer so far."""
        if self._open is not None and self._open.entries:
            self._commit_open()
        elif self._open is not None:
            self._open = None
        return list(self.committed_ids)

    @property
    def open_container_id(self) -> int | None:
        """Id of the currently open (unsealed) container, if any."""
        return self._open.container_id if self._open is not None else None
