"""Sharded multi-tenant backup fleet on deterministic simulated time.

A real backup appliance serves many unrelated sources at once — the regime
where neighbor-only dedup collapses and GC cost compounds (paper §3.1).
This package promotes that regime to a first-class engine:

* :mod:`~repro.fleet.topology` — N tenants hashed across M shards via a
  stable BLAKE2b placement; ``shared`` vs ``tenant`` dedup domains.
* :mod:`~repro.fleet.scheduler` — a deterministic simulated-time scheduler
  interleaving per-tenant ingest/rotate/restore requests with shard-level
  GC epochs.
* :mod:`~repro.fleet.shard` — one shard's execution: columnar
  :class:`~repro.backup.service.BackupService` instances, the request
  loop, per-shard metrics, and shard-scoped workload-stream memoization.
* :mod:`~repro.fleet.runner` — process-parallel shard fan-out (shared pool
  machinery with the experiment matrix) with deterministic result and
  trace merging: ``jobs=1`` is byte-identical to ``jobs=N``.
* :mod:`~repro.fleet.result` — per-shard and fleet-aggregated results
  carrying merged :mod:`repro.obs` metrics.
* :mod:`~repro.fleet.cli` — the ``repro-fleet`` console script.

See ``docs/fleet.md`` for semantics and guarantees, and
``benchmarks/fleet.py`` for the jobs-scaling benchmark
(``BENCH_fleet.json``).
"""

from repro.fleet.result import FleetResult, ShardResult
from repro.fleet.runner import plan_shards, run_fleet
from repro.fleet.scheduler import Request, shard_schedule
from repro.fleet.shard import ShardTask, run_shard
from repro.fleet.topology import (
    DEDUP_DOMAINS,
    FleetConfig,
    TenantSpec,
    shard_of,
)

__all__ = [
    "DEDUP_DOMAINS",
    "FleetConfig",
    "FleetResult",
    "Request",
    "ShardResult",
    "ShardTask",
    "TenantSpec",
    "plan_shards",
    "run_fleet",
    "run_shard",
    "shard_of",
    "shard_schedule",
]
