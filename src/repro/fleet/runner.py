"""Process-parallel fleet execution with deterministic merging.

Shards are independent by construction — a shard's result is a pure
function of its :class:`~repro.fleet.shard.ShardTask` — so
:func:`run_fleet` fans them out over the shared process-pool helper
(:func:`repro.experiments.pool.run_tasks`, the same machinery the
experiment matrix uses) and reassembles results **in shard-id order**, never
completion order.  Consequences, both gated by tests and the fleet
benchmark:

* ``jobs=1`` and ``jobs=N`` produce byte-identical
  :meth:`~repro.fleet.result.FleetResult.canonical_json` output;
* with ``trace_path`` set, the merged JSON Lines trace is byte-identical
  across job counts: shards appear in shard-id order, each introduced by a
  ``shard`` header event, sequence numbers reassigned globally (the same
  merge discipline as the matrix's cell traces).
"""

from __future__ import annotations

import os
import time
from typing import Callable, Iterable, Sequence

from repro.errors import ConfigError
from repro.experiments.pool import run_tasks
from repro.fleet.result import FleetResult, ShardResult, merge_shard_results
from repro.fleet.shard import ShardTask, execute_shard
from repro.fleet.topology import FleetConfig
from repro.obs.tracer import write_trace


def plan_shards(config: FleetConfig, trace: bool = False) -> list[ShardTask]:
    """The fleet's shard tasks, one per shard, in shard-id order."""
    config.validate()
    return [
        ShardTask(
            shard_id=shard_id,
            tenants=tenants,
            approach=config.approach,
            dedup_domain=config.dedup_domain,
            retained=config.retained,
            turnover=config.turnover,
            backup_period=config.backup_period,
            gc_period=config.gc_period,
            seed=config.seed,
            trace=trace,
            gc_mode=config.gc_mode,
            dedup_mode=config.dedup_mode,
            gc_step_period=config.gc_step_period,
            gc_mark_budget=config.gc_mark_budget,
            gc_sweep_budget=config.gc_sweep_budget,
            gc_trigger_deleted=config.gc_trigger_deleted,
            read_requests=config.read_requests,
            read_fraction=config.read_fraction,
        )
        for shard_id, tenants in enumerate(config.shard_tenants())
    ]


def _shard_header(task: ShardTask) -> dict:
    """The ``shard`` header event introducing one shard's stream in a
    merged trace (sequence number reassigned at merge time)."""
    return {
        "seq": 0,
        "name": "shard",
        "sim_time": 0.0,
        "duration": 0.0,
        "fields": {
            "shard_id": task.shard_id,
            "tenants": len(task.tenants),
            "approach": task.approach,
            "dedup_domain": task.dedup_domain,
        },
    }


def _merged_events(
    tasks: Sequence[ShardTask], events_by_shard: dict[int, list[dict]]
) -> Iterable[dict]:
    """Yield the merged fleet trace: shards in shard-id order, each behind
    its header event, sequence numbers reassigned globally."""
    seq = 0
    for task in tasks:
        header = _shard_header(task)
        header["seq"] = seq
        seq += 1
        yield header
        for event in events_by_shard.get(task.shard_id, []):
            yield {**event, "seq": seq}
            seq += 1


def run_fleet(
    config: FleetConfig,
    jobs: int | None = None,
    trace_path: str | os.PathLike | None = None,
    progress: Callable[[str], None] | None = None,
) -> FleetResult:
    """Execute the whole fleet; returns the merged :class:`FleetResult`.

    ``jobs=1`` runs shards serially in-process; ``jobs=N`` fans shards out
    over a process pool.  Either way the result (and, with ``trace_path``,
    the merged trace file) is byte-identical.  ``progress`` receives one
    line per completed shard plus a closing summary.
    """
    tracing = trace_path is not None
    jobs = jobs if jobs is not None else (os.cpu_count() or 1)
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    emit = progress or (lambda line: None)

    wall_started = time.perf_counter()
    tasks = plan_shards(config, trace=tracing)
    shard_results: dict[int, ShardResult] = {}
    events_by_shard: dict[int, list[dict]] = {}
    seconds_by_shard: dict[int, float] = {}

    def finish(
        shard_id: int, outcome: tuple[dict, float, list[dict] | None], done: int
    ) -> None:
        data, seconds, events = outcome
        shard_results[shard_id] = ShardResult.from_dict(data)
        seconds_by_shard[shard_id] = seconds
        if events is not None:
            events_by_shard[shard_id] = events
        emit(
            f"[{done}/{len(tasks)}] shard {shard_id}: "
            f"{len(data['tenants'])} tenants, "
            f"{sum(data['requests'].values())} requests, {seconds:.1f}s"
        )

    run_tasks(
        [(task.shard_id, task) for task in tasks],
        execute_shard,
        jobs,
        finish,
    )

    if tracing:
        written = write_trace(trace_path, _merged_events(tasks, events_by_shard))
        emit(f"[trace] {written} events -> {trace_path}")

    result = merge_shard_results(
        approach=config.approach,
        dedup_domain=config.dedup_domain,
        num_tenants=len(config.tenants),
        num_shards=config.num_shards,
        seed=config.seed,
        shards=[shard_results[task.shard_id] for task in tasks],
    )
    result.wall_seconds = time.perf_counter() - wall_started
    result.jobs = jobs
    result.shard_seconds = {
        shard_id: seconds_by_shard[shard_id] for shard_id in sorted(seconds_by_shard)
    }
    emit(result.summary() + f"; wall {result.wall_seconds:.1f}s at jobs={jobs}")
    return result
