"""Fleet topology: tenants, shards, and the stable tenant→shard placement.

A fleet is N *tenants* (independent backup sources, each running its own
rotation) hashed across M *shards* (independent index/store partitions,
each a full :class:`~repro.backup.service.BackupService` stack).  Because
placement is a pure hash of the tenant name, it is stable across runs,
processes, and Python versions — the property the process-parallel runner
leans on: a shard's work is a pure function of its tenant set, so shards
can execute anywhere and merge deterministically.

**Balance bound.**  Placement uses :func:`~repro.util.rng.derive_seed`
(BLAKE2b, 64-bit) reduced mod ``num_shards``, which behaves as a uniform
hash.  The documented bound — enforced by the property test in
``tests/test_fleet.py`` — is: for ``T`` tenants over ``S`` shards with
``T ≥ 64·S``, every shard holds between ``T/(2S)`` and ``2T/S`` tenants.
(Binomial concentration makes violations astronomically unlikely: at the
bound's tightest point the slack is >4 standard deviations.)

**Dedup domains.**  ``dedup_domain`` selects what a shard's tenants share:

* ``"shared"`` — one service per shard; every tenant on the shard
  deduplicates against every other (cross-tenant dedup, shared GC).
* ``"tenant"`` — one service per tenant (full isolation: no cross-tenant
  dedup, per-tenant GC cost, no shared-index contention).

Comparing the two domains on the same tenant set quantifies the paper-era
trade-off RevDedup (arXiv 1302.0621) motivates: dedup ratio vs. isolation
vs. GC cost.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.backup.approaches import APPROACHES
from repro.backup.options import DEDUP_MODES, GC_MODES
from repro.errors import ConfigError
from repro.util.rng import derive_seed
from repro.workloads.datasets import DATASET_NAMES, DEFAULT_SEED

#: Root of the placement hash space; part of the fleet's determinism
#: contract (changing it reshuffles every fleet's tenant→shard map).
PLACEMENT_SEED = 0xF1EE7

#: Valid ``dedup_domain`` values.
DEDUP_DOMAINS = ("shared", "tenant")


def shard_of(tenant_name: str, num_shards: int) -> int:
    """The shard a tenant lives on: a stable BLAKE2b hash of its name."""
    if num_shards <= 0:
        raise ConfigError(f"num_shards must be positive, got {num_shards}")
    return derive_seed(PLACEMENT_SEED, tenant_name) % num_shards


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: its name, workload preset, and stream identity.

    Two tenants sharing the same ``(dataset, workload_scale, num_backups,
    seed)`` tuple back up *identical* streams — the fleet's model for
    correlated sources (golden OS images, shared application data), and
    exactly what the per-shard :class:`~repro.workloads.WorkloadCache`
    memoizes.
    """

    name: str
    dataset: str
    workload_scale: float
    num_backups: int
    seed: int = DEFAULT_SEED

    def validate(self) -> None:
        if not self.name:
            raise ConfigError("tenant name must be non-empty")
        if self.dataset not in DATASET_NAMES:
            raise ConfigError(
                f"tenant {self.name!r}: unknown dataset {self.dataset!r}; "
                f"choose from {DATASET_NAMES}"
            )
        if self.workload_scale <= 0:
            raise ConfigError(f"tenant {self.name!r}: workload_scale must be positive")
        if self.num_backups <= 0:
            raise ConfigError(f"tenant {self.name!r}: num_backups must be positive")

    def stream_key(self) -> tuple:
        """The workload-cache key this tenant's stream is memoized under."""
        return (self.dataset, float(self.workload_scale), int(self.num_backups), int(self.seed))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "dataset": self.dataset,
            "workload_scale": self.workload_scale,
            "num_backups": self.num_backups,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TenantSpec":
        return cls(**data)


@dataclass(frozen=True)
class FleetConfig:
    """Everything a fleet run is a deterministic function of."""

    tenants: tuple[TenantSpec, ...]
    num_shards: int = 4
    approach: str = "gccdf"
    dedup_domain: str = "shared"
    #: Per-tenant retention window and per-rotation deletion count
    #: (the §6.1 rotation, applied tenant-by-tenant).
    retained: int = 6
    turnover: int = 2
    #: Simulated time between a tenant's consecutive backups.
    backup_period: float = 1.0
    #: Simulated time between shard-level GC epochs (GC only runs at an
    #: epoch when deletions are pending — see the scheduler).
    gc_period: float = 4.0
    #: GC execution mode: ``"stw"`` runs a whole stop-the-world cycle at
    #: each epoch; ``"incremental"`` begins a budgeted
    #: :class:`~repro.gc.incremental.IncrementalGC` cycle at the epoch and
    #: advances it through interleaved ``gc_step`` requests.
    gc_mode: str = "stw"
    #: Dedup mode of every shard's services: ``"inline"`` probes the full
    #: fingerprint index per chunk; ``"hybrid"`` defers neighbor-missed
    #: duplicates and coalesces them during GC (see
    #: :mod:`repro.dedup.hybrid`).
    dedup_mode: str = "inline"
    #: Simulated time between ``gc_step`` requests (incremental mode only).
    gc_step_period: float = 0.25
    #: Per-increment budgets (incremental mode only): recipes marked per
    #: step, and sweep sources / MFDedup volumes processed per step.
    gc_mark_budget: int = 8
    gc_sweep_budget: int = 4
    #: Utilization trigger: a new cycle begins at a GC epoch only once at
    #: least this many deletions are pending (the final epoch always
    #: collects everything, so the fleet ends garbage-free in both modes).
    gc_trigger_deleted: int = 1
    #: Read-serving traffic: jittered point reads per tenant against its
    #: oldest live backup, issued after the tenant's restore (0 = none).
    read_requests: int = 0
    #: Fraction of the target backup's logical size each point read covers.
    read_fraction: float = 0.0625
    #: Root seed for scheduler jitter and per-service (GCCDF migration) RNGs.
    seed: int = 2025

    def __post_init__(self):
        object.__setattr__(self, "tenants", tuple(self.tenants))

    def validate(self) -> None:
        if not self.tenants:
            raise ConfigError("a fleet needs at least one tenant")
        if self.num_shards <= 0:
            raise ConfigError(f"num_shards must be positive, got {self.num_shards}")
        if self.approach not in APPROACHES:
            raise ConfigError(
                f"unknown approach {self.approach!r}; choose from {APPROACHES}"
            )
        if self.dedup_domain not in DEDUP_DOMAINS:
            raise ConfigError(
                f"unknown dedup_domain {self.dedup_domain!r}; "
                f"choose from {DEDUP_DOMAINS}"
            )
        if self.retained <= 0 or self.turnover <= 0:
            raise ConfigError("retained and turnover must be positive")
        if self.turnover > self.retained:
            raise ConfigError("cannot turn over more backups than are retained")
        if self.backup_period <= 0 or self.gc_period <= 0:
            raise ConfigError("backup_period and gc_period must be positive")
        if self.gc_mode not in GC_MODES:
            raise ConfigError(
                f"unknown gc_mode {self.gc_mode!r}; choose one of {GC_MODES}"
            )
        if self.dedup_mode not in DEDUP_MODES:
            raise ConfigError(
                f"unknown dedup_mode {self.dedup_mode!r}; choose one of "
                f"{DEDUP_MODES}"
            )
        if self.gc_step_period <= 0:
            raise ConfigError("gc_step_period must be positive")
        if self.gc_mark_budget < 1 or self.gc_sweep_budget < 1:
            raise ConfigError("gc budgets must be >= 1")
        if self.gc_trigger_deleted < 1:
            raise ConfigError("gc_trigger_deleted must be >= 1")
        if self.read_requests < 0:
            raise ConfigError(
                f"read_requests must be >= 0, got {self.read_requests}"
            )
        if not 0 < self.read_fraction <= 1:
            raise ConfigError(
                f"read_fraction must be in (0, 1], got {self.read_fraction}"
            )
        names = set()
        for tenant in self.tenants:
            tenant.validate()
            if tenant.name in names:
                raise ConfigError(f"duplicate tenant name {tenant.name!r}")
            names.add(tenant.name)

    def shard_tenants(self) -> tuple[tuple[TenantSpec, ...], ...]:
        """Tenants grouped by shard, preserving fleet declaration order
        within each shard (index = shard id)."""
        groups: list[list[TenantSpec]] = [[] for _ in range(self.num_shards)]
        for tenant in self.tenants:
            groups[shard_of(tenant.name, self.num_shards)].append(tenant)
        return tuple(tuple(group) for group in groups)

    def describe(self) -> str:
        return (
            f"{len(self.tenants)} tenants / {self.num_shards} shards, "
            f"approach={self.approach}, domain={self.dedup_domain}, "
            f"retention {self.retained}/{self.turnover}"
        )

    def with_overrides(self, **kwargs) -> "FleetConfig":
        """A copy with the given fields replaced (validated)."""
        config = replace(self, **kwargs)
        config.validate()
        return config

    @classmethod
    def synthetic(
        cls,
        num_tenants: int,
        num_shards: int,
        *,
        datasets: Sequence[str] = ("web", "mix", "code", "syn"),
        workload_scale: float = 0.05,
        backups_per_tenant: int = 10,
        stream_pool: int | None = None,
        approach: str = "gccdf",
        dedup_domain: str = "shared",
        retained: int = 6,
        turnover: int = 2,
        backup_period: float = 1.0,
        gc_period: float = 4.0,
        gc_mode: str = "stw",
        dedup_mode: str = "inline",
        gc_step_period: float = 0.25,
        gc_mark_budget: int = 8,
        gc_sweep_budget: int = 4,
        gc_trigger_deleted: int = 1,
        read_requests: int = 0,
        read_fraction: float = 0.0625,
        seed: int = 2025,
    ) -> "FleetConfig":
        """A synthetic fleet: tenants round-robin over ``datasets``.

        ``stream_pool`` bounds the number of *distinct* workload streams per
        dataset: tenant ``i`` draws its stream seed from pool slot
        ``i % stream_pool``, so tenants sharing a slot (and dataset) back up
        identical data — the correlated-sources regime where cross-tenant
        dedup domains win and the workload cache pays.  ``None`` gives every
        tenant its own stream.
        """
        if num_tenants <= 0:
            raise ConfigError(f"num_tenants must be positive, got {num_tenants}")
        if stream_pool is not None and stream_pool <= 0:
            raise ConfigError(f"stream_pool must be positive or None, got {stream_pool}")
        tenants = []
        for i in range(num_tenants):
            name = f"t{i:05d}"
            dataset_name = datasets[i % len(datasets)]
            slot = i % stream_pool if stream_pool is not None else i
            tenants.append(
                TenantSpec(
                    name=name,
                    dataset=dataset_name,
                    workload_scale=workload_scale,
                    num_backups=backups_per_tenant,
                    seed=derive_seed(seed, "stream", dataset_name, slot),
                )
            )
        config = cls(
            tenants=tuple(tenants),
            num_shards=num_shards,
            approach=approach,
            dedup_domain=dedup_domain,
            retained=retained,
            turnover=turnover,
            backup_period=backup_period,
            gc_period=gc_period,
            gc_mode=gc_mode,
            dedup_mode=dedup_mode,
            gc_step_period=gc_step_period,
            gc_mark_budget=gc_mark_budget,
            gc_sweep_budget=gc_sweep_budget,
            gc_trigger_deleted=gc_trigger_deleted,
            read_requests=read_requests,
            read_fraction=read_fraction,
            seed=seed,
        )
        config.validate()
        return config
