"""Fleet run results: per-shard and fleet-aggregated, exactly serializable.

Determinism contract: :meth:`FleetResult.to_dict` (and its canonical JSON
form) is a pure function of the :class:`~repro.fleet.topology.FleetConfig`
— it contains *no* wall-clock time, worker identity, or job count, so a
``jobs=N`` run serializes byte-identically to ``jobs=1``.  Wall-clock
seconds and the job count live on the result object (``wall_seconds``,
``jobs``) for benchmarks and progress lines, but are deliberately excluded
from serialization.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.obs.metrics import merge_metric_payloads


@dataclass
class ShardResult:
    """Everything one shard's execution produced, in plain data."""

    shard_id: int
    #: Tenant names served by this shard, in fleet declaration order.
    tenants: list[str] = field(default_factory=list)
    #: Executed request counts per kind (``gc_skipped`` counts epochs that
    #: found no pending deletions).
    requests: dict[str, int] = field(default_factory=dict)
    #: Summed :class:`~repro.backup.service.ServiceStats` fields over the
    #: shard's services (one service in the shared domain, one per tenant
    #: in the tenant domain).
    stats: dict[str, int] = field(default_factory=dict)
    #: Per-tenant scalar summaries (backups, bytes, restore accounting).
    tenant_summaries: dict[str, dict] = field(default_factory=dict)
    #: Shard-scoped :class:`~repro.obs.metrics.MetricsRegistry` payload.
    metrics: dict = field(default_factory=dict)
    #: Nonzero per-ingest stall samples (simulated seconds an ingest
    #: queued behind GC device time), in request order.  Zero-stall
    #: ingests are implied by the ``fleet.ingest_stall`` histogram count,
    #: so quantiles over *all* ingests are exact without shipping zeros.
    ingest_stalls: list[float] = field(default_factory=list)
    #: Per-GC-burst device-time samples (simulated seconds), request order.
    gc_pauses: list[float] = field(default_factory=list)
    #: Per-read simulated latency samples (every ``read`` request ships its
    #: sample — reads are few, so fleet quantiles are exact), request order.
    read_latencies: list[float] = field(default_factory=list)

    @property
    def dedup_ratio(self) -> float:
        stored = self.stats.get("cumulative_stored_bytes", 0)
        logical = self.stats.get("cumulative_logical_bytes", 0)
        if stored == 0:
            return float("inf") if logical else 1.0
        return logical / stored

    def to_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "tenants": list(self.tenants),
            "requests": dict(self.requests),
            "stats": dict(self.stats),
            "tenant_summaries": {k: dict(v) for k, v in self.tenant_summaries.items()},
            "metrics": self.metrics,
            "ingest_stalls": list(self.ingest_stalls),
            "gc_pauses": list(self.gc_pauses),
            "read_latencies": list(self.read_latencies),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardResult":
        return cls(
            shard_id=data["shard_id"],
            tenants=list(data["tenants"]),
            requests=dict(data["requests"]),
            stats=dict(data["stats"]),
            tenant_summaries={k: dict(v) for k, v in data["tenant_summaries"].items()},
            metrics=dict(data["metrics"]),
            ingest_stalls=list(data.get("ingest_stalls", [])),
            gc_pauses=list(data.get("gc_pauses", [])),
            read_latencies=list(data.get("read_latencies", [])),
        )


@dataclass
class FleetResult:
    """A whole fleet run: config echo, per-shard results, merged metrics."""

    approach: str
    dedup_domain: str
    num_tenants: int
    num_shards: int
    seed: int
    shards: list[ShardResult] = field(default_factory=list)
    #: Fleet-wide metrics: every shard's payload folded together
    #: (:func:`~repro.obs.metrics.merge_metric_payloads`).
    metrics: dict = field(default_factory=dict)
    #: Wall-clock seconds of the run — set by the runner, excluded from
    #: serialization (jobs-count independence).
    wall_seconds: float = 0.0
    #: Worker processes used — excluded from serialization.
    jobs: int = 1
    #: Per-shard execution seconds (shard id → wall seconds inside the
    #: worker) — set by the runner, excluded from serialization.  The
    #: fleet benchmark reads these to compute the ideal parallel speedup
    #: ``sum(shard_seconds) / max(shard_seconds)``.
    shard_seconds: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Fleet-level aggregates (read off the merged metrics payload)
    # ------------------------------------------------------------------

    def _counter(self, name: str) -> int | float:
        return self.metrics.get("counters", {}).get(name, 0)

    def _histogram_mean(self, name: str) -> float:
        hist = self.metrics.get("histograms", {}).get(name)
        if not hist or not hist.get("count"):
            return 0.0
        return hist["sum"] / hist["count"]

    @property
    def dedup_ratio(self) -> float:
        """Whole-fleet actual dedup ratio (paper §6.2 accounting, summed
        over every service on every shard)."""
        stored = self._counter("service.cumulative_stored_bytes")
        logical = self._counter("service.cumulative_logical_bytes")
        if stored == 0:
            return float("inf") if logical else 1.0
        return logical / stored

    @property
    def mean_read_amplification(self) -> float:
        """Mean per-backup read amplification across every restore."""
        return self._histogram_mean("restore.read_amplification")

    @property
    def restore_speed(self) -> float:
        """Aggregate restore bytes per simulated second, fleet-wide."""
        total_bytes = self._counter("restore.logical_bytes")
        total_seconds = self._counter("phase_seconds.restore")
        if total_seconds == 0.0:
            return float("inf") if total_bytes else 0.0
        return total_bytes / total_seconds

    def ingest_stall_quantiles(self) -> dict[str, float]:
        """Exact ingest-stall quantiles over *every* ingest, fleet-wide.

        The ``fleet.ingest_stall`` histogram holds the total sample count
        (one per ingest, zeros included); the shards ship only the nonzero
        samples.  Quantiles are computed over the implied
        ``zeros + sorted(nonzero)`` population — the p99 the incremental-GC
        benchmark gates on.
        """
        hist = self.metrics.get("histograms", {}).get("fleet.ingest_stall")
        total = int(hist["count"]) if hist else 0
        nonzero = sorted(
            stall for shard in self.shards for stall in shard.ingest_stalls
        )
        if total <= 0:
            return {"p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
        zeros = total - len(nonzero)
        quantiles = {}
        for label, p in (("p50", 0.50), ("p90", 0.90), ("p99", 0.99)):
            # Nearest-rank on the full population of `total` samples.
            rank = max(1, -(-int(p * 1000) * total // 1000))  # ceil(p*total)
            index = rank - 1
            quantiles[label] = 0.0 if index < zeros else nonzero[index - zeros]
        quantiles["max"] = nonzero[-1] if nonzero else 0.0
        return quantiles

    def read_latency_quantiles(self) -> dict[str, float]:
        """Exact simulated-latency quantiles over every ``read`` request,
        fleet-wide (nearest-rank; every sample ships in the shard results,
        so no zeros are implied).  All-zero when the fleet ran no reads."""
        samples = sorted(
            latency for shard in self.shards for latency in shard.read_latencies
        )
        total = len(samples)
        if total == 0:
            return {"p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
        quantiles = {}
        for label, p in (("p50", 0.50), ("p90", 0.90), ("p99", 0.99)):
            rank = max(1, -(-int(p * 1000) * total // 1000))  # ceil(p*total)
            quantiles[label] = samples[rank - 1]
        quantiles["max"] = samples[-1]
        return quantiles

    @property
    def total_requests(self) -> int:
        return sum(
            sum(shard.requests.values()) for shard in self.shards
        )

    @property
    def chunk_ops(self) -> int:
        """Chunk-granular operations executed: ingested + restored chunks."""
        return int(self._counter("ingest.chunks") + self._counter("restore.chunks"))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Deterministic plain-data form (no wall-clock, no job count)."""
        return {
            "approach": self.approach,
            "dedup_domain": self.dedup_domain,
            "num_tenants": self.num_tenants,
            "num_shards": self.num_shards,
            "seed": self.seed,
            "shards": [shard.to_dict() for shard in self.shards],
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetResult":
        return cls(
            approach=data["approach"],
            dedup_domain=data["dedup_domain"],
            num_tenants=data["num_tenants"],
            num_shards=data["num_shards"],
            seed=data["seed"],
            shards=[ShardResult.from_dict(d) for d in data["shards"]],
            metrics=dict(data["metrics"]),
        )

    def canonical_json(self) -> str:
        """Byte-deterministic JSON of :meth:`to_dict` — the form the
        ``--jobs`` determinism gate byte-compares."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def summary(self) -> str:
        return (
            f"fleet[{self.approach}/{self.dedup_domain}]: "
            f"{self.num_tenants} tenants / {self.num_shards} shards, "
            f"{self.total_requests} requests, {self.chunk_ops} chunk ops, "
            f"dedup {self.dedup_ratio:.2f}, "
            f"read amp {self.mean_read_amplification:.2f}"
        )


def merge_shard_results(
    approach: str,
    dedup_domain: str,
    num_tenants: int,
    num_shards: int,
    seed: int,
    shards: list[ShardResult],
) -> FleetResult:
    """Fold shard results (sorted by shard id) into one :class:`FleetResult`."""
    ordered = sorted(shards, key=lambda shard: shard.shard_id)
    return FleetResult(
        approach=approach,
        dedup_domain=dedup_domain,
        num_tenants=num_tenants,
        num_shards=num_shards,
        seed=seed,
        shards=ordered,
        metrics=merge_metric_payloads(shard.metrics for shard in ordered),
    )
