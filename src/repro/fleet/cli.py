"""``repro-fleet`` — run a sharded multi-tenant backup fleet.

Usage::

    repro-fleet --preset quick --jobs 4
    repro-fleet --tenants 1200 --shards 8 --domain shared --jobs 4 \\
        --out fleet.json --trace fleet_trace.jsonl
    python -m repro.fleet --preset quick --domain tenant

Presets fix a synthetic fleet's size (tenants, shards, per-tenant backup
counts, workload scale, stream pool); every knob can be overridden
individually.  The fleet result summary goes to stdout (byte-stable across
``--jobs`` values); progress lines go to stderr; ``--out`` writes the full
:class:`~repro.fleet.result.FleetResult` as JSON.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.backup.approaches import APPROACHES
from repro.errors import ConfigError
from repro.fleet.runner import run_fleet
from repro.fleet.topology import DEDUP_DOMAINS, FleetConfig
from repro.util.units import format_bytes
from repro.workloads.datasets import DATASET_NAMES

#: Synthetic fleet presets: (tenants, shards, backups/tenant, workload
#: scale, stream pool, retained, turnover).  ``quick`` is the CI smoke;
#: ``medium`` is the benchmark's headline scale (thousands of tenants,
#: millions of chunk ops); ``large`` is for dedicated machines.
FLEET_PRESETS = {
    "quick": dict(
        num_tenants=48, num_shards=6, backups_per_tenant=8,
        workload_scale=0.03, stream_pool=6, retained=4, turnover=2,
    ),
    "medium": dict(
        num_tenants=1200, num_shards=8, backups_per_tenant=10,
        workload_scale=0.05, stream_pool=12, retained=6, turnover=2,
    ),
    "large": dict(
        num_tenants=4000, num_shards=16, backups_per_tenant=12,
        workload_scale=0.05, stream_pool=16, retained=8, turnover=2,
    ),
}


def resolve_preset(name: str) -> dict:
    """The preset's parameter dict, or a :class:`ConfigError` naming the
    valid presets — never a silent fallback or a bare ``KeyError``."""
    try:
        return dict(FLEET_PRESETS[name])
    except KeyError:
        raise ConfigError(
            f"unknown fleet preset {name!r}; choose from {sorted(FLEET_PRESETS)}"
        ) from None


def build_config(args: argparse.Namespace) -> FleetConfig:
    """Resolve preset + overrides into a validated :class:`FleetConfig`."""
    params = resolve_preset(args.preset)
    if args.tenants is not None:
        params["num_tenants"] = args.tenants
    if args.shards is not None:
        params["num_shards"] = args.shards
    if args.backups is not None:
        params["backups_per_tenant"] = args.backups
    if args.workload_scale is not None:
        params["workload_scale"] = args.workload_scale
    if args.stream_pool is not None:
        params["stream_pool"] = args.stream_pool or None
    if args.retained is not None:
        params["retained"] = args.retained
    if args.turnover is not None:
        params["turnover"] = args.turnover
    datasets = tuple(
        name.strip() for name in args.datasets.split(",") if name.strip()
    )
    return FleetConfig.synthetic(
        params.pop("num_tenants"),
        params.pop("num_shards"),
        datasets=datasets,
        approach=args.approach,
        dedup_domain=args.domain,
        gc_mode=args.gc_mode,
        dedup_mode=args.dedup_mode,
        gc_step_period=args.gc_step_period,
        gc_mark_budget=args.gc_mark_budget,
        gc_sweep_budget=args.gc_sweep_budget,
        gc_trigger_deleted=args.gc_trigger,
        read_requests=args.reads,
        read_fraction=args.read_fraction,
        seed=args.seed,
        **params,
    )


def print_result(result, verbose: bool) -> None:
    print(f"approach:            {result.approach}")
    print(f"dedup domain:        {result.dedup_domain}")
    print(f"tenants / shards:    {result.num_tenants} / {result.num_shards}")
    print(f"requests executed:   {result.total_requests}")
    print(f"chunk operations:    {result.chunk_ops}")
    print(f"fleet dedup ratio:   {result.dedup_ratio:.2f}")
    print(f"mean read amp:       {result.mean_read_amplification:.2f}")
    print(f"restore speed:       {result.restore_speed / (1 << 20):.1f} MiB/s (simulated)")
    counters = result.metrics.get("counters", {})
    print(
        "workload cache:      "
        f"{counters.get('runtime.workload_cache.hits', 0)} hits / "
        f"{counters.get('runtime.workload_cache.misses', 0)} misses"
    )
    physical = counters.get("service.physical_bytes", 0)
    print(f"physical bytes:      {format_bytes(int(physical))}")
    if counters.get("read.requests", 0):
        quantiles = result.read_latency_quantiles()
        print(
            "read latency:        "
            f"p50 {quantiles['p50'] * 1000:.2f}ms / "
            f"p99 {quantiles['p99'] * 1000:.2f}ms / "
            f"max {quantiles['max'] * 1000:.2f}ms (simulated, "
            f"{int(counters['read.requests'])} reads)"
        )
    if verbose:
        for shard in result.shards:
            print(
                f"  shard {shard.shard_id}: {len(shard.tenants)} tenants, "
                f"{sum(shard.requests.values())} requests, "
                f"dedup {shard.dedup_ratio:.2f}, "
                f"{format_bytes(shard.stats.get('physical_bytes', 0))} stored"
            )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fleet",
        description="Sharded multi-tenant backup fleet on simulated time.",
    )
    parser.add_argument(
        "--preset", default="quick",
        help=f"synthetic fleet size preset, one of {sorted(FLEET_PRESETS)} "
        "(default: %(default)s)",
    )
    parser.add_argument("--tenants", type=int, help="override tenant count")
    parser.add_argument("--shards", type=int, help="override shard count")
    parser.add_argument(
        "--approach", choices=APPROACHES, default="gccdf", help="backup approach"
    )
    parser.add_argument(
        "--domain", choices=DEDUP_DOMAINS, default="shared",
        help="dedup domain: shared (cross-tenant per shard) or tenant (isolated)",
    )
    parser.add_argument(
        "--datasets", default="web,mix,code,syn",
        help="comma-separated dataset presets tenants round-robin over",
    )
    parser.add_argument("--backups", type=int, help="override backups per tenant")
    parser.add_argument(
        "--workload-scale", type=float, help="override per-tenant workload scale"
    )
    parser.add_argument(
        "--stream-pool", type=int,
        help="distinct streams per dataset (0 = every tenant unique)",
    )
    parser.add_argument("--retained", type=int, help="override retention window")
    parser.add_argument("--turnover", type=int, help="override per-rotation deletions")
    parser.add_argument(
        "--gc-mode", choices=("stw", "incremental"), default="stw",
        help="GC execution mode: stop-the-world epochs or budgeted "
        "increments interleaved with foreground traffic (default: %(default)s)",
    )
    parser.add_argument(
        "--dedup-mode", choices=("inline", "hybrid"), default="inline",
        help="dedup mode: inline full-index probes, or hybrid "
        "neighbor/Bloom classification with GC-time coalescing "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--gc-step-period", type=float, default=0.25,
        help="simulated time between gc_step requests in incremental mode "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--gc-mark-budget", type=int, default=8,
        help="recipes marked per GC increment (default: %(default)s)",
    )
    parser.add_argument(
        "--gc-sweep-budget", type=int, default=4,
        help="sweep sources / MFDedup volumes per GC increment (default: %(default)s)",
    )
    parser.add_argument(
        "--gc-trigger", type=int, default=1,
        help="pending deletions required before an epoch starts a new "
        "incremental cycle (default: %(default)s)",
    )
    parser.add_argument(
        "--reads", type=int, default=0,
        help="jittered point reads per tenant against its oldest live "
        "backup, after the restore phase (default: %(default)s = none)",
    )
    parser.add_argument(
        "--read-fraction", type=float, default=0.0625,
        help="fraction of the backup's logical size each point read covers "
        "(default: %(default)s)",
    )
    parser.add_argument("--seed", type=int, default=2025, help="fleet seed")
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for shards (default: CPU count)",
    )
    parser.add_argument("--out", metavar="PATH", help="write FleetResult JSON here")
    parser.add_argument(
        "--trace", metavar="PATH",
        help="write the merged JSONL trace of every shard's event stream",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="print per-shard summary lines"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    for name in args.datasets.split(","):
        if name.strip() and name.strip() not in DATASET_NAMES:
            parser.error(f"unknown dataset {name.strip()!r}; choose from {DATASET_NAMES}")

    def progress(line: str) -> None:
        print(line, file=sys.stderr, flush=True)

    try:
        config = build_config(args)
        result = run_fleet(
            config, jobs=args.jobs, trace_path=args.trace, progress=progress
        )
    except ConfigError as exc:
        parser.error(str(exc))

    print_result(result, verbose=args.verbose)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        progress(f"result written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
