"""Fleet jobs-scaling benchmark — writes ``BENCH_fleet.json``.

Runs the same fleet twice — serial (``jobs=1``) and process-parallel
(``--jobs N``, default 4) — and records:

* **determinism** (hard gate, exit 1 on failure): the parallel run's
  :meth:`~repro.fleet.result.FleetResult.canonical_json` and merged JSONL
  trace must be byte-identical to the serial run's;
* **headline speedup**: serial wall / parallel wall, plus the *ideal*
  speedup ``sum(shard_seconds) / max(shard_seconds)`` implied by the
  serial run's per-shard compute times (what a perfectly parallel
  machine with ≥ ``min(jobs, shards)`` cores would achieve).

The speedup gate (``--min-speedup``, default 2.0) is enforced only when
the machine actually has at least ``jobs`` usable cores — on smaller
boxes (including 1-2 core CI runners) the measured speedup is recorded
report-only and the *ideal* speedup is gated instead, since the latter is
a property of the fleet's shard balance, not of the host.

Usage::

    PYTHONPATH=src python benchmarks/fleet.py --preset medium --jobs 4
    PYTHONPATH=src python benchmarks/fleet.py --preset quick --no-gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path

from repro.errors import ConfigError
from repro.fleet.cli import FLEET_PRESETS, resolve_preset
from repro.fleet.runner import run_fleet
from repro.fleet.topology import FleetConfig


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_config(args: argparse.Namespace) -> FleetConfig:
    params = resolve_preset(args.preset)
    if args.tenants is not None:
        params["num_tenants"] = args.tenants
    if args.shards is not None:
        params["num_shards"] = args.shards
    return FleetConfig.synthetic(
        params.pop("num_tenants"),
        params.pop("num_shards"),
        approach=args.approach,
        seed=args.seed,
        **params,
    )


def run_benchmark(args: argparse.Namespace) -> tuple[dict, bool]:
    """Execute both runs; returns (payload, ok)."""
    config = build_config(args)
    cpus = usable_cpus()

    def progress(line: str) -> None:
        print(f"  {line}", file=sys.stderr, flush=True)

    payload: dict = {
        "preset": args.preset,
        "tenants": len(config.tenants),
        "shards": config.num_shards,
        "approach": config.approach,
        "dedup_domain": config.dedup_domain,
        "cpu_count": cpus,
        "jobs": args.jobs,
    }

    with tempfile.TemporaryDirectory() as tmp:
        serial_trace = Path(tmp) / "serial.jsonl"
        parallel_trace = Path(tmp) / "parallel.jsonl"

        print(f"serial run (jobs=1): {config.describe()}", file=sys.stderr)
        serial = run_fleet(config, jobs=1, trace_path=serial_trace, progress=progress)
        print(f"parallel run (jobs={args.jobs})", file=sys.stderr)
        parallel = run_fleet(
            config, jobs=args.jobs, trace_path=parallel_trace, progress=progress
        )

        result_identical = serial.canonical_json() == parallel.canonical_json()
        trace_identical = serial_trace.read_bytes() == parallel_trace.read_bytes()
        trace_events = sum(1 for _ in serial_trace.open())

    shard_seconds = dict(serial.shard_seconds)
    busy = [s for s in shard_seconds.values() if s > 0]
    ideal_speedup = (sum(busy) / max(busy)) if busy else 1.0
    measured_speedup = (
        serial.wall_seconds / parallel.wall_seconds if parallel.wall_seconds else 0.0
    )

    payload.update(
        {
            "chunk_ops": parallel.chunk_ops,
            "total_requests": parallel.total_requests,
            "dedup_ratio": parallel.dedup_ratio,
            "mean_read_amplification": parallel.mean_read_amplification,
            "determinism": {
                "result_identical": result_identical,
                "trace_identical": trace_identical,
                "trace_events": trace_events,
            },
            "wall_seconds": {
                "jobs_1": serial.wall_seconds,
                f"jobs_{args.jobs}": parallel.wall_seconds,
            },
            "shard_seconds": {str(k): v for k, v in shard_seconds.items()},
            "headline": {
                "measured_speedup": measured_speedup,
                "ideal_speedup": ideal_speedup,
                "min_speedup": args.min_speedup,
                # Wall-clock speedup is only a fair gate when the host can
                # actually run the workers concurrently.
                "gate_on_measured": cpus >= args.jobs,
            },
        }
    )

    ok = result_identical and trace_identical
    if not ok:
        print("FAIL: jobs=N output is not byte-identical to jobs=1", file=sys.stderr)
    elif not args.no_gate:
        gated = measured_speedup if cpus >= args.jobs else ideal_speedup
        kind = "measured" if cpus >= args.jobs else f"ideal (host has {cpus} cpu)"
        if gated < args.min_speedup:
            print(
                f"FAIL: {kind} speedup {gated:.2f}x < {args.min_speedup:.2f}x",
                file=sys.stderr,
            )
            ok = False
        else:
            print(f"gate passed: {kind} speedup {gated:.2f}x", file=sys.stderr)
    payload["gate_passed"] = ok
    return payload, ok


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Fleet jobs-scaling benchmark (determinism + speedup)."
    )
    parser.add_argument(
        "--preset", default="medium",
        help=f"fleet size preset, one of {sorted(FLEET_PRESETS)} "
        "(default: %(default)s)",
    )
    parser.add_argument("--tenants", type=int, help="override tenant count")
    parser.add_argument("--shards", type=int, help="override shard count")
    parser.add_argument("--approach", default="gccdf", help="backup approach")
    parser.add_argument("--seed", type=int, default=2025, help="fleet seed")
    parser.add_argument(
        "--jobs", type=int, default=4, help="parallel job count (default: %(default)s)"
    )
    parser.add_argument(
        "--min-speedup", type=float, default=2.0,
        help="speedup gate threshold (default: %(default)s)",
    )
    parser.add_argument(
        "--no-gate", action="store_true",
        help="record speedup report-only (determinism is always gated)",
    )
    parser.add_argument(
        "--out", default="BENCH_fleet.json", help="output path (default: %(default)s)"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.jobs < 2:
        build_parser().error("--jobs must be >= 2 (the point is the comparison)")
    try:
        payload, ok = run_benchmark(args)
    except ConfigError as exc:
        build_parser().error(str(exc))
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"benchmark written to {args.out}", file=sys.stderr)
    print(
        json.dumps(
            {
                "determinism": payload["determinism"]["result_identical"]
                and payload["determinism"]["trace_identical"],
                "measured_speedup": round(payload["headline"]["measured_speedup"], 3),
                "ideal_speedup": round(payload["headline"]["ideal_speedup"], 3),
                "chunk_ops": payload["chunk_ops"],
            }
        )
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
