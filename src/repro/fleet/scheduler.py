"""Deterministic simulated-time request scheduler for one shard.

The scheduler turns a shard's tenant set into one merged, totally ordered
request sequence — the fleet's analogue of the single-tenant
:class:`~repro.backup.driver.RotationDriver` protocol, interleaved across
tenants on simulated time:

* Tenant ``t`` issues backup ``k`` at ``(k + jitter_t) · backup_period``,
  where ``jitter_t ∈ [0, 1)`` is derived from the fleet seed and the tenant
  name.  Jitter staggers tenants within a period, so a shard's ingest
  stream interleaves its tenants in a reproducible but non-trivial order —
  the regime where neighbor-only dedup collapses (paper §3.1).
* Once a tenant's retention window is full, every ``turnover``-th ingest is
  preceded by a ``rotate`` request (logically delete the tenant's oldest
  ``turnover`` backups), and one final rotate lands after its last ingest —
  the §6.1 rotation, per tenant.
* The *shard* runs GC at fixed epochs ``g · gc_period`` (plus one final
  epoch after the last rotate).  An epoch with no pending deletions is
  skipped by the shard runner — GC is a shard-level background job, not a
  per-tenant one, matching how an appliance amortises GC across tenants.
* In *incremental* GC mode the schedule additionally carries ``gc_step``
  requests every ``gc_step_period`` between epochs: each advances the
  in-flight :class:`~repro.gc.incremental.IncrementalGC` cycle by one
  budgeted increment, so collection runs *between* foreground requests
  instead of stalling them at the epoch.  Steps with no active cycle are
  free no-ops, and stop-the-world schedules carry no steps at all —
  stop-the-world fleets are bit-for-bit unchanged by this mode existing.
* After the final GC epoch each tenant issues one ``restore`` request
  covering all its live backups.
* With ``read_requests > 0`` each tenant then issues that many ``read``
  requests — jittered point reads against its *oldest* live backup (the
  serving layer's aged-backup traffic class) — spaced one per
  ``backup_period`` after its restore, each with its own derived jitter.

Total order: requests sort by ``(time, kind priority, tenant, backup)``
with priority rotate < gc < gc_step < ingest < restore < read, so ties at
one instant replay the driver's delete → GC → ingest round structure.
The schedule is a pure function of ``(tenants, retention, periods,
seed)`` — no wall clock, no process state — which is what makes
``--jobs N`` shard execution byte-identical to serial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.fleet.topology import TenantSpec
from repro.util.rng import DeterministicRng, derive_seed

#: Tie-break order for requests landing on the same simulated instant.
KIND_PRIORITY = {
    "rotate": 0,
    "gc": 1,
    "gc_step": 2,
    "ingest": 3,
    "restore": 4,
    "read": 5,
}


@dataclass(frozen=True)
class Request:
    """One scheduled operation.  ``tenant`` is empty for shard-level GC."""

    time: float
    kind: str
    tenant: str = ""
    #: Index into the tenant's backup stream (ingest requests only).
    backup_index: int = -1

    def sort_key(self) -> tuple:
        return (self.time, KIND_PRIORITY[self.kind], self.tenant, self.backup_index)


def tenant_jitter(fleet_seed: int, tenant_name: str) -> float:
    """The tenant's phase offset within a backup period, in ``[0, 1)``."""
    return DeterministicRng(derive_seed(fleet_seed, "sched", tenant_name)).random()


def _tenant_requests(
    spec: TenantSpec,
    retained: int,
    turnover: int,
    backup_period: float,
    jitter: float,
) -> tuple[list[Request], float]:
    """One tenant's ingest/rotate sequence and its end time."""
    requests: list[Request] = []
    for k in range(spec.num_backups):
        at = (k + jitter) * backup_period
        if k >= retained and (k - retained) % turnover == 0:
            requests.append(Request(at, "rotate", spec.name))
        requests.append(Request(at, "ingest", spec.name, backup_index=k))
    end = (spec.num_backups + jitter) * backup_period
    requests.append(Request(end, "rotate", spec.name))
    return requests, end


def shard_schedule(
    tenants: Sequence[TenantSpec],
    retained: int,
    turnover: int,
    backup_period: float,
    gc_period: float,
    fleet_seed: int,
    gc_mode: str = "stw",
    gc_step_period: float = 0.25,
    read_requests: int = 0,
) -> tuple[Request, ...]:
    """The shard's full request sequence, merged and totally ordered."""
    requests: list[Request] = []
    horizon = 0.0
    jitters: dict[str, float] = {}
    for spec in tenants:
        jitter = tenant_jitter(fleet_seed, spec.name)
        jitters[spec.name] = jitter
        tenant_reqs, end = _tenant_requests(
            spec, retained, turnover, backup_period, jitter
        )
        requests.extend(tenant_reqs)
        horizon = max(horizon, end)

    # Periodic GC epochs across the active window, plus one final epoch at
    # the horizon — which coincides with the last rotate and, by kind
    # priority, runs right after it (the driver's final delete-then-GC).
    gc_times = set()
    epoch = 1
    while epoch * gc_period < horizon:
        gc_times.add(epoch * gc_period)
        epoch += 1
    gc_times.add(horizon)
    requests.extend(Request(at, "gc") for at in gc_times)

    # Incremental mode: budgeted GC steps between the epochs (an instant
    # already holding an epoch needs no step — the epoch itself advances
    # the cycle).
    if gc_mode == "incremental":
        step = 1
        while step * gc_step_period < horizon:
            at = step * gc_step_period
            if at not in gc_times:
                requests.append(Request(at, "gc_step"))
            step += 1

    # Restores after the final GC, staggered by the same per-tenant jitter.
    for spec in tenants:
        requests.append(
            Request(horizon + (1 + jitters[spec.name]) * backup_period, "restore", spec.name)
        )

    # Point reads against aged backups, after the tenant's restore: read
    # ``i`` lands ``(i + r_i)`` periods later, ``r_i ∈ [0, 1)`` derived
    # per (tenant, read index).  ``backup_index`` carries the read index
    # (the handler derives the request's offset from it).
    if read_requests > 0:
        for spec in tenants:
            base = horizon + (1 + jitters[spec.name]) * backup_period
            for i in range(read_requests):
                r = DeterministicRng(
                    derive_seed(fleet_seed, "read", spec.name, i)
                ).random()
                requests.append(
                    Request(
                        base + (i + r) * backup_period,
                        "read",
                        spec.name,
                        backup_index=i,
                    )
                )

    requests.sort(key=Request.sort_key)
    return tuple(requests)
