"""One shard's execution: services, the request loop, per-shard accounting.

:func:`execute_shard` is the process-pool worker entry point: it receives a
picklable :class:`ShardTask`, replays the shard's deterministic request
schedule against freshly built services, and ships back a plain-data
:class:`~repro.fleet.result.ShardResult` (plus the shard's trace events
when tracing).  Everything it computes is a pure function of the task, so
the runner can execute shards serially or fan them out over workers and
merge byte-identical results either way.

Dedup domains (see :mod:`repro.fleet.topology`):

* ``shared`` — one :class:`~repro.backup.service.BackupService` serves the
  whole shard; tenants deduplicate against each other and GC epochs sweep
  the shard-wide store.
* ``tenant`` — one service per tenant; a GC epoch visits each tenant
  service with pending deletions, in tenant declaration order.

Workload streams are materialised through a *shard-scoped*
:class:`~repro.workloads.WorkloadCache`: tenants sharing a stream tuple
reuse one generated stream, and because the cache's lifetime is exactly
one shard execution, its hit/miss counters (surfaced as
``runtime.workload_cache.*``) are identical whether the shard ran in the
parent process or a worker.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.backup.approaches import service_factory
from repro.backup.options import ServiceOptions
from repro.backup.service import BackupService
from repro.config import SystemConfig
from repro.fleet.result import ShardResult
from repro.fleet.scheduler import Request, shard_schedule
from repro.fleet.topology import TenantSpec
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import TraceRecorder, Tracer
from repro.util.rng import DeterministicRng, derive_seed


@dataclass(frozen=True)
class ShardTask:
    """Everything one shard's execution depends on — picklable, pure."""

    shard_id: int
    tenants: tuple[TenantSpec, ...]
    approach: str
    dedup_domain: str
    retained: int
    turnover: int
    backup_period: float
    gc_period: float
    seed: int
    trace: bool = False
    gc_mode: str = "stw"
    dedup_mode: str = "inline"
    gc_step_period: float = 0.25
    gc_mark_budget: int = 8
    gc_sweep_budget: int = 4
    gc_trigger_deleted: int = 1
    read_requests: int = 0
    read_fraction: float = 0.0625


class _ShardExecutor:
    """Mutable state for one shard run (services, live ids, counters)."""

    def __init__(self, task: ShardTask, tracer: Tracer | None):
        from repro.workloads.datasets import WorkloadCache

        self.task = task
        self.tracer = tracer
        self.registry = MetricsRegistry()
        self.workloads = WorkloadCache()
        self.config = SystemConfig.scaled(
            retained=task.retained, turnover=task.turnover
        )
        gc_budget = None
        if task.gc_mode == "incremental":
            from repro.gc.incremental import GCBudget

            gc_budget = GCBudget(
                mark_recipes=task.gc_mark_budget,
                sweep_containers=task.gc_sweep_budget,
                mfdedup_volumes=task.gc_sweep_budget,
            )
        self.build = service_factory(
            task.approach,
            self.config,
            ServiceOptions(
                gc_mode=task.gc_mode,
                gc_budget=gc_budget,
                dedup_mode=task.dedup_mode,
            ),
        )
        #: service key → service; ``"@shard"`` in the shared domain, the
        #: tenant name in the tenant domain.  Built eagerly in declaration
        #: order so construction order (and any construction-time events)
        #: is deterministic.
        self.services: dict[str, BackupService] = {}
        if task.dedup_domain == "shared":
            self.services["@shard"] = self.build(
                seed=derive_seed(task.seed, "shard", task.shard_id), tracer=tracer
            )
        else:
            for spec in task.tenants:
                self.services[spec.name] = self.build(
                    seed=derive_seed(task.seed, "tenant", spec.name), tracer=tracer
                )
        self.pending_deletes: dict[str, int] = {key: 0 for key in self.services}
        #: Simulated instant until which each service's device is busy with
        #: GC — the stall model foreground requests queue behind.
        self.gc_busy_until: dict[str, float] = {key: 0.0 for key in self.services}
        #: Nonzero per-request samples (simulated seconds), in request
        #: order; the zero samples are implied by the matching histograms'
        #: counts, which is how the fleet computes exact quantiles without
        #: shipping every zero.
        self.ingest_stalls: list[float] = []
        self.gc_pauses: list[float] = []
        #: Simulated seconds of every ``read`` request, in request order —
        #: all samples ship (reads are few), so fleet quantiles are exact.
        self.read_latencies: list[float] = []
        #: Final GC epoch instant — set by :meth:`run` from the schedule.
        self.final_gc_time = 0.0
        self.live_ids: dict[str, list[int]] = {spec.name: [] for spec in task.tenants}
        self.streams: dict[str, tuple] = {}
        self.specs = {spec.name: spec for spec in task.tenants}
        self.requests_executed: dict[str, int] = {}
        self.tenant_summaries: dict[str, dict] = {
            spec.name: {
                "backups_ingested": 0,
                "logical_bytes": 0,
                "backups_restored": 0,
                "read_amplification_sum": 0.0,
                "live_backups": 0,
            }
            for spec in task.tenants
        }

    # ------------------------------------------------------------------
    # Request handlers
    # ------------------------------------------------------------------

    def _service_key(self, tenant: str) -> str:
        return "@shard" if self.task.dedup_domain == "shared" else tenant

    def _stream(self, tenant: str) -> tuple:
        stream = self.streams.get(tenant)
        if stream is None:
            spec = self.specs[tenant]
            stream = self.workloads.materialize(
                spec.dataset, spec.workload_scale, spec.num_backups, spec.seed
            )
            self.streams[tenant] = stream
        return stream

    def _note_gc_time(self, key: str, at: float, duration: float) -> None:
        """Account GC device time: extend the service's busy window and
        record the pause sample (both modes use the same stall model, so
        stop-the-world and incremental tail latencies are comparable)."""
        if duration <= 0:
            return
        start = max(at, self.gc_busy_until[key])
        self.gc_busy_until[key] = start + duration
        self.registry.observe("fleet.gc_pause", duration)
        self.gc_pauses.append(duration)

    def _ingest(self, request: Request) -> None:
        tenant = request.tenant
        key = self._service_key(tenant)
        # Foreground stall: how long this ingest queues behind GC device
        # time.  Zero-stall ingests still hit the histogram so quantiles
        # are over *all* ingests, not just the stalled ones.
        stall = self.gc_busy_until[key] - request.time
        stall = stall if stall > 0 else 0.0
        self.registry.observe("fleet.ingest_stall", stall)
        if stall > 0:
            self.ingest_stalls.append(stall)
        spec = self._stream(tenant)[request.backup_index]
        service = self.services[key]
        result = service.ingest(spec.chunks, source=f"{tenant}:{spec.source}")
        self.live_ids[tenant].append(result.backup_id)
        registry = self.registry
        registry.count("ingest.backups")
        registry.count("ingest.chunks", result.num_chunks)
        registry.count("ingest.logical_bytes", result.logical_bytes)
        registry.count("ingest.stored_bytes", result.stored_bytes)
        registry.count("ingest.dedup_bytes", result.dedup_bytes)
        registry.count("ingest.rewritten_bytes", result.rewritten_bytes)
        registry.count("ingest.containers_written", result.containers_written)
        registry.observe("ingest.backup_stored_bytes", result.stored_bytes)
        summary = self.tenant_summaries[tenant]
        summary["backups_ingested"] += 1
        summary["logical_bytes"] += result.logical_bytes

    def _rotate(self, request: Request) -> None:
        tenant = request.tenant
        live = self.live_ids[tenant]
        victims = live[: self.task.turnover]
        if not victims:
            return
        key = self._service_key(tenant)
        service = self.services[key]
        for backup_id in victims:
            service.delete_backup(backup_id)
        del live[: len(victims)]
        self.pending_deletes[key] += len(victims)
        self.registry.count("fleet.deleted_backups", len(victims))

    def _record_gc_report(self, report) -> None:
        registry = self.registry
        registry.count("gc.rounds")
        registry.count("gc.backups_purged", report.backups_purged)
        registry.count("gc.containers_involved", report.involved_containers)
        registry.count("gc.containers_reclaimed", report.reclaimed_containers)
        registry.count("gc.containers_produced", report.produced_containers)
        registry.count("gc.migrated_bytes", report.migrated_bytes)
        registry.count("gc.migrated_chunks", report.migrated_chunks)
        registry.count("gc.reclaimed_bytes", report.reclaimed_bytes)
        registry.count("phase_seconds.gc.mark", report.mark_seconds)
        registry.count("phase_seconds.gc.analyze", report.analyze_seconds)
        registry.count("phase_seconds.gc.sweep_read", report.sweep_read_seconds)
        registry.count("phase_seconds.gc.sweep_write", report.sweep_write_seconds)
        registry.observe("gc.round_seconds", report.total_seconds)

    def _gc(self, request: Request) -> None:
        if self.task.gc_mode == "incremental":
            self._gc_epoch_incremental(request)
            return
        ran = False
        for key, service in self.services.items():
            if not self.pending_deletes[key]:
                continue
            before = service.disk.sim_time
            report = service.run_gc()
            self._note_gc_time(key, request.time, service.disk.sim_time - before)
            self.pending_deletes[key] = 0
            ran = True
            self._record_gc_report(report)
        if not ran:
            self.requests_executed["gc_skipped"] = (
                self.requests_executed.get("gc_skipped", 0) + 1
            )

    def _gc_epoch_incremental(self, request: Request) -> None:
        """A GC epoch in incremental mode.

        Non-final epochs drain any leftover cycle (cost parity with
        stop-the-world: each epoch's garbage is gone by the next), then
        begin a new cycle — once the utilization trigger is met — and
        advance it a single increment; the interleaved ``gc_step``
        requests do the rest.  The *final* epoch collects everything
        regardless of the trigger, so both modes end garbage-free.
        """
        final = request.time >= self.final_gc_time
        trigger = 1 if final else self.task.gc_trigger_deleted
        ran = False
        for key, service in self.services.items():
            engine = service.gc
            before = service.disk.sim_time
            if final:
                while engine.active or engine.pending() >= 1:
                    self._record_gc_report(engine.collect())
                    self.pending_deletes[key] = 0
                    ran = True
            else:
                if engine.active:
                    self._record_gc_report(engine.collect())
                    ran = True
                if engine.pending() >= trigger:
                    engine.begin()
                    self.pending_deletes[key] = 0
                    report = engine.step()
                    if report is not None:
                        self._record_gc_report(report)
                    ran = True
            self._note_gc_time(key, request.time, service.disk.sim_time - before)
        if not ran:
            self.requests_executed["gc_skipped"] = (
                self.requests_executed.get("gc_skipped", 0) + 1
            )

    def _gc_step(self, request: Request) -> None:
        """One budgeted increment of every service's in-flight GC cycle."""
        advanced = False
        for key, service in self.services.items():
            engine = service.gc
            if not engine.active:
                continue
            before = service.disk.sim_time
            report = engine.step()
            self._note_gc_time(key, request.time, service.disk.sim_time - before)
            if report is not None:
                self._record_gc_report(report)
            advanced = True
        if not advanced:
            self.requests_executed["gc_step_idle"] = (
                self.requests_executed.get("gc_step_idle", 0) + 1
            )

    def _restore(self, request: Request) -> None:
        tenant = request.tenant
        service = self.services[self._service_key(tenant)]
        summary = self.tenant_summaries[tenant]
        registry = self.registry
        for backup_id in self.live_ids[tenant]:
            report = service.restore(backup_id)
            registry.count("restore.backups")
            registry.count("restore.chunks", report.num_chunks)
            registry.count("restore.containers_read", report.containers_read)
            registry.count("restore.container_bytes_read", report.container_bytes_read)
            registry.count("restore.logical_bytes", report.logical_bytes)
            registry.count("restore.cache_hits", report.cache_hits)
            registry.count("phase_seconds.restore", report.read_seconds)
            registry.observe("restore.read_amplification", report.read_amplification)
            registry.observe("restore.backup_seconds", report.read_seconds)
            summary["backups_restored"] += 1
            summary["read_amplification_sum"] += report.read_amplification

    def _read(self, request: Request) -> None:
        """One point read against the tenant's *oldest* live backup — the
        aged end of the retention window, where fragmentation (and so the
        serving layer's tiered-cache behaviour) is worst."""
        tenant = request.tenant
        live = self.live_ids[tenant]
        if not live:
            self.requests_executed["read_skipped"] = (
                self.requests_executed.get("read_skipped", 0) + 1
            )
            return
        service = self.services[self._service_key(tenant)]
        rng = DeterministicRng(
            derive_seed(self.task.seed, "read", tenant, request.backup_index)
        )
        registry = self.registry
        with service.open_backup(live[0]) as reader:
            length = max(1, int(reader.size * self.task.read_fraction))
            offset = rng.randint(0, max(0, reader.size - length))
            report = reader.pread(offset, length)
        registry.count("read.requests")
        registry.count("read.chunks", report.num_chunks)
        registry.count("read.containers_read", report.containers_read)
        registry.count("read.container_bytes_read", report.container_bytes_read)
        registry.count("read.logical_bytes", report.bytes_read)
        registry.count("read.chunk_hits", report.chunk_hits)
        registry.count("read.container_hits", report.container_hits)
        registry.count("phase_seconds.read", report.read_seconds)
        registry.observe("fleet.read_latency", report.read_seconds)
        self.read_latencies.append(report.read_seconds)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    _HANDLERS = {
        "ingest": _ingest,
        "rotate": _rotate,
        "gc": _gc,
        "gc_step": _gc_step,
        "restore": _restore,
        "read": _read,
    }

    def run(self) -> ShardResult:
        task = self.task
        schedule = shard_schedule(
            task.tenants,
            task.retained,
            task.turnover,
            task.backup_period,
            task.gc_period,
            task.seed,
            gc_mode=task.gc_mode,
            gc_step_period=task.gc_step_period,
            read_requests=task.read_requests,
        )
        self.final_gc_time = max(
            (request.time for request in schedule if request.kind == "gc"),
            default=0.0,
        )
        for request in schedule:
            self._HANDLERS[request.kind](self, request)
            self.requests_executed[request.kind] = (
                self.requests_executed.get(request.kind, 0) + 1
            )

        registry = self.registry
        registry.count("fleet.shards")
        registry.count("fleet.tenants", len(task.tenants))
        registry.count("fleet.services", len(self.services))
        for kind, count in self.requests_executed.items():
            registry.count(f"fleet.requests.{kind}", count)

        stats_sums = {
            "cumulative_logical_bytes": 0,
            "cumulative_stored_bytes": 0,
            "physical_bytes": 0,
        }
        runtime_sums: dict[str, int | float] = dict(self.workloads.counters())
        for key in sorted(self.services):
            service = self.services[key]
            stats = service.stats()
            stats_sums["cumulative_logical_bytes"] += stats.cumulative_logical_bytes
            stats_sums["cumulative_stored_bytes"] += stats.cumulative_stored_bytes
            stats_sums["physical_bytes"] += stats.physical_bytes
            for name, value in service.runtime_metrics().items():
                runtime_sums[name] = runtime_sums.get(name, 0) + value
        for name, value in stats_sums.items():
            registry.count(f"service.{name}", value)
        for name in sorted(runtime_sums):
            registry.count(f"runtime.{name}", runtime_sums[name])

        for spec in task.tenants:
            self.tenant_summaries[spec.name]["live_backups"] = len(
                self.live_ids[spec.name]
            )

        return ShardResult(
            shard_id=task.shard_id,
            tenants=[spec.name for spec in task.tenants],
            requests=dict(sorted(self.requests_executed.items())),
            stats=stats_sums,
            tenant_summaries={
                name: dict(summary)
                for name, summary in sorted(self.tenant_summaries.items())
            },
            metrics=registry.to_dict(),
            ingest_stalls=list(self.ingest_stalls),
            gc_pauses=list(self.gc_pauses),
            read_latencies=list(self.read_latencies),
        )


def run_shard(task: ShardTask, tracer: Tracer | None = None) -> ShardResult:
    """Execute one shard in this process."""
    return _ShardExecutor(task, tracer).run()


def execute_shard(task: ShardTask) -> tuple[dict, float, list[dict] | None]:
    """Worker-side entry point: run one shard, ship plain data back
    (``ShardResult.to_dict()``, wall seconds, trace events when tracing)."""
    started = time.perf_counter()
    recorder = TraceRecorder() if task.trace else None
    result = run_shard(task, tracer=recorder)
    seconds = time.perf_counter() - started
    return result.to_dict(), seconds, recorder.to_dicts() if recorder else None
