"""repro — a from-scratch reproduction of GCCDF (EuroSys '25).

GCCDF piggybacks reordering-based defragmentation on the data migration that
deduplicated backup storage's garbage collection performs anyway, improving
restore speed without sacrificing the deduplication ratio.

Quickstart::

    from repro import SystemConfig, make_service, dataset, RotationDriver

    config = SystemConfig.scaled(retained=20, turnover=5)
    service = make_service("gccdf", config)
    driver = RotationDriver(service, config.retention, dataset_name="web")
    result = driver.run(dataset("web", scale=0.2, num_backups=30))
    print(result.dedup_ratio, result.mean_read_amplification)

Public surface: configuration (:class:`SystemConfig`), the approach factory
(:func:`make_service` — nondedup/naive/capping/har/smr/mfdedup/gccdf), the
dataset presets (:func:`dataset`), the evaluation driver
(:class:`RotationDriver`), the observability layer (:class:`Tracer` /
:class:`TraceRecorder` / :class:`MetricsRegistry`, see
``docs/observability.md``), the crash-consistency layer (:class:`FaultPlan`
/ :func:`recover_service` / :func:`verify_service`, see
``docs/fault-model.md``), and the underlying building blocks re-exported
from their subpackages for library users who compose their own systems.
``__all__`` below is the stable surface; anything else is internal.
"""

from repro.config import (
    ChunkingConfig,
    DiskConfig,
    GCCDFConfig,
    RetentionConfig,
    SystemConfig,
)
from repro.model import Chunk, ChunkRef
from repro.backup import (
    APPROACHES,
    BackupService,
    DedupBackupService,
    RotationDriver,
    RotationResult,
    ServiceOptions,
    ServiceStats,
    make_service,
    service_factory,
)
from repro.backup.driver import BackupSpec
from repro.backup.verify import verify_service
from repro.core import GCCDFMigration
from repro.errors import SimulatedCrash
from repro.faults import (
    CRASH_POINTS,
    FaultPlan,
    RecoveryReport,
    points_for,
    recover_service,
)
from repro.fleet import (
    FleetConfig,
    FleetResult,
    ShardResult,
    TenantSpec,
    run_fleet,
    shard_of,
)
from repro.gc import GCBudget, IncrementalGC, MarkSweepGC, NaiveMigration
from repro.index.columnar import ColumnarRecipe
from repro.index.interning import FingerprintInterner
from repro.mfdedup import MFDedupService
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    NullTracer,
    TraceEvent,
    Tracer,
    TraceRecorder,
    read_trace,
    write_trace,
)
from repro.serve import BackupReader, ReadReport, TieredReadCache
from repro.simio import DiskModel, IOStats, PhaseScope
from repro.workloads import DATASET_NAMES, Dataset, dataset

__version__ = "1.0.0"

__all__ = [
    "ChunkingConfig",
    "DiskConfig",
    "GCCDFConfig",
    "RetentionConfig",
    "SystemConfig",
    "Chunk",
    "ChunkRef",
    "APPROACHES",
    "BackupService",
    "ServiceStats",
    "ServiceOptions",
    "DedupBackupService",
    "RotationDriver",
    "RotationResult",
    "BackupSpec",
    "make_service",
    "service_factory",
    "BackupReader",
    "ReadReport",
    "TieredReadCache",
    "verify_service",
    "CRASH_POINTS",
    "FaultPlan",
    "RecoveryReport",
    "SimulatedCrash",
    "points_for",
    "recover_service",
    "FleetConfig",
    "FleetResult",
    "ShardResult",
    "TenantSpec",
    "run_fleet",
    "shard_of",
    "GCCDFMigration",
    "GCBudget",
    "IncrementalGC",
    "MarkSweepGC",
    "NaiveMigration",
    "ColumnarRecipe",
    "FingerprintInterner",
    "MFDedupService",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceRecorder",
    "TraceEvent",
    "MetricsRegistry",
    "read_trace",
    "write_trace",
    "DiskModel",
    "IOStats",
    "PhaseScope",
    "DATASET_NAMES",
    "Dataset",
    "dataset",
    "__version__",
]
