"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch the whole family with a single ``except`` clause while still being
able to discriminate on the specific failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class ChunkingError(ReproError):
    """A chunker was misconfigured or fed invalid input."""


class StorageError(ReproError):
    """Base class for container-store failures."""


class ContainerSealedError(StorageError):
    """An attempt was made to append to a sealed (immutable) container."""


class ContainerFullError(StorageError):
    """A chunk did not fit into the open container."""


class UnknownContainerError(StorageError):
    """A container id was requested that the store does not hold."""


class UnknownChunkError(ReproError):
    """A fingerprint was looked up that the index does not hold."""


class UnknownBackupError(ReproError):
    """A backup id was referenced that the recipe store does not hold."""


class BackupAlreadyDeletedError(ReproError):
    """A logically deleted backup was deleted or restored again."""


class GCError(ReproError):
    """Garbage collection detected an internal inconsistency."""


class IntegrityError(ReproError):
    """Restored data failed verification against its recipe."""


class JournalError(ReproError):
    """An intent-journal record was moved through an invalid transition."""


class SimulatedCrash(ReproError):
    """An injected crash fired at an armed crash point.

    Raised by :class:`repro.faults.FaultPlan` from inside the storage layer;
    everything the in-memory object graph holds at that instant *is* the
    post-crash disk image.  Callers recover with
    :func:`repro.faults.recover_service` and re-verify.
    """

    def __init__(
        self,
        message: str,
        point: str = "",
        occurrence: int = 0,
        context: dict | None = None,
    ):
        super().__init__(message)
        #: Name of the crash point that fired (see ``repro.faults.CRASH_POINTS``).
        self.point = point
        #: 1-based count of how many times the point had been reached.
        self.occurrence = occurrence
        #: Site-specific context captured at the instant of the crash.
        self.context = dict(context or {})
