"""The restore engine.

Restoration walks a backup's recipe in stream order, resolves each storage
key through the fingerprint index, and fetches the owning container — whole,
because containers are the I/O unit (paper §2.1) — through a bounded LRU
cache.  Fragmentation manifests here: a scattered backup touches many
containers and keeps evicting useful ones, while a well-laid-out backup
streams through few containers each of which is fully consumed.

When containers carry payloads (byte-level pipeline) the engine can also
return or verify the restored bytes; the trace-level experiments only need
the accounting.
"""

from __future__ import annotations

from array import array
from typing import Iterator

from repro.errors import IntegrityError
from repro.index.columnar import ColumnarRecipe
from repro.index.fingerprint_index import FingerprintIndex
from repro.index.recipe import RecipeStore
from repro.simio.disk import DiskModel
from repro.storage.cache import ContainerCache
from repro.storage.store import ContainerStore
from repro.restore.report import RestoreReport


class RestoreEngine:
    """Restores backups, charging container-granular simulated I/O."""

    def __init__(
        self,
        store: ContainerStore,
        index: FingerprintIndex,
        recipes: RecipeStore,
        disk: DiskModel,
        cache_containers: int | None = None,
    ):
        self.store = store
        self.index = index
        self.recipes = recipes
        self.disk = disk
        self.cache_containers = cache_containers

    def restore(self, backup_id: int) -> RestoreReport:
        """Restore one backup; returns its I/O accounting."""
        report, _ = self._run(backup_id, collect_data=False)
        return report

    def restore_bytes(self, backup_id: int) -> tuple[RestoreReport, bytes]:
        """Restore one backup and return its reassembled content.

        Requires the containers to hold payloads (byte-level pipeline);
        raises :class:`IntegrityError` if any chunk's bytes are missing or
        of the wrong length.
        """
        report, data = self._run(backup_id, collect_data=True)
        assert data is not None
        return report, data

    def _run(self, backup_id: int, collect_data: bool) -> tuple[RestoreReport, bytes | None]:
        recipe = self.recipes.get(backup_id)
        cache = ContainerCache(self.store, self.cache_containers)
        # Accounting-only restores of columnar recipes take the batched
        # kernel; byte-collecting restores need the per-entry payload walk.
        if not collect_data and isinstance(recipe, ColumnarRecipe):
            return self._run_columnar(backup_id, recipe, cache), None
        pieces: list[bytes] = [] if collect_data else None  # type: ignore[assignment]

        with self.disk.phase("restore") as ph:
            for entry in recipe.entries:
                placement = self.index.get(entry.fp)
                container = cache.get(placement.container_id)
                if collect_data:
                    payload = container.payload(entry.fp)
                    if payload is None:
                        raise IntegrityError(
                            f"container {container.container_id} holds no payload for a "
                            f"chunk of backup {backup_id} (trace-level data cannot be "
                            "restored to bytes)"
                        )
                    if len(payload) != entry.size:
                        raise IntegrityError(
                            f"payload size mismatch for backup {backup_id}: "
                            f"expected {entry.size}, got {len(payload)}"
                        )
                    pieces.append(payload)
            ph.annotate(
                backup_id=backup_id,
                containers_read=cache.misses,
                cache_hits=cache.hits,
                logical_bytes=recipe.logical_size,
            )

        report = RestoreReport(
            backup_id=backup_id,
            logical_bytes=recipe.logical_size,
            num_chunks=recipe.num_chunks,
            containers_read=cache.misses,
            container_bytes_read=ph.delta.read_bytes,
            read_seconds=ph.delta.read_seconds,
            cache_hits=cache.hits,
        )
        return report, (b"".join(pieces) if collect_data else None)

    def _run_columnar(
        self, backup_id: int, recipe: ColumnarRecipe, cache: ContainerCache
    ) -> RestoreReport:
        """Batched restore: resolve the whole recipe to a container-id
        column, then drive the cache over the column.

        Each *unique* chunk resolves through :meth:`FingerprintIndex.get`
        exactly once (at its first occurrence, preserving the per-entry
        kernel's error behaviour for unknown chunks); the cache then sees
        the same container sequence the per-entry loop would produce, so
        hit/miss counters, simulated reads, and eviction events match.
        """
        with self.disk.phase("restore") as ph:
            keys = recipe.interner.keys()
            index_get = self.index.get
            ids = recipe.chunk_ids
            # ``dict.fromkeys`` collects unique ids in first-occurrence order
            # at C speed; resolving per unique id preserves the per-entry
            # kernel's error order for unknown chunks.  The full column is
            # then one C-level ``map`` over the memo.
            container_of = dict.fromkeys(ids)
            for chunk_id in container_of:
                container_of[chunk_id] = index_get(keys[chunk_id]).container_id
            cache.read_column(array("q", map(container_of.__getitem__, ids)))
            ph.annotate(
                backup_id=backup_id,
                containers_read=cache.misses,
                cache_hits=cache.hits,
                logical_bytes=recipe.logical_size,
            )

        return RestoreReport(
            backup_id=backup_id,
            logical_bytes=recipe.logical_size,
            num_chunks=recipe.num_chunks,
            containers_read=cache.misses,
            container_bytes_read=ph.delta.read_bytes,
            read_seconds=ph.delta.read_seconds,
            cache_hits=cache.hits,
        )

    def restore_all(self, backup_ids: list[int] | None = None) -> Iterator[RestoreReport]:
        """Restore every live backup (or the given ids), oldest first."""
        ids = backup_ids if backup_ids is not None else self.recipes.live_ids()
        for backup_id in ids:
            yield self.restore(backup_id)
