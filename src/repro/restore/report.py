"""Restore accounting: read amplification and restoration speed.

The two headline metrics follow the paper's definitions exactly:

* read amplification (§6.3) =
  ``size of containers read during restoration / size of restored backup``;
* restoration speed (§6.2) =
  ``size of the backup / time to restore it`` — time being simulated disk
  seconds under the cost model.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class RestoreReport:
    """Metrics for one restored backup."""

    backup_id: int
    logical_bytes: int
    num_chunks: int
    #: Distinct containers fetched from disk (cache misses).
    containers_read: int
    #: Bytes of containers fetched from disk.
    container_bytes_read: int
    #: Simulated seconds spent reading containers.
    read_seconds: float
    #: Container-cache hits (container already in restore cache).
    cache_hits: int

    def to_dict(self) -> dict:
        """Plain-scalar dict; round-trips through JSON (run cache)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RestoreReport":
        return cls(**data)

    @property
    def read_amplification(self) -> float:
        """Container bytes fetched per byte of backup restored."""
        if self.logical_bytes == 0:
            return 0.0
        return self.container_bytes_read / self.logical_bytes

    @property
    def speed_bytes_per_second(self) -> float:
        """Restoration speed under the simulated disk model."""
        if self.read_seconds == 0.0:
            return float("inf") if self.logical_bytes else 0.0
        return self.logical_bytes / self.read_seconds
