"""Forward-assembly-area (FAA) restoration — Lillibridge et al., FAST '13.

The classic bounded-memory restore algorithm for container-based dedup
storage, and the principled model behind "restore with limited memory":

1. reserve a fixed assembly buffer of M bytes;
2. take the longest recipe prefix that fits in M (one *assembly span*);
3. for each distinct container the span needs, read it **once** and copy
   all of that container's chunks used anywhere in the span into place;
4. flush the span, advance, repeat.

With M covering the whole backup this degenerates to the read-once model;
smaller M forces containers whose chunks straddle span boundaries to be
re-read in later spans, which is exactly how fragmentation hurts real
restores under memory pressure.  The cache-size ablation uses the LRU
model; this engine exists as the literature-faithful alternative and for
cross-checking the two models agree at the extremes.
"""

from __future__ import annotations

from array import array

from repro.errors import ConfigError
from repro.index.columnar import ColumnarRecipe
from repro.index.fingerprint_index import FingerprintIndex
from repro.index.recipe import RecipeStore
from repro.restore.report import RestoreReport
from repro.simio.disk import DiskModel
from repro.storage.store import ContainerStore


class AssemblyRestoreEngine:
    """Restores backups span by span through a fixed assembly area."""

    def __init__(
        self,
        store: ContainerStore,
        index: FingerprintIndex,
        recipes: RecipeStore,
        disk: DiskModel,
        assembly_bytes: int,
    ):
        if assembly_bytes <= 0:
            raise ConfigError("assembly_bytes must be positive")
        self.store = store
        self.index = index
        self.recipes = recipes
        self.disk = disk
        self.assembly_bytes = assembly_bytes

    def restore(self, backup_id: int) -> RestoreReport:
        """Restore one backup; returns container-read accounting."""
        recipe = self.recipes.get(backup_id)
        container_reads = 0

        with self.disk.phase("restore") as ph:
            if isinstance(recipe, ColumnarRecipe):
                container_reads = self._restore_columnar(recipe)
            else:
                container_reads = self._restore_entries(recipe)
            ph.annotate(backup_id=backup_id, containers_read=container_reads)

        return RestoreReport(
            backup_id=backup_id,
            logical_bytes=recipe.logical_size,
            num_chunks=recipe.num_chunks,
            containers_read=container_reads,
            container_bytes_read=ph.delta.read_bytes,
            read_seconds=ph.delta.read_seconds,
            cache_hits=0,
        )

    def _restore_entries(self, recipe) -> int:
        """Per-entry span walk over a legacy tuple recipe."""
        container_reads = 0
        position = 0
        entries = recipe.entries
        while position < len(entries):
            # Build one assembly span: the longest prefix fitting the area.
            span_bytes = 0
            end = position
            while end < len(entries):
                size = entries[end].size
                if span_bytes + size > self.assembly_bytes and end > position:
                    break
                span_bytes += size
                end += 1

            # One read per distinct container used within the span.
            needed: set[int] = set()
            for entry in entries[position:end]:
                needed.add(self.index.get(entry.fp).container_id)
            for container_id in sorted(needed):
                self.store.read_container(container_id)
                container_reads += 1

            position = end
        return container_reads

    def _restore_columnar(self, recipe: ColumnarRecipe) -> int:
        """Batched span walk: resolve the whole recipe to a container-id
        column once, then cut spans over the size column.  Span boundaries
        and the per-span sorted distinct-container reads are identical to
        the per-entry walk."""
        keys = recipe.interner.keys()
        index_get = self.index.get
        ids = recipe.chunk_ids
        # Unique ids in first-occurrence order at C speed, resolved once
        # each; the full column is then one C-level ``map`` over the memo.
        container_of = dict.fromkeys(ids)
        for chunk_id in container_of:
            container_of[chunk_id] = index_get(keys[chunk_id]).container_id
        column = array("q", map(container_of.__getitem__, ids))

        sizes = recipe.chunk_sizes
        num_chunks = len(sizes)
        read_container = self.store.read_container
        assembly_bytes = self.assembly_bytes
        container_reads = 0
        position = 0
        while position < num_chunks:
            span_bytes = 0
            end = position
            while end < num_chunks:
                size = sizes[end]
                if span_bytes + size > assembly_bytes and end > position:
                    break
                span_bytes += size
                end += 1

            for container_id in sorted(set(column[position:end])):
                read_container(container_id)
                container_reads += 1

            position = end
        return container_reads
