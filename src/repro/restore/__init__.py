"""Backup restoration with container-granular reads."""

from repro.restore.engine import RestoreEngine
from repro.restore.assembly import AssemblyRestoreEngine
from repro.restore.report import RestoreReport

__all__ = ["RestoreEngine", "AssemblyRestoreEngine", "RestoreReport"]
