"""Operator CLI: generate traces, simulate approaches, inspect layouts.

Four subcommands, usable as ``python -m repro.tools <cmd>`` or the
``repro`` console script:

* ``trace`` — materialise a dataset preset into a portable trace file
  (``repro trace --dataset mix --out mix.trace.gz``), or report statistics
  of an existing trace (``--stats``).
* ``simulate`` — run the rotation protocol for one approach over a preset
  or a trace file and print the result summary
  (``repro simulate --approach gccdf --dataset web``).
* ``inspect`` — run a small simulation and dump the analysis views:
  fragmentation profile, ownership stats, container purity, and (for small
  systems) the ASCII layout.
* ``faults`` — crash-consistency smoke: inject a :class:`SimulatedCrash`
  at an armed point mid-protocol, run recovery, and verify zero errors
  (``repro faults --approach gccdf --point sweep.repoint``, or
  ``repro faults --matrix`` for every point × approach).  Also installed
  as the ``repro-faults`` console script.

``repro`` is additionally the umbrella for the repo's other tools:
``repro bench``, ``repro experiments``, ``repro fleet``, and
``repro serve`` forward their remaining arguments to the corresponding
tool's own parser, so one command surfaces everything.  The historical
per-tool console scripts (``repro-bench``, ``repro-experiments``,
``repro-fleet``, ``repro-faults``) remain as thin aliases.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.fragmentation import fragmentation_profile
from repro.analysis.layout import ownership_histogram, render_layout
from repro.analysis.ownership import container_purity, mean_purity, ownership_stats
from repro.backup.approaches import APPROACHES, make_service
from repro.backup.options import ServiceOptions
from repro.backup.driver import BackupSpec, RotationDriver
from repro.backup.verify import verify_service
from repro.config import SystemConfig
from repro.errors import SimulatedCrash
from repro.experiments.common import SCALES, get_scale
from repro.faults import CRASH_POINTS, FaultPlan, points_for, recover_service
from repro.util.units import format_bytes
from repro.workloads.datasets import DATASET_NAMES, dataset
from repro.workloads.trace import load_trace, save_trace, trace_stats


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=DATASET_NAMES, help="dataset preset")
    parser.add_argument("--trace", help="trace file to replay instead of a preset")
    parser.add_argument("--scale", type=float, default=0.25, help="workload scale")
    parser.add_argument("--backups", type=int, default=40, help="number of backups")
    parser.add_argument("--seed", type=int, default=2025, help="dataset seed")


def _workload(args: argparse.Namespace):
    if args.trace:
        return load_trace(args.trace)
    if not args.dataset:
        raise SystemExit("pass --dataset <preset> or --trace <file>")
    return dataset(
        args.dataset, scale=args.scale, num_backups=args.backups, seed=args.seed
    )


def _make_config(args: argparse.Namespace) -> SystemConfig:
    return SystemConfig.scaled(retained=args.retained, turnover=args.turnover)


def cmd_trace(args: argparse.Namespace) -> int:
    if args.stats:
        stats = trace_stats(args.stats)
        print(f"backups:             {stats['backups']}")
        print(f"chunks:              {stats['chunks']}")
        print(f"logical bytes:       {format_bytes(stats['logical_bytes'])}")
        print(f"unique fingerprints: {stats['unique_fingerprints']}")
        return 0
    if not args.out:
        raise SystemExit("pass --out <file> (or --stats <file>)")
    count = save_trace(args.out, _workload(args))
    print(f"wrote {count} backups to {args.out}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    config = _make_config(args)
    service = make_service(args.approach, config)
    driver = RotationDriver(service, config.retention, dataset_name=args.dataset or "trace")
    result = driver.run(_workload(args))
    print(f"approach:            {result.approach}")
    print(f"backups ingested:    {len(result.ingest_reports)}")
    print(f"dedup ratio:         {result.dedup_ratio:.2f}")
    print(f"mean read amp:       {result.mean_read_amplification:.2f}")
    print(f"restore speed:       {result.restore_speed / (1 << 20):.1f} MiB/s (simulated)")
    print(f"GC rounds:           {len(result.gc_reports)}")
    for report in result.gc_reports:
        print(f"  {report.summary()}")
    print(f"final physical size: {format_bytes(result.physical_bytes)}")
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    config = _make_config(args)
    service = make_service(args.approach, config)
    driver = RotationDriver(service, config.retention, dataset_name=args.dataset or "trace")
    driver.run(_workload(args))

    stats = ownership_stats(service)
    print(stats.describe())
    purities = container_purity(service)
    print(f"containers: {len(purities)}, byte-weighted mean ownership purity "
          f"{mean_purity(purities):.2f}")
    live = service.live_backup_ids()
    if live:
        for backup_id in (live[0], live[-1]):
            profile = fragmentation_profile(service, backup_id)
            print(
                f"backup {backup_id}: amp {profile.read_amplification:.2f}, "
                f"{profile.containers_touched} containers, "
                f"mean utilization {profile.mean_utilization:.2f}"
            )
    print()
    print(ownership_histogram(service))
    if len(service.store) <= args.layout_limit:
        print()
        print(render_layout(service))
    return 0


#: Approaches the ``--matrix`` smoke covers: one classic-GC rewriter, the
#: paper's GCCDF, and the volume-structured MFDedup — together they reach
#: every crash point in :data:`~repro.faults.CRASH_POINTS`.
MATRIX_APPROACHES = ("capping", "gccdf", "mfdedup")

#: Hybrid-dedup spot rows added to the ``--matrix`` smoke: the two
#: approaches whose pipeline takes the hybrid path, armed at the coalesce
#: point, in both GC modes.
HYBRID_MATRIX_APPROACHES = ("naive", "gccdf")


def _duplicated_sources(backups):
    """Replay each backup under two source names (``…#a`` / ``…#b``).

    Hybrid ingest dedups a source's stream against its own neighbor
    window, so a single-source preset defers almost nothing; the mirrored
    second copy neighbor-misses everything, hits the ingest filter, and
    produces the deferred-duplicate population the ``gc.rededup`` point
    needs to actually fire.
    """
    for spec in backups:
        yield BackupSpec(source=f"{spec.source}#a", chunks=spec.chunks)
        yield BackupSpec(source=f"{spec.source}#b", chunks=spec.chunks)


def _fault_scenario(
    approach: str,
    point: str,
    occurrence: int,
    dataset_name: str,
    scale_name: str,
    gc_mode: str = "stw",
    dedup_mode: str = "inline",
) -> tuple[str, str]:
    """Run one crash/recover/verify scenario; return ``(status, detail)``.

    ``status`` is ``"ok"`` (crashed, recovered, verified clean),
    ``"skip"`` (the protocol finished before the armed occurrence was
    reached), or ``"fail"`` (verification errors survived recovery).

    In incremental GC mode the service runs a tightly budgeted
    :class:`~repro.gc.incremental.IncrementalGC` (so ``gc.increment``
    boundaries actually fire), and after recovery the interrupted cycle is
    *resumed* to completion and re-verified — the journal must end empty.

    In hybrid dedup mode the workload replays every backup under two
    source names (see :func:`_duplicated_sources`) so deferred duplicates
    exist and the ``gc.rededup`` point is reachable.
    """
    scale = get_scale(scale_name)
    plan = FaultPlan.single(point, occurrence)
    config = scale.config()
    gc_budget = None
    if gc_mode == "incremental":
        from repro.gc.incremental import GCBudget

        gc_budget = GCBudget(mark_recipes=3, sweep_containers=2, mfdedup_volumes=1)
    service = make_service(
        approach, config,
        ServiceOptions(
            faults=plan, gc_mode=gc_mode, gc_budget=gc_budget, dedup_mode=dedup_mode
        ),
    )
    driver = RotationDriver(service, config.retention, dataset_name=dataset_name)
    backups = dataset(
        dataset_name,
        scale=scale.workload_scale,
        num_backups=scale.num_backups(dataset_name),
    )
    if dedup_mode == "hybrid":
        backups = _duplicated_sources(backups)
    try:
        driver.run(backups)
    except SimulatedCrash as crash:
        report = recover_service(service)
        verification = verify_service(service)
        if verification.errors:
            first = verification.errors[0]
            return "fail", f"{len(verification.errors)} verify errors: {first}"
        detail = (
            f"crashed at sim_time={crash.context.get('sim_time', 0.0):.2f}s, "
            f"recovered ({report.summary()})"
        )
        if gc_mode == "incremental":
            service.run_gc()  # drains any journaled cycle left open by recovery
            followup = verify_service(service)
            if followup.errors:
                return "fail", (
                    f"{len(followup.errors)} verify errors after resume: "
                    f"{followup.errors[0]}"
                )
            journal = (
                service.volumes.journal
                if hasattr(service, "volumes")
                else service.store.journal
            )
            if len(journal):
                return "fail", f"{len(journal)} journal records left after resume"
            detail += ", cycle resumed to completion"
        return "ok", detail
    return "skip", f"point never reached (hits={plan.hits.get(point, 0)})"


def cmd_faults(args: argparse.Namespace) -> int:
    if args.matrix:
        scenarios = [
            (gc_mode, "inline", approach, point)
            for gc_mode in ("stw", "incremental")
            for approach in MATRIX_APPROACHES
            for point in points_for(approach, gc_mode=gc_mode)
        ]
        scenarios += [
            (gc_mode, "hybrid", approach, "gc.rededup")
            for gc_mode in ("stw", "incremental")
            for approach in HYBRID_MATRIX_APPROACHES
        ]
    elif args.point:
        scenarios = [(args.gc_mode, args.dedup_mode, args.approach, args.point)]
    else:
        raise SystemExit("pass --point <crash-point> or --matrix")

    failures = 0
    fired = 0
    for gc_mode, dedup_mode, approach, point in scenarios:
        status, detail = _fault_scenario(
            approach,
            point,
            args.occurrence,
            args.dataset,
            args.scale,
            gc_mode=gc_mode,
            dedup_mode=dedup_mode,
        )
        mode = gc_mode if dedup_mode == "inline" else f"{gc_mode}+hybrid"
        print(f"{status:<5} {mode:<18} {approach:<8} {point:<18} {detail}")
        if status == "fail":
            failures += 1
        elif status == "ok":
            fired += 1
    print(f"fired {fired}/{len(scenarios)} scenarios, {failures} failures")
    if failures:
        return 1
    if args.matrix and fired == 0:
        print("error: no scenario fired — the matrix exercised nothing")
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GCCDF reproduction toolbox (trace / simulate / inspect).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    trace = sub.add_parser("trace", help="write or inspect a backup trace")
    _add_workload_args(trace)
    trace.add_argument("--out", help="output trace path (.gz supported)")
    trace.add_argument("--stats", help="print statistics of an existing trace")
    trace.set_defaults(func=cmd_trace)

    for name, handler in (("simulate", cmd_simulate), ("inspect", cmd_inspect)):
        command = sub.add_parser(name, help=f"{name} an approach over a workload")
        _add_workload_args(command)
        command.add_argument(
            "--approach", choices=APPROACHES, default="gccdf", help="backup approach"
        )
        command.add_argument("--retained", type=int, default=20, help="retention window")
        command.add_argument("--turnover", type=int, default=5, help="deletions per round")
        if name == "inspect":
            command.add_argument(
                "--layout-limit",
                type=int,
                default=40,
                help="render the ASCII layout when at most this many containers",
            )
        command.set_defaults(func=handler)

    faults = sub.add_parser(
        "faults", help="inject a crash, recover, and verify consistency"
    )
    faults.add_argument(
        "--approach", choices=APPROACHES, default="gccdf", help="backup approach"
    )
    faults.add_argument(
        "--point", choices=CRASH_POINTS, help="crash point to arm (single scenario)"
    )
    faults.add_argument(
        "--occurrence", type=int, default=1, help="crash on the Nth hit of the point"
    )
    faults.add_argument(
        "--dataset",
        choices=DATASET_NAMES,
        default="web",
        help="dataset preset (web reaches every crash point, including "
        "mfdedup.migrate)",
    )
    faults.add_argument(
        "--scale", choices=sorted(SCALES), default="quick", help="experiment scale"
    )
    faults.add_argument(
        "--gc-mode",
        choices=("stw", "incremental"),
        default="stw",
        help="GC mode for a single --point scenario (gc.increment only "
        "fires in incremental mode); --matrix always covers both",
    )
    faults.add_argument(
        "--dedup-mode",
        choices=("inline", "hybrid"),
        default="inline",
        help="dedup mode for a single --point scenario (gc.rededup only "
        "fires in hybrid mode, over a duplicated-source workload)",
    )
    faults.add_argument(
        "--matrix",
        action="store_true",
        help="run every crash point for capping, gccdf, and mfdedup, "
        "in both stop-the-world and incremental GC modes, plus hybrid-"
        "dedup gc.rededup spot rows for naive and gccdf",
    )
    faults.set_defaults(func=cmd_faults)

    # Forwarded tools appear in ``repro --help`` but are dispatched by
    # :func:`main` before argparse runs, each to its own parser.
    for name, blurb in sorted(FORWARDED_TOOLS.items()):
        sub.add_parser(name, help=blurb, add_help=False)
    return parser


#: Umbrella subcommands forwarded verbatim to another tool's parser.
FORWARDED_TOOLS = {
    "bench": "hot-path benchmark harness (alias: repro-bench)",
    "experiments": "paper figure/table runner (alias: repro-experiments)",
    "fleet": "sharded multi-tenant fleet (alias: repro-fleet)",
    "serve": "read-serving benchmark (writes BENCH_serve.json)",
}


def _forwarded_main(tool: str):
    """The forwarded tool's ``main`` (imported lazily: the umbrella must
    not drag every tool's dependency graph into ``repro trace``)."""
    if tool == "bench":
        from repro.bench import main as tool_main
    elif tool == "experiments":
        from repro.experiments.run import main as tool_main
    elif tool == "fleet":
        from repro.fleet.cli import main as tool_main
    else:
        from repro.serve.bench import main as tool_main
    return tool_main


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in FORWARDED_TOOLS:
        return _forwarded_main(argv[0])(argv[1:])
    args = build_parser().parse_args(argv)
    return args.func(args)


def faults_main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-faults`` console script."""
    if argv is None:
        argv = sys.argv[1:]
    return main(["faults", *argv])


if __name__ == "__main__":
    sys.exit(main())
