"""Operator CLI: generate traces, simulate approaches, inspect layouts.

Three subcommands, usable as ``python -m repro.tools <cmd>`` or the
``repro`` console script:

* ``trace`` — materialise a dataset preset into a portable trace file
  (``repro trace --dataset mix --out mix.trace.gz``), or report statistics
  of an existing trace (``--stats``).
* ``simulate`` — run the rotation protocol for one approach over a preset
  or a trace file and print the result summary
  (``repro simulate --approach gccdf --dataset web``).
* ``inspect`` — run a small simulation and dump the analysis views:
  fragmentation profile, ownership stats, container purity, and (for small
  systems) the ASCII layout.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.fragmentation import fragmentation_profile
from repro.analysis.layout import ownership_histogram, render_layout
from repro.analysis.ownership import container_purity, mean_purity, ownership_stats
from repro.backup.approaches import APPROACHES, make_service
from repro.backup.driver import RotationDriver
from repro.config import SystemConfig
from repro.util.units import format_bytes
from repro.workloads.datasets import DATASET_NAMES, dataset
from repro.workloads.trace import load_trace, save_trace, trace_stats


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=DATASET_NAMES, help="dataset preset")
    parser.add_argument("--trace", help="trace file to replay instead of a preset")
    parser.add_argument("--scale", type=float, default=0.25, help="workload scale")
    parser.add_argument("--backups", type=int, default=40, help="number of backups")
    parser.add_argument("--seed", type=int, default=2025, help="dataset seed")


def _workload(args: argparse.Namespace):
    if args.trace:
        return load_trace(args.trace)
    if not args.dataset:
        raise SystemExit("pass --dataset <preset> or --trace <file>")
    return dataset(
        args.dataset, scale=args.scale, num_backups=args.backups, seed=args.seed
    )


def _make_config(args: argparse.Namespace) -> SystemConfig:
    return SystemConfig.scaled(retained=args.retained, turnover=args.turnover)


def cmd_trace(args: argparse.Namespace) -> int:
    if args.stats:
        stats = trace_stats(args.stats)
        print(f"backups:             {stats['backups']}")
        print(f"chunks:              {stats['chunks']}")
        print(f"logical bytes:       {format_bytes(stats['logical_bytes'])}")
        print(f"unique fingerprints: {stats['unique_fingerprints']}")
        return 0
    if not args.out:
        raise SystemExit("pass --out <file> (or --stats <file>)")
    count = save_trace(args.out, _workload(args))
    print(f"wrote {count} backups to {args.out}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    config = _make_config(args)
    service = make_service(args.approach, config)
    driver = RotationDriver(service, config.retention, dataset_name=args.dataset or "trace")
    result = driver.run(_workload(args))
    print(f"approach:            {result.approach}")
    print(f"backups ingested:    {len(result.ingest_reports)}")
    print(f"dedup ratio:         {result.dedup_ratio:.2f}")
    print(f"mean read amp:       {result.mean_read_amplification:.2f}")
    print(f"restore speed:       {result.restore_speed / (1 << 20):.1f} MiB/s (simulated)")
    print(f"GC rounds:           {len(result.gc_reports)}")
    for report in result.gc_reports:
        print(f"  {report.summary()}")
    print(f"final physical size: {format_bytes(result.physical_bytes)}")
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    config = _make_config(args)
    service = make_service(args.approach, config)
    driver = RotationDriver(service, config.retention, dataset_name=args.dataset or "trace")
    driver.run(_workload(args))

    stats = ownership_stats(service)
    print(stats.describe())
    purities = container_purity(service)
    print(f"containers: {len(purities)}, byte-weighted mean ownership purity "
          f"{mean_purity(purities):.2f}")
    live = service.live_backup_ids()
    if live:
        for backup_id in (live[0], live[-1]):
            profile = fragmentation_profile(service, backup_id)
            print(
                f"backup {backup_id}: amp {profile.read_amplification:.2f}, "
                f"{profile.containers_touched} containers, "
                f"mean utilization {profile.mean_utilization:.2f}"
            )
    print()
    print(ownership_histogram(service))
    if len(service.store) <= args.layout_limit:
        print()
        print(render_layout(service))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GCCDF reproduction toolbox (trace / simulate / inspect).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    trace = sub.add_parser("trace", help="write or inspect a backup trace")
    _add_workload_args(trace)
    trace.add_argument("--out", help="output trace path (.gz supported)")
    trace.add_argument("--stats", help="print statistics of an existing trace")
    trace.set_defaults(func=cmd_trace)

    for name, handler in (("simulate", cmd_simulate), ("inspect", cmd_inspect)):
        command = sub.add_parser(name, help=f"{name} an approach over a workload")
        _add_workload_args(command)
        command.add_argument(
            "--approach", choices=APPROACHES, default="gccdf", help="backup approach"
        )
        command.add_argument("--retained", type=int, default=20, help="retention window")
        command.add_argument("--turnover", type=int, default=5, help="deletions per round")
        if name == "inspect":
            command.add_argument(
                "--layout-limit",
                type=int,
                default=40,
                help="render the ASCII layout when at most this many containers",
            )
        command.set_defaults(func=handler)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
