"""The mark–sweep GC engine.

Orchestrates one collection: mark → (strategy-owned analyze) → sweep →
purge deleted recipes, attributing cost to the four stages of the paper's
Fig. 14 breakdown.  The engine is strategy-agnostic; GCCDF is "just" a
different :class:`~repro.gc.migration.MigrationStrategy` (§3.2's whole point:
defragmentation piggybacks on the migration GC already performs).
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.dedup.hybrid import HybridState, forced_containers, run_rededup
from repro.gc.mark import MarkStage
from repro.gc.migration import MigrationStrategy, NaiveMigration, SweepContext
from repro.gc.report import GCReport
from repro.index.fingerprint_index import FingerprintIndex
from repro.index.recipe import RecipeStore
from repro.simio.disk import DiskModel
from repro.storage.store import ContainerStore


class MarkSweepGC:
    """Runs mark–sweep collections with a pluggable migration strategy."""

    def __init__(
        self,
        config: SystemConfig,
        store: ContainerStore,
        index: FingerprintIndex,
        recipes: RecipeStore,
        disk: DiskModel,
        migration: MigrationStrategy | None = None,
        hybrid: HybridState | None = None,
    ):
        self.config = config
        self.store = store
        self.index = index
        self.recipes = recipes
        self.disk = disk
        self.migration = migration or NaiveMigration()
        self.hybrid = hybrid
        self._rounds = 0
        self.history: list[GCReport] = []

    def collect(self) -> GCReport:
        """Run one full collection and purge logically deleted recipes.

        The round runs under a ``sweep`` intent: open until migration has
        fully completed (all copy-forwards sealed, all reclaims durable),
        committed before the recipe purge, closed after it.  A crash with
        the intent open aborts the round (deleted recipes remain for the
        next GC); committed, recovery finishes the purge.

        In hybrid dedup mode the round opens with the rededup pass
        (:func:`~repro.dedup.hybrid.run_rededup`): deferred duplicates are
        coalesced under their own journaled intents, and the containers
        that held the duplicate copies are force-fed into the mark's GS
        list so this round's sweep reclaims their bytes.
        """
        tracer = self.disk.tracer
        round_intent = self.store.journal.begin("sweep", round_index=self._rounds)
        extra_gs: frozenset[int] | set[int] = frozenset()
        if self.hybrid is not None:
            run_rededup(
                self.hybrid,
                index=self.index,
                recipes=self.recipes,
                journal=self.store.journal,
                disk=self.disk,
            )
            extra_gs = forced_containers(self.hybrid, self.store)
        mark_stage = MarkStage(
            self.config, self.index, self.recipes, self.disk, extra_gs=extra_gs
        )
        mark = mark_stage.run()

        ctx = SweepContext(
            config=self.config,
            store=self.store,
            index=self.index,
            recipes=self.recipes,
            disk=self.disk,
            mark=mark,
        )
        with self.disk.phase("gc.sweep") as sweep:
            result = self.migration.migrate(ctx)
            sweep.annotate(
                round_index=self._rounds,
                involved_containers=len(mark.gs_list),
                reclaimed_containers=len(result.reclaimed_ids),
                produced_containers=len(result.produced_ids),
                migrated_bytes=result.migrated_bytes,
                migrated_chunks=result.migrated_chunks,
                reclaimed_bytes=result.reclaimed_bytes,
            )

        analyze_seconds = (
            ctx.analyze_ops
            * self.config.gccdf.analyze_op_cost
            / max(1, ctx.analyze_parallelism)
        )
        if tracer.enabled:
            # The analyze stage is CPU work charged in simulated seconds
            # (ops × modelled per-op cost), so it is emitted directly rather
            # than through a disk phase.  Measured interpreter wall time
            # (``analyze_cpu_seconds``) never enters the trace: events must
            # stay deterministic.
            tracer.emit(
                "gc.analyze",
                sim_time=self.disk.sim_time,
                duration=analyze_seconds,
                fields={
                    "round_index": self._rounds,
                    "analyze_ops": ctx.analyze_ops,
                    "parallelism": ctx.analyze_parallelism,
                },
            )

        self.store.journal.commit(round_intent)
        self.disk.crash_point("gc.purge", round_index=self._rounds)
        purged = self.recipes.purge_deleted()
        self.store.journal.close(round_intent)
        if tracer.enabled:
            tracer.emit(
                "gc.purge",
                sim_time=self.disk.sim_time,
                fields={"round_index": self._rounds, "backups_purged": len(purged)},
            )

        report = GCReport(
            round_index=self._rounds,
            backups_purged=len(purged),
            involved_containers=len(mark.gs_list),
            reclaimed_containers=len(result.reclaimed_ids),
            produced_containers=len(result.produced_ids),
            migrated_bytes=result.migrated_bytes,
            reclaimed_bytes=result.reclaimed_bytes,
            migrated_chunks=result.migrated_chunks,
            mark_seconds=mark.mark_seconds,
            analyze_seconds=analyze_seconds,
            sweep_read_seconds=sweep.delta.read_seconds,
            sweep_write_seconds=sweep.delta.write_seconds,
            analyze_cpu_seconds=ctx.analyze_watch.elapsed,
        )
        self._rounds += 1
        self.history.append(report)
        return report
