"""Hybrid-dedup benchmark — writes ``BENCH_hybrid.json``.

Three claims, three measurements:

1. **Drained equivalence** (hard gate, every approach): running the §6.1
   rotation protocol with ``dedup_mode="hybrid"`` and then draining the
   deferred-duplicate backlog through GC produces a system equivalent to
   inline dedup — same live backups, same per-backup logical chunk
   streams, same physical bytes, verifier clean, zero pending candidates.
   Approaches whose pipeline falls back to inline (rewriting policies,
   MFDedup, nondedup) must be *trivially* identical; naive and gccdf must
   converge after coalescing.

2. **Hard equivalence under real deferral** (hard gate): a
   duplicated-source workload — every backup replayed under two source
   names, the fleet's shared-domain cross-tenant shape — forces a large
   deferred population (hybrid ingest only sees its own source's neighbor
   window).  For naive and gccdf, in both GC modes, the drained hybrid
   system must match inline exactly, and the run must actually exercise
   the machinery (``deferred > 0`` and ``coalesced > 0``).

3. **Probe reduction** (hard gate): over an ingest-only phase at medium
   scale, hybrid must perform measurably fewer dedup-path index probes
   per chunk than inline (inline pays ``1 + dup_fraction`` probes per
   chunk; hybrid pays roughly the neighbor-hit fraction).  GC-side
   rededup probes are reported separately — they ride the GC cycle, not
   the ingest path.

The convergence series (per-rotation physical bytes before/after GC and
the pending backlog) is recorded for plotting but gated only on its final
point (covered by claim 2).

Usage::

    PYTHONPATH=src python benchmarks/hybrid.py \\
        --out benchmarks/results/BENCH_hybrid.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.backup.approaches import APPROACHES, make_service
from repro.backup.driver import BackupSpec, RotationDriver
from repro.backup.options import ServiceOptions
from repro.backup.verify import verify_service
from repro.config import SystemConfig
from repro.dedup.keys import KEY_SIZE, logical_fp
from repro.gc.incremental import GCBudget
from repro.workloads.datasets import dataset

#: Workload for the all-approach equivalence run (same as the incremental
#: GC gate: ``web`` shares chunks across consecutive backups).
EQUIV_DATASET = "web"
EQUIV_SCALE = 0.1
EQUIV_BACKUPS = 16

#: The duplicated-source runs use a smaller slice — every backup is
#: ingested twice, and the point is deferral volume, not byte volume.
HARD_SCALE = 0.05
HARD_BACKUPS = 12

#: Small budget so drained incremental cycles take many increments.
HARD_BUDGET = GCBudget(mark_recipes=3, sweep_containers=2, rededup_keys=3)

#: Extra GC rounds allowed to drain the deferred backlog after the
#: protocol ends (idle candidates need one sweep plus one drop round).
MAX_DRAIN_ROUNDS = 4


def _duplicated(backups) -> list[BackupSpec]:
    """Each backup under two source names — see ``repro.tools``'s fault
    CLI helper: the mirrored copy neighbor-misses everything and becomes
    the deferred-duplicate population."""
    out: list[BackupSpec] = []
    for spec in backups:
        out.append(BackupSpec(source=f"{spec.source}#a", chunks=spec.chunks))
        out.append(BackupSpec(source=f"{spec.source}#b", chunks=spec.chunks))
    return out


def _live_streams(service) -> dict:
    """Per-live-backup logical chunk stream: ``[(logical fp, size), …]``.

    Storage-key generations are an implementation detail of hybrid mode
    (a coalesced system may legitimately settle on different generation
    numbers than inline ever minted), so equivalence is defined over the
    20-byte logical fingerprints.  MFDedup recipes carry raw 20-byte
    fingerprints rather than generational storage keys; those pass
    through unchanged.
    """

    def fp_of(entry) -> str:
        fp = entry.fp
        return (logical_fp(fp) if len(fp) == KEY_SIZE else fp).hex()

    return {
        backup_id: [
            (fp_of(entry), entry.size)
            for entry in service.recipes.get(backup_id).entries
        ]
        for backup_id in service.live_backup_ids()
    }


def _live_ratio(service) -> float:
    """Live dedup ratio: retained logical bytes over physical bytes.

    The cumulative :attr:`ServiceStats.dedup_ratio` intentionally differs
    between modes (hybrid stores deferred duplicates before coalescing
    them), so convergence is measured on the *live* ratio, which both
    modes must agree on once drained.
    """
    live_logical = sum(
        service.recipes.get(backup_id).logical_size
        for backup_id in service.live_backup_ids()
    )
    physical = service.stats().physical_bytes
    return live_logical / physical if physical else 0.0


def _pending(service) -> int:
    hybrid = getattr(service, "hybrid", None)
    return len(hybrid.candidates) if hybrid is not None else 0


def _drain(service) -> int:
    """Run extra GC rounds until no deferred candidates remain."""
    rounds = 0
    while _pending(service) and rounds < MAX_DRAIN_ROUNDS:
        service.run_gc()
        rounds += 1
    return rounds


def _compare(inline_service, hybrid_service) -> dict:
    return {
        "live_ids_equal": (
            inline_service.live_backup_ids() == hybrid_service.live_backup_ids()
        ),
        "streams_equal": (
            _live_streams(inline_service) == _live_streams(hybrid_service)
        ),
        "physical_bytes_equal": (
            inline_service.stats().physical_bytes
            == hybrid_service.stats().physical_bytes
        ),
        "verifier_clean": (
            verify_service(inline_service).errors == []
            and verify_service(hybrid_service).errors == []
        ),
        "pending_zero": _pending(hybrid_service) == 0,
    }


def _run_protocol(approach: str, dedup_mode: str):
    config = SystemConfig.scaled(retained=10, turnover=3)
    service = make_service(approach, config, ServiceOptions(dedup_mode=dedup_mode))
    driver = RotationDriver(service, config.retention, dataset_name=EQUIV_DATASET)
    driver.run(dataset(EQUIV_DATASET, scale=EQUIV_SCALE, num_backups=EQUIV_BACKUPS))
    return service


def equivalence_section(progress) -> tuple[dict, bool]:
    """Part 1: drained hybrid vs inline, every approach, standard protocol."""
    approaches = {}
    ok = True
    for approach in APPROACHES:
        progress(f"equivalence: {approach}")
        inline_service = _run_protocol(approach, "inline")
        hybrid_service = _run_protocol(approach, "hybrid")
        drain_rounds = _drain(hybrid_service)
        checks = _compare(inline_service, hybrid_service)
        metrics = hybrid_service.runtime_metrics()
        approaches[approach] = {
            **checks,
            "drain_rounds": drain_rounds,
            "deferred": metrics.get("hybrid.deferred", 0),
            "coalesced": metrics.get("hybrid.coalesced", 0),
        }
        if not all(checks.values()):
            ok = False
            progress(f"  FAIL: {approach}: {approaches[approach]}")
    return {
        "dataset": EQUIV_DATASET,
        "scale": EQUIV_SCALE,
        "num_backups": EQUIV_BACKUPS,
        "approaches": approaches,
        "all_equivalent": ok,
    }, ok


def _rotation_loop(approach: str, dedup_mode: str, gc_mode: str, record=None):
    """Manual rotation over the duplicated-source workload.

    ``record(rotation, service, stage)`` is called around each GC so the
    convergence section can sample physical bytes pre/post coalescing.
    """
    config = SystemConfig.scaled(retained=8, turnover=4)
    budget = HARD_BUDGET if gc_mode == "incremental" else None
    service = make_service(
        approach,
        config,
        ServiceOptions(dedup_mode=dedup_mode, gc_mode=gc_mode, gc_budget=budget),
    )
    backups = _duplicated(
        dataset(EQUIV_DATASET, scale=HARD_SCALE, num_backups=HARD_BACKUPS)
    )
    rotation = 0
    for start in range(0, len(backups), 4):
        for spec in backups[start : start + 4]:
            service.ingest(spec.chunks, source=spec.source)
        live = service.live_backup_ids()
        if len(live) > 8:
            for backup_id in live[:4]:
                service.delete_backup(backup_id)
        if record is not None:
            record(rotation, service, "pre_gc")
        service.run_gc()
        if record is not None:
            record(rotation, service, "post_gc")
        rotation += 1
    _drain(service)
    return service


def hard_equivalence_section(progress) -> tuple[dict, bool]:
    """Part 2: duplicated-source equivalence for the hybrid-path approaches."""
    runs = {}
    ok = True
    for approach in ("naive", "gccdf"):
        inline_service = _rotation_loop(approach, "inline", "stw")
        for gc_mode in ("stw", "incremental"):
            progress(f"hard equivalence: {approach} / {gc_mode}")
            hybrid_service = _rotation_loop(approach, "hybrid", gc_mode)
            checks = _compare(inline_service, hybrid_service)
            metrics = hybrid_service.runtime_metrics()
            exercised = (
                metrics.get("hybrid.deferred", 0) > 0
                and metrics.get("hybrid.coalesced", 0) > 0
            )
            runs[f"{approach}/{gc_mode}"] = {
                **checks,
                "deferred": metrics.get("hybrid.deferred", 0),
                "coalesced": metrics.get("hybrid.coalesced", 0),
                "rededup_exercised": exercised,
            }
            if not (all(checks.values()) and exercised):
                ok = False
                progress(f"  FAIL: {approach}/{gc_mode}: {runs[f'{approach}/{gc_mode}']}")
    return {
        "dataset": EQUIV_DATASET,
        "scale": HARD_SCALE,
        "num_backups": HARD_BACKUPS,
        "runs": runs,
        "all_equivalent": ok,
    }, ok


def probe_section(args: argparse.Namespace, progress) -> tuple[dict, bool]:
    """Part 3: ingest-path index probes per chunk, inline vs hybrid.

    Ingest-only (no deletions, no GC), so the probe counters isolate the
    ingest fast path: inline charges one logical-index probe per chunk
    plus one validate per duplicate hit; hybrid charges one validate per
    neighbor hit and nothing on the miss path.
    """
    backups = _duplicated(
        dataset(EQUIV_DATASET, scale=args.probe_scale, num_backups=args.probe_backups)
    )
    total_chunks = sum(len(spec.chunks) for spec in backups)
    results = {}
    for dedup_mode in ("inline", "hybrid"):
        progress(f"probes: {dedup_mode} ({total_chunks} chunks)")
        config = SystemConfig.scaled(retained=len(backups), turnover=1)
        service = make_service(
            "naive", config, ServiceOptions(dedup_mode=dedup_mode)
        )
        for spec in backups:
            service.ingest(spec.chunks, source=spec.source)
        probes = service.pipeline.logical.lookups + service.index.lookups
        results[dedup_mode] = {
            "dedup_probes": probes,
            "probes_per_chunk": probes / total_chunks if total_chunks else 0.0,
            "index_lookups": service.index.lookups,
            "logical_lookups": service.pipeline.logical.lookups,
        }
        if dedup_mode == "hybrid":
            metrics = service.runtime_metrics()
            results[dedup_mode]["deferred"] = metrics["hybrid.deferred"]
            results[dedup_mode]["rededup_probes"] = metrics["hybrid.rededup_probes"]
    reduction = 1.0 - (
        results["hybrid"]["probes_per_chunk"]
        / results["inline"]["probes_per_chunk"]
    )
    ok = results["hybrid"]["probes_per_chunk"] < results["inline"]["probes_per_chunk"]
    if not ok:
        progress("  FAIL: hybrid did not reduce ingest-path probes per chunk")
    return {
        "dataset": EQUIV_DATASET,
        "scale": args.probe_scale,
        "num_backups": args.probe_backups,
        "total_chunks": total_chunks,
        "modes": results,
        "probe_reduction": reduction,
        "hybrid_fewer_probes": ok,
    }, ok


def convergence_section(progress) -> dict:
    """Per-rotation convergence series for naive/stw (reporting only)."""
    progress("convergence: naive / stw series")
    series: list[dict] = []

    def record(rotation: int, service, stage: str) -> None:
        if stage == "pre_gc":
            series.append(
                {
                    "rotation": rotation,
                    "physical_bytes_pre_gc": service.stats().physical_bytes,
                    "pending_pre_gc": _pending(service),
                }
            )
        else:
            series[-1]["physical_bytes_post_gc"] = service.stats().physical_bytes
            series[-1]["pending_post_gc"] = _pending(service)
            series[-1]["live_dedup_ratio"] = _live_ratio(service)

    _rotation_loop("naive", "hybrid", "stw", record=record)
    inline_series: list[dict] = []

    def record_inline(rotation: int, service, stage: str) -> None:
        if stage == "post_gc":
            inline_series.append(
                {
                    "rotation": rotation,
                    "physical_bytes_post_gc": service.stats().physical_bytes,
                    "live_dedup_ratio": _live_ratio(service),
                }
            )

    _rotation_loop("naive", "inline", "stw", record=record_inline)
    return {"hybrid": series, "inline": inline_series}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Hybrid-dedup benchmark (equivalence + probe reduction)."
    )
    parser.add_argument(
        "--probe-scale", type=float, default=0.25,
        help="workload scale of the probe-reduction run (default: %(default)s)",
    )
    parser.add_argument(
        "--probe-backups", type=int, default=12,
        help="backups in the probe-reduction run, doubled by source "
        "duplication (default: %(default)s)",
    )
    parser.add_argument(
        "--out", default="BENCH_hybrid.json", help="output path (default: %(default)s)"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    def progress(line: str) -> None:
        print(line, file=sys.stderr, flush=True)

    equivalence, equiv_ok = equivalence_section(progress)
    hard, hard_ok = hard_equivalence_section(progress)
    probes, probes_ok = probe_section(args, progress)
    convergence = convergence_section(progress)
    ok = equiv_ok and hard_ok and probes_ok
    payload = {
        "equivalence": equivalence,
        "hard_equivalence": hard,
        "probes": probes,
        "convergence": convergence,
        "gate_passed": ok,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"benchmark written to {args.out}", file=sys.stderr)
    print(
        json.dumps(
            {
                "all_equivalent": equivalence["all_equivalent"],
                "hard_equivalent": hard["all_equivalent"],
                "probe_reduction": round(probes["probe_reduction"], 4),
                "probes_per_chunk_inline": round(
                    probes["modes"]["inline"]["probes_per_chunk"], 4
                ),
                "probes_per_chunk_hybrid": round(
                    probes["modes"]["hybrid"]["probes_per_chunk"], 4
                ),
            }
        )
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
