"""Incremental, crash-recoverable GC (ROADMAP item 5).

Restructures the stop-the-world mark → analyze → copy-forward/sweep →
reclaim cycle of :class:`~repro.gc.engine.MarkSweepGC` into resumable,
budgeted increments so an always-on fleet can interleave collection with
foreground ingest/restore traffic:

* **Mark** proceeds ``mark_recipes`` recipes per step over snapshots of the
  deleted/live recipe populations taken when the cycle begins.
* **Sweep** proceeds ``sweep_containers`` sources per step (classic scan
  order) or one GCCDF segment per step; the copy-forward writer is shared
  across increments, so destinations fill in per-destination slices exactly
  as in one uninterrupted sweep.
* **Reclaim** stays deferred behind the copy-forward seal protocol, with a
  *live-reference barrier*: chunks revived by an ingest interleaved after
  their source was partitioned are never invalidated — the source is
  re-queued and re-processed instead of reclaimed.

The whole cycle runs under one ``gc.cycle`` intent in the device's
:class:`~repro.faults.IntentJournal` whose payload *is* the persistent
:class:`GCCycleState` (mark frontier, candidate set, copy-forward progress).
A crash at any increment boundary (the new ``gc.increment`` crash point)
recovers to a verifier-clean state — recovery repairs the cycle state in
place and leaves the intent **open**, so the cycle *resumes* from the
journal rather than restarting; a crash after the cycle committed rolls the
final selective purge forward.

A *drained* cycle (``collect()``, which runs every increment back to back)
performs the byte-identical read/write sequence of the stop-the-world
engine and returns a counter-identical :class:`~repro.gc.report.GCReport` —
the equivalence the ``benchmarks/incgc.py`` gate pins for every approach.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import SystemConfig
from repro.dedup.hybrid import HybridState, forced_containers, rededup_slice
from repro.errors import ConfigError
from repro.gc.mark import RECIPE_ENTRY_BYTES, MarkResult
from repro.gc.migration import (
    JournaledCopyForward,
    MigrationResult,
    MigrationStrategy,
    NaiveMigration,
    SweepContext,
    partition,
    partition_members,
    sweep_source,
)
from repro.gc.report import GCReport
from repro.gc.vc_table import make_vc_table
from repro.index.fingerprint_index import FingerprintIndex
from repro.index.recipe import RecipeStore
from repro.simio.disk import DiskModel
from repro.storage.store import ContainerStore
from repro.util.rng import DeterministicRng


@dataclass(frozen=True)
class GCBudget:
    """Per-increment work budgets (the kv-emulator ``max_rounds`` shape)."""

    #: Recipes scanned per mark step.
    mark_recipes: int = 8
    #: Source containers examined per classic sweep step (GCCDF instead
    #: processes one ``segment_size`` segment per step).
    sweep_containers: int = 4
    #: Expired volumes unlinked per MFDedup reorg step.
    mfdedup_volumes: int = 4
    #: Deferred-duplicate candidates coalesced per hybrid rededup step.
    rededup_keys: int = 8

    def __post_init__(self) -> None:
        for name in (
            "mark_recipes",
            "sweep_containers",
            "mfdedup_volumes",
            "rededup_keys",
        ):
            if getattr(self, name) < 1:
                raise ConfigError(f"GCBudget.{name} must be >= 1")


@dataclass
class GCCycleState:
    """Persistent state of one incremental cycle.

    Lives as the (mutable) payload of the cycle's open ``gc.cycle`` journal
    intent — the NVRAM model — so it survives a crash verbatim and carries
    the mark frontier, candidate set, and copy-forward progress across
    increments and across recovery.
    """

    round_index: int
    #: (``rededup`` →) ``mark`` → ``sweep`` → ``finalize``; the cycle
    #: completes out of ``finalize`` (the intent commits, the selective
    #: purge runs).  The rededup phase only exists for hybrid-dedup
    #: services with deferred candidates at cycle start.
    phase: str = "mark"
    # -- hybrid rededup frontier ---------------------------------------
    #: Deferred-duplicate candidate keys pinned (sorted) at cycle start;
    #: processed ``budget.rededup_keys`` per step before the mark begins.
    rededup_queue: list = field(default_factory=list)
    rededup_pos: int = 0
    #: Recipe-population snapshots taken when the cycle began.  Recipes
    #: deleted after the snapshot wait for the next cycle; recipes ingested
    #: after it are protected by the live-reference barrier.
    deleted_ids: list[int] = field(default_factory=list)
    live_ids: list[int] = field(default_factory=list)
    # -- mark frontier -------------------------------------------------
    #: 0 = deleted-recipe pass, 1 = live-recipe pass.
    mark_pass: int = 0
    mark_pos: int = 0
    candidate_keys: set = field(default_factory=set)
    gs_set: set = field(default_factory=set)
    rrt_sets: dict = field(default_factory=dict)
    #: fp → placement memo (one index probe per unique key, as in the
    #: stop-the-world kernels).  Dropped by recovery: placements may have
    #: been repaired.
    resolved: dict = field(default_factory=dict)
    live_keys: set = field(default_factory=set)
    #: Keys referenced by recipes ingested while the mark was in flight;
    #: folded into the VC table when the mark completes.
    barrier_keys: set = field(default_factory=set)
    mark_seconds: float = 0.0
    mark_result: MarkResult | None = None
    # -- sweep frontier ------------------------------------------------
    #: Classic sweep: GS-list source ids, processed in order.
    sweep_queue: list = field(default_factory=list)
    sweep_pos: int = 0
    #: GCCDF: reclaimable container ids grouped by segment; one batch per
    #: step (contents are re-partitioned at processing time — metadata
    #: only, identical when drained).
    segment_batches: list = field(default_factory=list)
    segment_pos: int = 0
    segments_done: int = 0
    #: Sources whose reclaim found revived chunks (live-reference barrier);
    #: re-processed before the cycle may complete.
    requeue: list = field(default_factory=list)
    # -- copy-forward progress -----------------------------------------
    #: fp → destination id, durable only once the destination sealed;
    #: recovery scrubs entries whose repoint did not survive.
    migrated: dict = field(default_factory=dict)
    #: Destinations sealed so far (the writer is rebuilt after a crash, so
    #: its own committed list cannot be trusted across increments).
    produced_ids: list = field(default_factory=list)
    sweep_result: MigrationResult = field(default_factory=MigrationResult)
    analyze_ops: int = 0
    analyze_cpu_seconds: float = 0.0
    sweep_read_seconds: float = 0.0
    sweep_write_seconds: float = 0.0
    #: Increment boundaries crossed (context for the crash point).
    steps: int = 0
    #: Set by recovery: transient runners (sweep context, copy-forward
    #: writer, GCCDF analyzer state) must be rebuilt before the next step.
    dirty: bool = False


class _CycleCopyForward(JournaledCopyForward):
    """Copy-forward writer whose durable progress lives in the cycle state.

    The duplicate guard and result accounting alias :class:`GCCycleState`
    fields so they survive writer rebuilds, sealed destinations are recorded
    in the state, and reclaims honour the live-reference barrier: a source
    holding chunks revived since it was partitioned is re-queued instead of
    reclaimed (reclaiming would discard index keys a live recipe now needs).
    """

    def __init__(self, ctx: SweepContext, state: GCCycleState):
        super().__init__(ctx)
        self._state = state
        self._migrated = state.migrated
        self.result = state.sweep_result

    def _on_seal(self, container) -> None:
        super()._on_seal(container)
        self._state.produced_ids.append(container.container_id)

    def _reclaim(self, container_id, invalid_fps, invalid_bytes) -> None:
        # Live-reference barrier: an interleaved ingest may have revived a
        # chunk that was invalid when this source was partitioned.  The VC
        # table only ever grows, so re-checking here is sufficient — and in
        # a drained cycle it never fires (nothing is interleaved).
        vc_table = self.ctx.mark.vc_table
        if any(fp in vc_table for fp in invalid_fps):
            self._state.requeue.append(container_id)
            return
        super()._reclaim(container_id, invalid_fps, invalid_bytes)


class IncrementalGC:
    """Budgeted, resumable mark–sweep GC for container-based services.

    Duck-types :class:`~repro.gc.engine.MarkSweepGC` (``collect()`` /
    ``history``) and adds the incremental surface: :meth:`begin`,
    :meth:`step`, :attr:`active`, :meth:`pending`, and :meth:`should_run`
    (the kv-emulator-style utilization trigger).
    """

    def __init__(
        self,
        config: SystemConfig,
        store: ContainerStore,
        index: FingerprintIndex,
        recipes: RecipeStore,
        disk: DiskModel,
        migration: MigrationStrategy | None = None,
        budget: GCBudget | None = None,
        hybrid: HybridState | None = None,
    ):
        self.config = config
        self.store = store
        self.index = index
        self.recipes = recipes
        self.disk = disk
        self.migration = migration or NaiveMigration()
        self.budget = budget or GCBudget()
        self.hybrid = hybrid
        self._rounds = 0
        self.history: list[GCReport] = []
        self._record = None
        self._state: GCCycleState | None = None
        #: Transient per-cycle runners, rebuilt when the state is dirty.
        self._ctx: SweepContext | None = None
        self._cf: _CycleCopyForward | None = None
        self._gccdf_runners = None

    # ------------------------------------------------------------------
    # Trigger / lifecycle
    # ------------------------------------------------------------------

    @property
    def journal(self):
        return self.store.journal

    @property
    def active(self) -> bool:
        """A cycle is in flight (its ``gc.cycle`` intent is open)."""
        self._sync()
        return self._record is not None

    def pending(self) -> int:
        """Logically deleted backups awaiting collection."""
        return len(self.recipes.deleted_ids())

    def should_run(self, trigger: int = 1) -> bool:
        """Utilization trigger: an in-flight cycle, or enough garbage."""
        return self.active or self.pending() >= trigger

    def begin(self) -> None:
        """Open a cycle: snapshot the recipe populations, journal the state.

        No-op when a cycle is already in flight.
        """
        self._sync()
        if self._record is not None:
            return
        state = GCCycleState(
            round_index=self._rounds,
            deleted_ids=self.recipes.deleted_ids(),
            live_ids=self.recipes.live_ids(),
        )
        if self.hybrid is not None:
            # Pin the candidate set (sorted — the stop-the-world drain
            # order, so both engines charge identical I/O in identical
            # order).  With nothing deferred the phase is skipped
            # entirely, but coalesced containers from a recovered slice
            # still reach the mark's GS list.
            state.rededup_queue = sorted(self.hybrid.candidates)
            if state.rededup_queue:
                state.phase = "rededup"
            else:
                state.gs_set |= forced_containers(self.hybrid, self.store)
        self._state = state
        self._record = self.journal.begin("gc.cycle", state=state)

    def collect(self) -> GCReport:
        """Drain a full cycle (resuming an in-flight one first).

        The stop-the-world-compatible entry point: performs the
        byte-identical I/O sequence of ``MarkSweepGC.collect()`` when no
        traffic is interleaved.
        """
        self._sync()
        if self._record is None:
            self.begin()
        while True:
            report = self.step()
            if report is not None:
                return report

    def step(self) -> GCReport | None:
        """Run one budgeted increment; returns the report when the cycle
        completes, else ``None`` after firing the ``gc.increment`` boundary
        crash point."""
        self._sync()
        if self._record is None:
            return None
        state = self._state
        if state.dirty:
            self._reset_runners(state)
        if state.phase == "rededup":
            self._rededup_increment(state)
        elif state.phase == "mark":
            self._mark_increment(state)
        elif state.phase == "sweep":
            self._sweep_increment(state)
        else:
            report = self._finalize(state)
            if report is not None:
                return report
        self._boundary(state)
        return None

    def note_live_references(self, fps) -> None:
        """Live-reference barrier: record keys of a recipe ingested while a
        cycle is in flight, so the sweep never invalidates them."""
        if self._record is None:
            return
        state = self._state
        if state.mark_result is None:
            state.barrier_keys.update(fps)
        else:
            state.mark_result.vc_table.update(fps)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _sync(self) -> None:
        """Reattach after recovery: if recovery rolled the committed cycle
        forward (purge replayed, intent closed), drop it without a report —
        exactly the stop-the-world outcome of a crash at ``gc.purge``
        (``_rounds`` is not advanced; the next cycle reuses the index)."""
        if self._record is None:
            return
        if not any(rec is self._record for rec in self.journal.records("gc.cycle")):
            self._record = None
            self._state = None
            self._ctx = None
            self._cf = None
            self._gccdf_runners = None

    def _boundary(self, state: GCCycleState) -> None:
        state.steps += 1
        self.disk.crash_point(
            "gc.increment",
            round_index=state.round_index,
            phase=state.phase,
            step=state.steps,
        )

    def _reset_runners(self, state: GCCycleState) -> None:
        if self._ctx is not None:
            state.analyze_cpu_seconds += self._ctx.analyze_watch.elapsed
        self._ctx = None
        self._cf = None
        self._gccdf_runners = None
        state.dirty = False

    @property
    def _is_gccdf(self) -> bool:
        return getattr(self.migration, "name", "") == "gccdf"

    def _ensure_runners(self, state: GCCycleState) -> None:
        if self._ctx is None:
            ctx = SweepContext(
                config=self.config,
                store=self.store,
                index=self.index,
                recipes=self.recipes,
                disk=self.disk,
                mark=state.mark_result,
            )
            ctx.analyze_ops = state.analyze_ops
            self._ctx = ctx
            self._cf = _CycleCopyForward(ctx, state)
        if self._is_gccdf and self._gccdf_runners is None:
            # Imported lazily: repro.core pulls in the whole GCCDF pipeline,
            # which this module only needs for that one strategy.
            from repro.core.analyzer import Analyzer, ReferenceChecker
            from repro.core.planner import Planner

            checker = ReferenceChecker(self.recipes, self.config.gccdf)
            analyzer = Analyzer(checker, self.config.gccdf)
            planner = Planner(
                self.config.gccdf,
                rng=DeterministicRng(getattr(self.migration, "_seed", 0)).fork(
                    "round", state.round_index
                ),
            )
            self._gccdf_runners = (checker, analyzer, planner)

    # -- hybrid rededup ------------------------------------------------

    def _rededup_increment(self, state: GCCycleState) -> None:
        """Coalesce up to ``budget.rededup_keys`` deferred duplicates.

        Each slice runs the same journaled protocol as the stop-the-world
        pass (:func:`~repro.dedup.hybrid.rededup_slice`), with the cycle's
        live-reference barrier threaded through so a coalesce retargets
        barrier protection from the duplicate key to the canonical one.
        When the queue drains, the containers that held coalesced copies
        seed the mark's GS set and the cycle proceeds to the mark phase.
        """
        hybrid = self.hybrid
        queue = state.rededup_queue
        remaining = self.budget.rededup_keys
        coalesced_before = hybrid.coalesced
        with self.disk.phase("gc.rededup") as ph:
            while remaining > 0 and state.rededup_pos < len(queue):
                key = queue[state.rededup_pos]
                state.rededup_pos += 1
                remaining -= 1
                rededup_slice(
                    key,
                    state=hybrid,
                    index=self.index,
                    recipes=self.recipes,
                    journal=self.journal,
                    disk=self.disk,
                    barrier=state.barrier_keys,
                )
            ph.annotate(
                round_index=state.round_index,
                rededup_pos=state.rededup_pos,
                coalesced=hybrid.coalesced - coalesced_before,
                pending=len(hybrid.candidates),
            )
        if state.rededup_pos >= len(queue):
            state.gs_set |= forced_containers(hybrid, self.store)
            state.phase = "mark"

    # -- mark ----------------------------------------------------------

    def _mark_increment(self, state: GCCycleState) -> None:
        """Scan up to ``budget.mark_recipes`` recipes of the cycle snapshot.

        Per-entry kernel (works for both recipe representations) with the
        stop-the-world probe discipline: one index probe per unique key,
        memoised across both passes, and the ``gc.mark`` crash point between
        them — so a drained cycle is read- and probe-identical to
        :class:`~repro.gc.mark.MarkStage`.
        """
        remaining = self.budget.mark_recipes
        with self.disk.phase("gc.mark") as ph:
            while remaining > 0:
                if state.mark_pass == 0:
                    if state.mark_pos >= len(state.deleted_ids):
                        # Deleted pass complete (idempotent on re-entry:
                        # the RRT skeleton is rebuilt from gs_set).
                        self.disk.crash_point(
                            "gc.mark", gs_containers=len(state.gs_set)
                        )
                        state.rrt_sets = {cid: set() for cid in state.gs_set}
                        state.mark_pass = 1
                        state.mark_pos = 0
                        continue
                    recipe = self.recipes.get(state.deleted_ids[state.mark_pos])
                    self.disk.read(recipe.num_chunks * RECIPE_ENTRY_BYTES)
                    self._scan_deleted(state, recipe)
                else:
                    if state.mark_pos >= len(state.live_ids):
                        self._complete_mark(state)
                        break
                    recipe = self.recipes.get(state.live_ids[state.mark_pos])
                    self.disk.read(recipe.num_chunks * RECIPE_ENTRY_BYTES)
                    self._scan_live(state, recipe)
                state.mark_pos += 1
                remaining -= 1
            ph.annotate(
                round_index=state.round_index,
                mark_pass=state.mark_pass,
                mark_pos=state.mark_pos,
            )
        state.mark_seconds += ph.delta.read_seconds

    def _scan_deleted(self, state: GCCycleState, recipe) -> None:
        candidate_keys = state.candidate_keys
        resolved = state.resolved
        index_lookup = self.index.lookup
        for entry in recipe.entries:
            fp = entry.fp
            if fp in candidate_keys:
                continue
            candidate_keys.add(fp)
            placement = resolved[fp] = index_lookup(fp)
            if placement is not None:
                state.gs_set.add(placement.container_id)

    def _scan_live(self, state: GCCycleState, recipe) -> None:
        missing = object()
        resolved = state.resolved
        resolved_get = resolved.get
        index_lookup = self.index.lookup
        live_keys = state.live_keys
        rrt_sets = state.rrt_sets
        backup_id = recipe.backup_id
        seen_containers: set[int] = set()
        for entry in recipe.entries:
            fp = entry.fp
            live_keys.add(fp)
            placement = resolved_get(fp, missing)
            if placement is missing:
                placement = resolved[fp] = index_lookup(fp)
            if placement is None:
                continue
            container_id = placement.container_id
            if container_id in rrt_sets and container_id not in seen_containers:
                seen_containers.add(container_id)
                rrt_sets[container_id].add(backup_id)

    def _complete_mark(self, state: GCCycleState) -> None:
        vc_table = make_vc_table(self.config.vc_table, expected_keys=len(self.index))
        vc_table.update(state.live_keys)
        if state.barrier_keys:
            vc_table.update(state.barrier_keys)
            state.barrier_keys.clear()
        # Columnar services hand the sweep kernels the live-id set: every
        # snapshot live key maps through the interner (barrier keys are
        # deliberately left out — they are VC members, and live_ids only
        # ever needs to be a *subset* of the table's membership).
        live_ids = None
        if self.recipes.all_columnar():
            id_map = self.recipes.interner.id_map()
            live_ids = frozenset(
                chunk_id
                for chunk_id in map(id_map.get, state.live_keys)
                if chunk_id is not None
            )
        state.mark_result = MarkResult(
            vc_table=vc_table,
            gs_list=tuple(sorted(state.gs_set)),
            rrt={cid: tuple(sorted(b)) for cid, b in state.rrt_sets.items()},
            candidate_keys=len(state.candidate_keys),
            mark_seconds=0.0,  # accumulated in state.mark_seconds instead
            live_ids=live_ids,
        )
        # The scan working sets are no longer needed; the memo must not
        # outlive the mark (the sweep mutates placements).
        state.live_keys = set()
        state.resolved = {}
        state.phase = "sweep"
        self._prepare_sweep(state)

    def _prepare_sweep(self, state: GCCycleState) -> None:
        mark = state.mark_result
        if self._is_gccdf:
            # Pin reclaimable ids into segment batches (the Preprocessor's
            # work list, ids only); contents re-partition at processing time.
            work = [
                cid
                for cid in mark.gs_list
                if partition_container_ids(self, mark, cid)[1] > 0
            ]
            size = self.config.gccdf.segment_size
            state.segment_batches = [
                work[start : start + size] for start in range(0, len(work), size)
            ]
            state.segment_pos = 0
        else:
            state.sweep_queue = list(mark.gs_list)
            state.sweep_pos = 0

    # -- sweep ---------------------------------------------------------

    def _sweep_increment(self, state: GCCycleState) -> None:
        self._ensure_runners(state)
        if state.requeue:
            # Sources deferred by the live-reference barrier re-enter the
            # work list (as their own GCCDF batches — re-analysis is cheap
            # and the segment cache stays bounded).
            if self._is_gccdf:
                state.segment_batches.extend([cid] for cid in state.requeue)
            else:
                state.sweep_queue.extend(state.requeue)
            state.requeue = []
        if self._is_gccdf:
            if state.segment_pos < len(state.segment_batches):
                self._gccdf_segment_step(state)
            done = state.segment_pos >= len(state.segment_batches)
        else:
            self._naive_sweep_step(state)
            done = state.sweep_pos >= len(state.sweep_queue)
        if done:
            state.phase = "finalize"

    def _naive_sweep_step(self, state: GCCycleState) -> None:
        ctx, copy_forward = self._ctx, self._cf
        queue = state.sweep_queue
        remaining = self.budget.sweep_containers
        with self.disk.phase("gc.sweep") as ph:
            while remaining > 0 and state.sweep_pos < len(queue):
                container_id = queue[state.sweep_pos]
                state.sweep_pos += 1
                remaining -= 1
                if container_id not in self.store:
                    continue  # reclaimed before a crash; nothing left here
                part = partition(ctx, container_id)
                if part.invalid_bytes == 0:
                    continue  # involved but fully valid: nothing to reclaim
                sweep_source(copy_forward, ctx, container_id, part)
            ph.annotate(round_index=state.round_index, sweep_pos=state.sweep_pos)
        state.sweep_read_seconds += ph.delta.read_seconds
        state.sweep_write_seconds += ph.delta.write_seconds

    def _gccdf_segment_step(self, state: GCCycleState) -> None:
        """One GCCDF segment: read + cache → analyze → reordered write →
        schedule reclaims.  Mirrors ``GCCDFMigration.migrate``'s per-segment
        body exactly (same analyze-op accounting, same crash point)."""
        ctx, copy_forward = self._ctx, self._cf
        checker, analyzer, planner = self._gccdf_runners
        batch = state.segment_batches[state.segment_pos]
        segment_index = state.segment_pos
        state.segment_pos += 1
        with self.disk.phase("gc.sweep") as ph:
            container_ids: list[int] = []
            valid_chunks = []
            valid_ids: list[int] = []
            columnar = True
            payloads: dict[bytes, bytes] = {}
            owners: set[int] = set()
            reclaims: list[tuple[int, list[bytes], int]] = []
            segment_invalid_bytes = 0
            for container_id in batch:
                if container_id not in self.store:
                    continue  # reclaimed before a crash
                part = partition(ctx, container_id)
                if part.invalid_bytes == 0:
                    continue  # fully valid (possible only after a crash)
                container_ids.append(container_id)
                segment_invalid_bytes += part.invalid_bytes
                reclaims.append(
                    (container_id, part.invalid_keys, part.invalid_bytes)
                )
                owners.update(ctx.mark.rrt.get(container_id, ()))
                if part.valid_ids is None:
                    columnar = False
                if not part.valid:
                    continue
                container = self.store.read_container(container_id)
                valid_chunks.extend(part.valid)
                if part.valid_ids is not None:
                    valid_ids.extend(part.valid_ids)
                if container.has_payloads():
                    for entry in part.valid:
                        payload = container.payload(entry.fp)
                        if payload is not None:
                            payloads[entry.fp] = payload
            if container_ids:
                involved_backups = tuple(sorted(owners))
                builds_before = checker.build_ops
                with ctx.analyze_watch.timed():
                    clusters = analyzer.cluster(
                        valid_chunks,
                        involved_backups,
                        valid_ids=valid_ids if columnar else None,
                    )
                    order = planner.plan(clusters, involved_backups)
                ctx.analyze_ops += (
                    (checker.build_ops - builds_before)
                    + analyzer.last_probe_count
                    + order.num_clusters * order.num_clusters
                    + order.num_chunks
                )
                sequence = order.sequence
                if columnar and not payloads:
                    placements = ctx.index.placements_map()
                    copy_forward.migrate_batch(
                        sequence,
                        [ref.fp for ref in sequence],
                        [ref.size for ref in sequence],
                        [placements[ref.fp].container_id for ref in sequence],
                    )
                else:
                    for ref in sequence:
                        source_id = ctx.index.get(ref.fp).container_id
                        copy_forward.migrate_chunk(
                            ref, payloads.get(ref.fp), source_id
                        )
                ctx.disk.crash_point(
                    "gccdf.segment",
                    segment_index=segment_index,
                    containers=len(container_ids),
                )
                # Validity is stable within one atomic step, so the
                # pre-migration partitions are the reclaim data (revivals
                # between steps are the reclaim barrier's to catch).
                for container_id, container_invalid_keys, container_invalid_bytes in (
                    reclaims
                ):
                    copy_forward.schedule_reclaim(
                        container_id,
                        container_invalid_keys,
                        container_invalid_bytes,
                    )
                state.segments_done += 1
                tracer = ctx.disk.tracer
                if tracer.enabled:
                    tracer.emit(
                        "gc.segment",
                        sim_time=ctx.disk.sim_time,
                        fields={
                            "containers": len(container_ids),
                            "clusters": order.num_clusters,
                            "migrated_chunks": order.num_chunks,
                            "invalid_bytes": segment_invalid_bytes,
                        },
                    )
            ph.annotate(round_index=state.round_index, segment_index=segment_index)
        state.analyze_ops = ctx.analyze_ops
        state.sweep_read_seconds += ph.delta.read_seconds
        state.sweep_write_seconds += ph.delta.write_seconds

    # -- finalize ------------------------------------------------------

    def _finalize(self, state: GCCycleState) -> GCReport | None:
        self._ensure_runners(state)
        ctx, copy_forward = self._ctx, self._cf
        with self.disk.phase("gc.sweep") as ph:
            copy_forward.finish()
        state.sweep_read_seconds += ph.delta.read_seconds
        state.sweep_write_seconds += ph.delta.write_seconds
        if state.requeue:
            # The final drain deferred sources with revived chunks: one more
            # sweep round for them before the cycle may complete.
            state.phase = "sweep"
            return None

        result = state.sweep_result
        result.produced_ids = list(state.produced_ids)
        state.analyze_ops = ctx.analyze_ops
        if self._is_gccdf:
            parallelism = min(
                getattr(self.migration, "parallel_workers", 1),
                max(1, state.segments_done),
            )
        else:
            parallelism = 1
        analyze_seconds = (
            state.analyze_ops * self.config.gccdf.analyze_op_cost / max(1, parallelism)
        )
        tracer = self.disk.tracer
        if tracer.enabled:
            tracer.emit(
                "gc.analyze",
                sim_time=self.disk.sim_time,
                duration=analyze_seconds,
                fields={
                    "round_index": state.round_index,
                    "analyze_ops": state.analyze_ops,
                    "parallelism": parallelism,
                },
            )

        self.journal.commit(self._record)
        self.disk.crash_point("gc.purge", round_index=state.round_index)
        purged = self.recipes.purge_deleted(only=state.deleted_ids)
        self.journal.close(self._record)
        if tracer.enabled:
            tracer.emit(
                "gc.purge",
                sim_time=self.disk.sim_time,
                fields={
                    "round_index": state.round_index,
                    "backups_purged": len(purged),
                },
            )

        report = GCReport(
            round_index=state.round_index,
            backups_purged=len(purged),
            involved_containers=len(state.mark_result.gs_list),
            reclaimed_containers=len(result.reclaimed_ids),
            produced_containers=len(result.produced_ids),
            migrated_bytes=result.migrated_bytes,
            reclaimed_bytes=result.reclaimed_bytes,
            migrated_chunks=result.migrated_chunks,
            mark_seconds=state.mark_seconds,
            analyze_seconds=analyze_seconds,
            sweep_read_seconds=state.sweep_read_seconds,
            sweep_write_seconds=state.sweep_write_seconds,
            analyze_cpu_seconds=state.analyze_cpu_seconds + ctx.analyze_watch.elapsed,
        )
        self._rounds = state.round_index + 1
        self.history.append(report)
        self._record = None
        self._state = None
        self._ctx = None
        self._cf = None
        self._gccdf_runners = None
        return report


def partition_container_ids(
    engine: IncrementalGC, mark: MarkResult, container_id: int
) -> tuple[list, int]:
    """Partition one container against a mark result without a sweep context
    (used while pinning the GCCDF work list).

    Same kernels (and therefore the same index-membership guard) as
    :func:`~repro.gc.migration.partition`: a key the index no longer holds
    (a coalesced hybrid duplicate) is invalid whatever the VC table says.
    """
    part = partition_members(
        engine.store, engine.index, engine.recipes, mark, container_id
    )
    return part.valid, part.invalid_bytes


@dataclass
class MFCycleState:
    """Persistent state of one incremental MFDedup reorg cycle."""

    round_index: int
    deleted_ids: list = field(default_factory=list)
    purged: int = 0
    oldest_live: int | None = None
    volumes_dropped: int = 0
    bytes_dropped: int = 0
    steps: int = 0


class IncrementalMFDedupGC:
    """Budgeted deletion-only GC for MFDedup (volume reorg in slices).

    Same surface as :class:`IncrementalGC`.  Recovery rolls an interrupted
    cycle **forward** (the ``volume.reorg`` replay already drops every
    expired volume, and the selective purge is idempotent), so after a crash
    the engine simply observes its intent closed and drops the cycle.
    """

    def __init__(self, service, budget: GCBudget | None = None):
        self.service = service
        self.budget = budget or GCBudget()
        self._rounds = 0
        self.history: list[GCReport] = []
        self._record = None
        self._reorg = None
        self._state: MFCycleState | None = None

    @property
    def journal(self):
        return self.service.volumes.journal

    @property
    def active(self) -> bool:
        self._sync()
        return self._record is not None

    def pending(self) -> int:
        return len(self.service.recipes.deleted_ids())

    def should_run(self, trigger: int = 1) -> bool:
        return self.active or self.pending() >= trigger

    def begin(self) -> None:
        self._sync()
        if self._record is not None:
            return
        state = MFCycleState(
            round_index=self._rounds,
            deleted_ids=self.service.recipes.deleted_ids(),
        )
        self._state = state
        self._record = self.journal.begin("gc.cycle", state=state)
        self._reorg = None

    def collect(self) -> GCReport:
        self._sync()
        if self._record is None:
            self.begin()
        while True:
            report = self.step()
            if report is not None:
                return report

    def step(self) -> GCReport | None:
        self._sync()
        if self._record is None:
            return None
        service = self.service
        state = self._state
        with service.disk.phase("gc.purge") as ph:
            if self._reorg is None:
                purged = service.recipes.purge_deleted(only=state.deleted_ids)
                state.purged = len(purged)
                live = service.recipes.live_ids()
                state.oldest_live = (
                    live[0] if live else service._next_unseen_id()
                )
                self._reorg = self.journal.begin(
                    "volume.reorg", oldest_live=state.oldest_live
                )
                service.disk.crash_point(
                    "mfdedup.reorg", oldest_live=state.oldest_live
                )
            dropped, bytes_dropped = service.volumes.drop_expired(
                state.oldest_live, limit=self.budget.mfdedup_volumes
            )
            for _ in range(dropped):
                service.disk.write(4096)
            state.volumes_dropped += dropped
            state.bytes_dropped += bytes_dropped
            remaining = service.volumes.expired_count(state.oldest_live)
            ph.annotate(
                backups_purged=state.purged,
                volumes_dropped=dropped,
                bytes_dropped=bytes_dropped,
                sweep_write_seconds=dropped * service.config.disk.seek_time,
            )
            if remaining:
                state.steps += 1
                service.disk.crash_point(
                    "gc.increment",
                    round_index=state.round_index,
                    phase="reorg",
                    step=state.steps,
                )
                return None
            self.journal.commit(self._reorg)
            self.journal.close(self._reorg)
            self.journal.commit(self._record)
            self.journal.close(self._record)

        container_equivalents = -(
            -state.bytes_dropped // service.config.container_size
        )
        report = GCReport(
            round_index=state.round_index,
            backups_purged=state.purged,
            involved_containers=container_equivalents,
            reclaimed_containers=container_equivalents,
            produced_containers=0,
            migrated_bytes=0,
            reclaimed_bytes=state.bytes_dropped,
            migrated_chunks=0,
            mark_seconds=0.0,
            analyze_seconds=0.0,
            sweep_read_seconds=0.0,
            sweep_write_seconds=state.volumes_dropped
            * service.config.disk.seek_time,
        )
        self._rounds = state.round_index + 1
        self.history.append(report)
        self._record = None
        self._reorg = None
        self._state = None
        return report

    def note_live_references(self, fps) -> None:
        """MFDedup needs no barrier: its GC never invalidates chunks of
        backups newer than ``oldest_live`` (pinned at cycle start)."""

    def _sync(self) -> None:
        if self._record is None:
            return
        if not any(rec is self._record for rec in self.journal.records("gc.cycle")):
            # Recovery rolled the cycle forward to completion.
            self._rounds = max(self._rounds, self._state.round_index + 1)
            self._record = None
            self._reorg = None
            self._state = None
