"""Mark–sweep garbage collection (paper §2.4).

The mark stage traverses recipes to build the *VC table* (valid chunks), the
*GS list* (containers with reclaimable space) and *RRT* (container → live
backups referencing it, §5.5).  The sweep stage copies valid chunks forward
into new containers and deletes the old ones.  The migration order during
sweep is pluggable — :class:`NaiveMigration` preserves scan order, while
:class:`repro.core.GCCDFMigration` reorders chunks for defragmentation.
"""

from repro.gc.vc_table import VCTable, ExactVCTable, BloomVCTable, make_vc_table
from repro.gc.mark import MarkStage, MarkResult
from repro.gc.migration import MigrationStrategy, MigrationResult, NaiveMigration, SweepContext
from repro.gc.report import GCReport
from repro.gc.engine import MarkSweepGC
from repro.gc.incremental import GCBudget, GCCycleState, IncrementalGC

__all__ = [
    "VCTable",
    "ExactVCTable",
    "BloomVCTable",
    "make_vc_table",
    "MarkStage",
    "MarkResult",
    "MigrationStrategy",
    "MigrationResult",
    "NaiveMigration",
    "SweepContext",
    "GCReport",
    "MarkSweepGC",
    "GCBudget",
    "GCCycleState",
    "IncrementalGC",
]
