"""Incremental-GC benchmark — writes ``BENCH_incgc.json``.

Two claims, two measurements:

1. **Drained equivalence** (hard gate): for every approach, running the
   rotation protocol with the budgeted
   :class:`~repro.gc.incremental.IncrementalGC` — where each ``run_gc``
   drains a whole cycle increment by increment — produces *exactly* the
   same system as stop-the-world GC: identical :class:`ServiceStats`,
   live backups, container ids, simulated device time, and GC reports
   (modulo ``analyze_cpu_seconds``, which is interpreter wall-clock).
   The per-approach GC cost ratio must stay within ``--cost-tolerance``
   of 1.0 (it is exactly 1.0 when equivalence holds — the gate exists to
   catch partial regressions loudly).

2. **Fleet interleaving** (tail latency + cost): the same synthetic fleet
   run in both modes.  Incremental mode interleaves ``gc_step`` requests
   with foreground traffic, so ingest tail stall (p99/max of the
   queue-behind-GC stall model) shrinks while total GC cost must stay
   within ``--cost-tolerance`` (hard gate).  The incremental fleet must
   also serialize byte-identically at ``jobs=1`` and ``jobs=2`` (hard
   gate — determinism under process-parallel sharding).

Usage::

    PYTHONPATH=src python benchmarks/incgc.py \\
        --out benchmarks/results/BENCH_incgc.json
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict

from repro.backup.approaches import APPROACHES, make_service
from repro.backup.options import ServiceOptions
from repro.backup.driver import RotationDriver
from repro.backup.verify import verify_service
from repro.config import SystemConfig
from repro.fleet.runner import run_fleet
from repro.fleet.topology import FleetConfig
from repro.gc.incremental import GCBudget
from repro.workloads.datasets import dataset

#: Workload for the drained-equivalence comparison: ``web`` shares chunks
#: across consecutive backups, so every approach's GC actually migrates.
EQUIV_DATASET = "web"
EQUIV_SCALE = 0.1
EQUIV_BACKUPS = 16

#: A deliberately small budget so drained cycles take many increments.
EQUIV_BUDGET = GCBudget(mark_recipes=3, sweep_containers=2, mfdedup_volumes=2)


def _report_key(report) -> dict:
    """A GC report as comparable plain data, wall-clock field dropped."""
    data = asdict(report)
    data.pop("analyze_cpu_seconds", None)
    return data


def _gc_cost(reports) -> float:
    return sum(r.total_seconds for r in reports)


def _layout_ids(service) -> list:
    """Stable physical-layout identity: container ids, or MFDedup's
    (category, backup id) volume keys."""
    if hasattr(service, "store"):
        return sorted(service.store.ids())
    return sorted(service.volumes._volumes)


def _run_protocol(approach: str, gc_mode: str):
    config = SystemConfig.scaled(retained=10, turnover=3)
    budget = EQUIV_BUDGET if gc_mode == "incremental" else None
    service = make_service(
        approach, config, ServiceOptions(gc_mode=gc_mode, gc_budget=budget)
    )
    driver = RotationDriver(service, config.retention, dataset_name=EQUIV_DATASET)
    result = driver.run(
        dataset(EQUIV_DATASET, scale=EQUIV_SCALE, num_backups=EQUIV_BACKUPS)
    )
    return service, result


def equivalence_section(cost_tolerance: float, progress) -> tuple[dict, bool]:
    """Part 1: drained incremental vs stop-the-world, every approach."""
    approaches = {}
    ok = True
    for approach in APPROACHES:
        progress(f"equivalence: {approach}")
        stw_service, stw = _run_protocol(approach, "stw")
        inc_service, inc = _run_protocol(approach, "incremental")
        checks = {
            "stats_equal": stw_service.stats() == inc_service.stats(),
            "live_ids_equal": (
                stw_service.live_backup_ids() == inc_service.live_backup_ids()
            ),
            "container_ids_equal": _layout_ids(stw_service) == _layout_ids(inc_service),
            "sim_time_equal": (
                stw_service.disk.sim_time == inc_service.disk.sim_time
            ),
            "reports_equal": (
                [_report_key(r) for r in stw.gc_reports]
                == [_report_key(r) for r in inc.gc_reports]
            ),
            "verifier_clean": (
                verify_service(stw_service).errors == []
                and verify_service(inc_service).errors == []
            ),
        }
        stw_cost = _gc_cost(stw.gc_reports)
        inc_cost = _gc_cost(inc.gc_reports)
        cost_ratio = inc_cost / stw_cost if stw_cost else 1.0
        within = abs(cost_ratio - 1.0) <= cost_tolerance - 1.0
        approaches[approach] = {
            **checks,
            "gc_rounds": len(inc.gc_reports),
            "gc_cost_stw": stw_cost,
            "gc_cost_incremental": inc_cost,
            "cost_ratio": cost_ratio,
            "cost_within_tolerance": within,
        }
        if not (all(checks.values()) and within):
            ok = False
            progress(f"  FAIL: {approach}: {approaches[approach]}")
    return {
        "dataset": EQUIV_DATASET,
        "scale": EQUIV_SCALE,
        "num_backups": EQUIV_BACKUPS,
        "budget": asdict(EQUIV_BUDGET),
        "approaches": approaches,
        "all_equivalent": ok,
    }, ok


def _fleet_config(args: argparse.Namespace, gc_mode: str) -> FleetConfig:
    return FleetConfig.synthetic(
        args.tenants,
        args.shards,
        workload_scale=0.03,
        backups_per_tenant=8,
        stream_pool=6,
        approach=args.approach,
        retained=4,
        turnover=2,
        gc_mode=gc_mode,
        gc_mark_budget=4,
        gc_sweep_budget=2,
        seed=args.seed,
    )


def _fleet_stats(result) -> dict:
    counters = result.metrics.get("counters", {})
    cost = sum(
        counters.get(f"phase_seconds.gc.{phase}", 0.0)
        for phase in ("mark", "analyze", "sweep_read", "sweep_write")
    )
    pauses = sorted(p for shard in result.shards for p in shard.gc_pauses)
    return {
        "gc_rounds": counters.get("gc.rounds", 0),
        "gc_cost_seconds": cost,
        "reclaimed_bytes": counters.get("gc.reclaimed_bytes", 0),
        "physical_bytes": counters.get("service.physical_bytes", 0),
        "ingest_stall": result.ingest_stall_quantiles(),
        "gc_pause_count": len(pauses),
        "gc_pause_max": pauses[-1] if pauses else 0.0,
    }


def fleet_section(args: argparse.Namespace, progress) -> tuple[dict, bool]:
    """Part 2: fleet tail latency + cost, stop-the-world vs incremental."""
    progress("fleet: stop-the-world run")
    stw = run_fleet(_fleet_config(args, "stw"), jobs=1)
    progress("fleet: incremental run (jobs=1)")
    inc = run_fleet(_fleet_config(args, "incremental"), jobs=1)
    progress("fleet: incremental run (jobs=2)")
    inc2 = run_fleet(_fleet_config(args, "incremental"), jobs=2)

    deterministic = inc.canonical_json() == inc2.canonical_json()
    stw_stats = _fleet_stats(stw)
    inc_stats = _fleet_stats(inc)
    stw_cost = stw_stats["gc_cost_seconds"]
    cost_ratio = (
        inc_stats["gc_cost_seconds"] / stw_cost if stw_cost else 1.0
    )
    within = cost_ratio <= args.cost_tolerance
    ok = deterministic and within
    if not deterministic:
        progress("  FAIL: incremental fleet not byte-identical across --jobs")
    if not within:
        progress(f"  FAIL: fleet GC cost ratio {cost_ratio:.3f} > {args.cost_tolerance}")
    return {
        "tenants": args.tenants,
        "shards": args.shards,
        "approach": args.approach,
        "stw": stw_stats,
        "incremental": inc_stats,
        "gc_cost_ratio": cost_ratio,
        "cost_within_tolerance": within,
        "jobs_determinism": deterministic,
    }, ok


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Incremental-GC benchmark (equivalence + fleet tail latency)."
    )
    parser.add_argument("--tenants", type=int, default=24, help="fleet tenant count")
    parser.add_argument("--shards", type=int, default=4, help="fleet shard count")
    parser.add_argument("--approach", default="gccdf", help="fleet backup approach")
    parser.add_argument("--seed", type=int, default=2025, help="fleet seed")
    parser.add_argument(
        "--cost-tolerance", type=float, default=1.10,
        help="max allowed incremental/stw GC cost ratio (default: %(default)s)",
    )
    parser.add_argument(
        "--out", default="BENCH_incgc.json", help="output path (default: %(default)s)"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    def progress(line: str) -> None:
        print(line, file=sys.stderr, flush=True)

    equivalence, equiv_ok = equivalence_section(args.cost_tolerance, progress)
    fleet, fleet_ok = fleet_section(args, progress)
    ok = equiv_ok and fleet_ok
    payload = {
        "equivalence": equivalence,
        "fleet": fleet,
        "cost_tolerance": args.cost_tolerance,
        "gate_passed": ok,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"benchmark written to {args.out}", file=sys.stderr)
    print(
        json.dumps(
            {
                "all_equivalent": equivalence["all_equivalent"],
                "fleet_cost_ratio": round(fleet["gc_cost_ratio"], 4),
                "fleet_p99_stall_stw": fleet["stw"]["ingest_stall"]["p99"],
                "fleet_p99_stall_incremental": fleet["incremental"]["ingest_stall"]["p99"],
                "jobs_determinism": fleet["jobs_determinism"],
            }
        )
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
