"""Per-GC-round report: the quantities behind Figs. 13 and 14.

* Container distribution (Fig. 13): *involved* (on the GS list), *reclaimed*
  (confirmed to hold invalid chunks and deleted), *produced* (new containers
  receiving migrated chunks).
* Time breakdown (Fig. 14): mark / analyze / sweep-read / sweep-write.
  I/O stages are simulated seconds; analyze is measured CPU seconds of the
  reordering logic (GCCDF only — zero for classic sweeps).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.util.units import format_bytes, format_duration


@dataclass(frozen=True)
class GCReport:
    """Accounting for one garbage-collection run."""

    round_index: int
    backups_purged: int
    #: Containers on the GS list (may hold invalid chunks).
    involved_containers: int
    #: Containers confirmed invalid-bearing and reclaimed.
    reclaimed_containers: int
    #: New containers produced by copy-forward.
    produced_containers: int
    migrated_bytes: int
    reclaimed_bytes: int
    migrated_chunks: int
    mark_seconds: float
    #: Simulated seconds of the Analyze stage (operation count × modelled
    #: per-op cost), comparable with the I/O stages.
    analyze_seconds: float
    sweep_read_seconds: float
    sweep_write_seconds: float
    #: Measured Python wall-clock seconds of the Analyzer/Planner
    #: (informational only — interpreter speed, not system cost).
    analyze_cpu_seconds: float = 0.0

    def to_dict(self) -> dict:
        """Plain-scalar dict; round-trips through JSON (run cache)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "GCReport":
        return cls(**data)

    @property
    def total_seconds(self) -> float:
        return (
            self.mark_seconds
            + self.analyze_seconds
            + self.sweep_read_seconds
            + self.sweep_write_seconds
        )

    def summary(self) -> str:
        """One-line human-readable rendering for logs and examples."""
        return (
            f"GC round {self.round_index}: purged {self.backups_purged} backups; "
            f"containers involved/reclaimed/produced = {self.involved_containers}/"
            f"{self.reclaimed_containers}/{self.produced_containers}; "
            f"migrated {format_bytes(self.migrated_bytes)}, "
            f"reclaimed {format_bytes(self.reclaimed_bytes)}; "
            f"time {format_duration(self.total_seconds)} "
            f"(mark {format_duration(self.mark_seconds)}, "
            f"analyze {format_duration(self.analyze_seconds)}, "
            f"sweep-read {format_duration(self.sweep_read_seconds)}, "
            f"sweep-write {format_duration(self.sweep_write_seconds)})"
        )
