"""Sweep-stage migration: the pluggable heart of GC.

The sweep copies valid chunks out of reclaimable containers into new ones.
*Which order the valid chunks are written in* is the entire difference
between classic GC and GCCDF — so the engine delegates exactly that to a
:class:`MigrationStrategy`:

* :class:`NaiveMigration` (here) preserves container scan order — the
  paper's Naïve/Capping/HAR/SMR configurations all sweep this way;
* :class:`repro.core.gccdf.GCCDFMigration` reorders chunks per §4/§5.

Shared mechanics live in :func:`partition_container` (validity split) and
:class:`JournaledCopyForward`, which owns the crash-consistent protocol both
strategies write through:

1. every chunk appended toward a destination container is recorded in an
   open ``copyforward`` intent (fp, source, size) *before* anything else
   depends on it;
2. when the destination seals (store commit), the index is repointed at it
   and only then does the intent commit and close — so recovery only ever
   sees **open** copy-forward intents, which it rolls back (sources are
   still alive by rule 3);
3. a source container is reclaimed only after every chunk migrated out of
   it has durably sealed and repointed (``reclaim`` intent: drop invalid
   index keys → delete container), so a crash can never orphan data.

Reclaims are therefore *deferred* behind a FIFO that preserves the classic
reclaim order; deferral is free in the cost model (deletes charge no I/O),
so an un-faulted sweep performs the byte-identical read/write sequence the
unjournaled protocol did.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Protocol

from repro.config import SystemConfig
from repro.gc.mark import MarkResult
from repro.index.fingerprint_index import FingerprintIndex
from repro.index.recipe import RecipeStore
from repro.model import ChunkRef
from repro.simio.disk import DiskModel
from repro.storage.container import Container
from repro.storage.store import ContainerStore
from repro.storage.writer import ContainerWriter
from repro.util.timer import Stopwatch


@dataclass
class SweepContext:
    """Everything a migration strategy may consult or mutate."""

    config: SystemConfig
    store: ContainerStore
    index: FingerprintIndex
    recipes: RecipeStore
    disk: DiskModel
    mark: MarkResult
    #: Wall-clock CPU time of reordering analysis (informational).
    analyze_watch: Stopwatch = field(default_factory=Stopwatch)
    #: Analyzer/Planner operation count (membership probes + chunk moves);
    #: converted to simulated seconds via ``gccdf.analyze_op_cost`` for the
    #: Fig. 14 breakdown, so analyze time shares the I/O stages' currency.
    analyze_ops: int = 0
    #: Effective analyze-stage parallelism: §5.5 notes segments are fully
    #: independent, so a strategy may set this to min(workers, segments)
    #: and the engine divides the simulated analyze time accordingly.
    analyze_parallelism: int = 1


@dataclass
class MigrationResult:
    """Sweep accounting used by :class:`repro.gc.report.GCReport`."""

    #: Containers confirmed to hold invalid chunks and reclaimed.
    reclaimed_ids: list[int] = field(default_factory=list)
    #: New containers produced by copy-forward.
    produced_ids: list[int] = field(default_factory=list)
    #: Valid bytes copied forward.
    migrated_bytes: int = 0
    #: Invalid bytes whose space was reclaimed.
    reclaimed_bytes: int = 0
    #: Valid chunks migrated.
    migrated_chunks: int = 0


class MigrationStrategy(Protocol):
    """Orders and executes the copy-forward phase of the sweep."""

    name: str

    def migrate(self, ctx: SweepContext) -> MigrationResult: ...


def partition_container(ctx: SweepContext, container_id: int) -> tuple[list[ChunkRef], int]:
    """Split one container's entries by validity (metadata only, no I/O).

    Returns ``(valid_entries, invalid_bytes)``.  With a Bloom VC table a dead
    chunk may test valid and be retained — safe, never the reverse.

    A key the index no longer holds is always invalid, whatever the VC
    table says: the hybrid rededup pass drops coalesced duplicate keys
    from the index while their bytes are still at rest, and migrating such
    a chunk would have nothing to repoint.  (Inline mode never stores a
    container whose keys are absent from the index, so the guard is a
    no-op there.)
    """
    container = ctx.store.peek(container_id)
    index = ctx.index
    valid: list[ChunkRef] = []
    invalid_bytes = 0
    for entry in container.entries:
        if entry.fp in ctx.mark.vc_table and entry.fp in index:
            valid.append(entry)
        else:
            invalid_bytes += entry.size
    return valid, invalid_bytes


def invalid_keys(ctx: SweepContext, container_id: int) -> list[bytes]:
    """Storage keys of one container's invalid chunks (metadata only)."""
    container = ctx.store.peek(container_id)
    index = ctx.index
    return [
        e.fp
        for e in container.entries
        if e.fp not in ctx.mark.vc_table or e.fp not in index
    ]


class JournaledCopyForward:
    """Crash-consistent copy-forward writer shared by every strategy.

    Strategies stream valid chunks through :meth:`migrate_chunk` (in
    whatever order they choose — that is their whole job) and hand each
    emptied source to :meth:`schedule_reclaim`; this class owns intent
    bracketing, index repointing at seal time, and the deferred reclaim
    queue.  :meth:`finish` seals the tail and drains the queue.
    """

    def __init__(self, ctx: SweepContext):
        self.ctx = ctx
        self.journal = ctx.store.journal
        self.writer = ContainerWriter(ctx.store, on_commit=self._on_seal)
        self.result = MigrationResult()
        #: Open ``copyforward`` intent for the currently filling destination
        #: (its ``moves`` payload list is mutated in place as chunks arrive).
        self._intent = None
        self._moves: list[dict] | None = None
        #: source container id → chunks migrated out but not yet sealed.
        self._outstanding: dict[int, int] = {}
        #: fp → destination id, this round.  Guards against cross-container
        #: duplicates, which exist at rest only after an aborted round (the
        #: source survives next to an already-repointed destination).
        self._migrated: dict[bytes, int] = {}
        #: source container id → valid chunks migrated (trace reporting).
        self._valid_counts: dict[int, int] = {}
        #: FIFO of (source_id, invalid_fps, invalid_bytes) awaiting reclaim.
        #: Head-of-line blocking keeps ``reclaimed_ids`` in schedule order.
        self._pending: "deque[tuple[int, list[bytes], int]]" = deque()

    def migrate_chunk(self, entry: ChunkRef, payload: bytes | None, source_id: int) -> None:
        """Copy one valid chunk of ``source_id`` toward the open destination."""
        if entry.fp in self._migrated:
            # Second physical copy of a key already migrated this round
            # (possible only after a recovered crash left a duplicate at
            # rest): keep the one copy, skip the append.
            return
        destination = self.writer.append(entry, payload)  # may seal the previous one
        if self._intent is None:
            self._moves = []
            self._intent = self.journal.begin(
                "copyforward", destination=destination, moves=self._moves
            )
        self._moves.append({"fp": entry.fp, "source": source_id, "size": entry.size})
        self._migrated[entry.fp] = destination
        self._outstanding[source_id] = self._outstanding.get(source_id, 0) + 1
        self._valid_counts[source_id] = self._valid_counts.get(source_id, 0) + 1
        self.result.migrated_bytes += entry.size
        self.result.migrated_chunks += 1

    def schedule_reclaim(
        self, container_id: int, invalid_fps: list[bytes], invalid_bytes: int
    ) -> None:
        """Reclaim ``container_id`` once its migrated chunks are durable."""
        self._pending.append((container_id, invalid_fps, invalid_bytes))
        self._drain()

    def finish(self) -> MigrationResult:
        """Seal the open destination, drain pending reclaims, and report."""
        produced = self.writer.flush()  # triggers _on_seal → final drain
        self._drain()
        assert not self._pending, "reclaim deferred past the end of the sweep"
        self.result.produced_ids = produced
        return self.result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _on_seal(self, container: Container) -> None:
        """Destination sealed: repoint the index, close the intent, drain."""
        intent, moves = self._intent, self._moves
        self._intent = self._moves = None
        assert intent is not None and moves is not None
        self.ctx.disk.crash_point(
            "sweep.repoint",
            container_id=container.container_id,
            chunks=len(moves),
        )
        for move in moves:
            self.ctx.index.relocate(move["fp"], container.container_id)
        self.journal.commit(intent)
        self.journal.close(intent)
        for move in moves:
            self._outstanding[move["source"]] -= 1
        self._drain()

    def _drain(self) -> None:
        while self._pending and self._outstanding.get(self._pending[0][0], 0) == 0:
            container_id, invalid_fps, invalid_bytes = self._pending.popleft()
            self._reclaim(container_id, invalid_fps, invalid_bytes)

    def _reclaim(self, container_id: int, invalid_fps: list[bytes], invalid_bytes: int) -> None:
        intent = self.journal.begin(
            "reclaim", container_id=container_id, invalid=invalid_fps
        )
        for fp in invalid_fps:
            self.ctx.index.discard(fp)
        self.ctx.disk.crash_point("sweep.delete", container_id=container_id)
        self.ctx.store.delete_container(container_id)
        self.journal.commit(intent)
        self.journal.close(intent)
        self.result.reclaimed_ids.append(container_id)
        self.result.reclaimed_bytes += invalid_bytes
        tracer = self.ctx.disk.tracer
        if tracer.enabled:
            tracer.emit(
                "gc.reclaim",
                sim_time=self.ctx.disk.sim_time,
                fields={
                    "container_id": container_id,
                    "valid_chunks": self._valid_counts.get(container_id, 0),
                    "invalid_bytes": invalid_bytes,
                },
            )


class NaiveMigration:
    """Scan-order copy-forward: classic mark–sweep (paper §2.4).

    Containers are processed in GS-list order; within each container valid
    chunks keep their relative order.  No attempt is made to co-locate
    related chunks — fragmentation survives the sweep, which is precisely
    the behaviour GCCDF improves on.
    """

    name = "naive"

    def migrate(self, ctx: SweepContext) -> MigrationResult:
        copy_forward = JournaledCopyForward(ctx)
        for container_id in ctx.mark.gs_list:
            valid, invalid_bytes = partition_container(ctx, container_id)
            if invalid_bytes == 0:
                continue  # involved but fully valid: nothing to reclaim
            # Sweep-read: one full container read, skipped when nothing is
            # valid (metadata already told us there is nothing to copy).
            payload_source = ctx.store.read_container(container_id) if valid else None
            for entry in valid:
                payload = (
                    payload_source.payload(entry.fp) if payload_source is not None else None
                )
                copy_forward.migrate_chunk(entry, payload, container_id)
            copy_forward.schedule_reclaim(
                container_id, invalid_keys(ctx, container_id), invalid_bytes
            )
        return copy_forward.finish()
