"""Sweep-stage migration: the pluggable heart of GC.

The sweep copies valid chunks out of reclaimable containers into new ones.
*Which order the valid chunks are written in* is the entire difference
between classic GC and GCCDF — so the engine delegates exactly that to a
:class:`MigrationStrategy`:

* :class:`NaiveMigration` (here) preserves container scan order — the
  paper's Naïve/Capping/HAR/SMR configurations all sweep this way;
* :class:`repro.core.gccdf.GCCDFMigration` reorders chunks per §4/§5.

Shared mechanics (validity checks, deleting old containers, index updates)
live in :func:`partition_container` and :func:`reclaim_container` so
strategies stay focused on ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.config import SystemConfig
from repro.gc.mark import MarkResult
from repro.index.fingerprint_index import FingerprintIndex
from repro.index.recipe import RecipeStore
from repro.model import ChunkRef
from repro.simio.disk import DiskModel
from repro.storage.store import ContainerStore
from repro.storage.writer import ContainerWriter
from repro.util.timer import Stopwatch


@dataclass
class SweepContext:
    """Everything a migration strategy may consult or mutate."""

    config: SystemConfig
    store: ContainerStore
    index: FingerprintIndex
    recipes: RecipeStore
    disk: DiskModel
    mark: MarkResult
    #: Wall-clock CPU time of reordering analysis (informational).
    analyze_watch: Stopwatch = field(default_factory=Stopwatch)
    #: Analyzer/Planner operation count (membership probes + chunk moves);
    #: converted to simulated seconds via ``gccdf.analyze_op_cost`` for the
    #: Fig. 14 breakdown, so analyze time shares the I/O stages' currency.
    analyze_ops: int = 0
    #: Effective analyze-stage parallelism: §5.5 notes segments are fully
    #: independent, so a strategy may set this to min(workers, segments)
    #: and the engine divides the simulated analyze time accordingly.
    analyze_parallelism: int = 1


@dataclass
class MigrationResult:
    """Sweep accounting used by :class:`repro.gc.report.GCReport`."""

    #: Containers confirmed to hold invalid chunks and reclaimed.
    reclaimed_ids: list[int] = field(default_factory=list)
    #: New containers produced by copy-forward.
    produced_ids: list[int] = field(default_factory=list)
    #: Valid bytes copied forward.
    migrated_bytes: int = 0
    #: Invalid bytes whose space was reclaimed.
    reclaimed_bytes: int = 0
    #: Valid chunks migrated.
    migrated_chunks: int = 0


class MigrationStrategy(Protocol):
    """Orders and executes the copy-forward phase of the sweep."""

    name: str

    def migrate(self, ctx: SweepContext) -> MigrationResult: ...


def partition_container(ctx: SweepContext, container_id: int) -> tuple[list[ChunkRef], int]:
    """Split one container's entries by validity (metadata only, no I/O).

    Returns ``(valid_entries, invalid_bytes)``.  With a Bloom VC table a dead
    chunk may test valid and be retained — safe, never the reverse.
    """
    container = ctx.store.peek(container_id)
    valid: list[ChunkRef] = []
    invalid_bytes = 0
    for entry in container.entries:
        if entry.fp in ctx.mark.vc_table:
            valid.append(entry)
        else:
            invalid_bytes += entry.size
    return valid, invalid_bytes


def reclaim_container(
    ctx: SweepContext,
    result: MigrationResult,
    container_id: int,
    valid: list[ChunkRef],
    invalid_bytes: int,
    writer: ContainerWriter,
) -> None:
    """Copy ``valid`` forward out of ``container_id`` and delete it.

    Charges the sweep-read (one full container read, skipped when nothing is
    valid — metadata already told us there is nothing to copy), relocates
    index entries, drops invalid keys, and updates ``result``.
    """
    payload_source = None
    if valid:
        payload_source = ctx.store.read_container(container_id)
    container = ctx.store.peek(container_id)
    for entry in container.entries:
        if entry.fp not in ctx.mark.vc_table:
            ctx.index.discard(entry.fp)
    for entry in valid:
        payload = payload_source.payload(entry.fp) if payload_source is not None else None
        new_container = writer.append(entry, payload)
        ctx.index.relocate(entry.fp, new_container)
        result.migrated_bytes += entry.size
        result.migrated_chunks += 1
    ctx.store.delete_container(container_id)
    result.reclaimed_ids.append(container_id)
    result.reclaimed_bytes += invalid_bytes
    tracer = ctx.disk.tracer
    if tracer.enabled:
        tracer.emit(
            "gc.reclaim",
            sim_time=ctx.disk.sim_time,
            fields={
                "container_id": container_id,
                "valid_chunks": len(valid),
                "invalid_bytes": invalid_bytes,
            },
        )


class NaiveMigration:
    """Scan-order copy-forward: classic mark–sweep (paper §2.4).

    Containers are processed in GS-list order; within each container valid
    chunks keep their relative order.  No attempt is made to co-locate
    related chunks — fragmentation survives the sweep, which is precisely
    the behaviour GCCDF improves on.
    """

    name = "naive"

    def migrate(self, ctx: SweepContext) -> MigrationResult:
        result = MigrationResult()
        writer = ContainerWriter(ctx.store)
        for container_id in ctx.mark.gs_list:
            valid, invalid_bytes = partition_container(ctx, container_id)
            if invalid_bytes == 0:
                continue  # involved but fully valid: nothing to reclaim
            reclaim_container(ctx, result, container_id, valid, invalid_bytes, writer)
        result.produced_ids = writer.flush()
        return result
