"""Sweep-stage migration: the pluggable heart of GC.

The sweep copies valid chunks out of reclaimable containers into new ones.
*Which order the valid chunks are written in* is the entire difference
between classic GC and GCCDF — so the engine delegates exactly that to a
:class:`MigrationStrategy`:

* :class:`NaiveMigration` (here) preserves container scan order — the
  paper's Naïve/Capping/HAR/SMR configurations all sweep this way;
* :class:`repro.core.gccdf.GCCDFMigration` reorders chunks per §4/§5.

Shared mechanics live in :func:`partition` (one pass splits a container's
entries by validity, returning valid entries, invalid keys, and invalid
bytes together) and :class:`JournaledCopyForward`, which owns the
crash-consistent protocol both strategies write through:

1. every chunk appended toward a destination container is recorded in an
   open ``copyforward`` intent (fp, source, size) *before* anything else
   depends on it;
2. when the destination seals (store commit), the index is repointed at it
   and only then does the intent commit and close — so recovery only ever
   sees **open** copy-forward intents, which it rolls back (sources are
   still alive by rule 3);
3. a source container is reclaimed only after every chunk migrated out of
   it has durably sealed and repointed (``reclaim`` intent: drop invalid
   index keys → delete container), so a crash can never orphan data.

Reclaims are therefore *deferred* behind a FIFO that preserves the classic
reclaim order; deferral is free in the cost model (deletes charge no I/O),
so an un-faulted sweep performs the byte-identical read/write sequence the
unjournaled protocol did.

Two partition kernels implement the validity split.  When the service is
columnar, sealed containers carry an interned-id manifest (parallel
``array('q')`` id/size columns) and the split runs as C-level set algebra:
the manifest's distinct-id set intersects the mark's live-id set, the
index-membership guard probes the index's placement map per surviving id
(skipped while the index covers the interner's key domain), and only the
unproven minority (Bloom-VC false positives, barrier additions) reaches a
Python-level probe loop.  Entry
selection then drives ``itertools.compress`` over the existing ``ChunkRef``
list — no per-chunk object materialisation.  Legacy containers take the
original per-entry loop (fused: one pass instead of the historical
partition + invalid-keys double scan).  Both kernels classify identically.

Strategies on the columnar path hand :meth:`JournaledCopyForward
.migrate_batch` whole valid-entry columns per source container; the batch
splits into per-destination runs against the remaining capacity (prefix
sums + bisect), extends the open ``copyforward`` intent's ``moves`` payload
once per run, and aggregates the per-source counters — with per-entry move
records and seal/repoint/reclaim semantics identical to the per-chunk
:meth:`~JournaledCopyForward.migrate_chunk` loop the legacy path keeps.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import Counter, deque
from dataclasses import dataclass, field
from itertools import accumulate, compress, repeat
from operator import not_
from typing import NamedTuple, Protocol, Sequence

from repro.config import SystemConfig
from repro.gc.mark import MarkResult
from repro.index.fingerprint_index import FingerprintIndex
from repro.index.recipe import RecipeStore
from repro.model import ChunkRef
from repro.simio.disk import DiskModel
from repro.storage.container import Container
from repro.storage.store import ContainerStore
from repro.storage.writer import ContainerWriter
from repro.util.timer import Stopwatch


@dataclass
class SweepContext:
    """Everything a migration strategy may consult or mutate."""

    config: SystemConfig
    store: ContainerStore
    index: FingerprintIndex
    recipes: RecipeStore
    disk: DiskModel
    mark: MarkResult
    #: Wall-clock CPU time of reordering analysis (informational).
    analyze_watch: Stopwatch = field(default_factory=Stopwatch)
    #: Analyzer/Planner operation count (membership probes + chunk moves);
    #: converted to simulated seconds via ``gccdf.analyze_op_cost`` for the
    #: Fig. 14 breakdown, so analyze time shares the I/O stages' currency.
    analyze_ops: int = 0
    #: Effective analyze-stage parallelism: §5.5 notes segments are fully
    #: independent, so a strategy may set this to min(workers, segments)
    #: and the engine divides the simulated analyze time accordingly.
    analyze_parallelism: int = 1


@dataclass
class MigrationResult:
    """Sweep accounting used by :class:`repro.gc.report.GCReport`."""

    #: Containers confirmed to hold invalid chunks and reclaimed.
    reclaimed_ids: list[int] = field(default_factory=list)
    #: New containers produced by copy-forward.
    produced_ids: list[int] = field(default_factory=list)
    #: Valid bytes copied forward.
    migrated_bytes: int = 0
    #: Invalid bytes whose space was reclaimed.
    reclaimed_bytes: int = 0
    #: Valid chunks migrated.
    migrated_chunks: int = 0


class MigrationStrategy(Protocol):
    """Orders and executes the copy-forward phase of the sweep."""

    name: str

    def migrate(self, ctx: SweepContext) -> MigrationResult: ...


class ContainerPartition(NamedTuple):
    """One container's entries split by validity, in entry order.

    ``valid``/``invalid_keys``/``invalid_bytes`` are the classic triple;
    the trailing columns exist only on the columnar kernel (``None`` on
    legacy containers, and on fully-valid partitions, which every consumer
    skips) and feed the batched copy-forward and the GCCDF analyzer without
    re-deriving keys/sizes/ids per chunk.
    """

    valid: list[ChunkRef]
    invalid_keys: list[bytes]
    invalid_bytes: int
    #: Storage keys of the valid entries (aligned with ``valid``).
    valid_keys: list[bytes] | None = None
    #: Sizes of the valid entries (aligned with ``valid``).
    valid_sizes: list[int] | None = None
    #: Interned ids of the valid entries (aligned with ``valid``).
    valid_ids: list[int] | None = None


def partition_members(
    store: ContainerStore,
    index: FingerprintIndex,
    recipes: RecipeStore,
    mark: MarkResult,
    container_id: int,
) -> ContainerPartition:
    """Split one container's entries by validity (metadata only, no I/O).

    One pass computes valid entries, invalid keys, and invalid bytes
    together.  With a Bloom VC table a dead chunk may test valid and be
    retained — safe, never the reverse.

    A key the index no longer holds is always invalid, whatever the VC
    table says: the hybrid rededup pass drops coalesced duplicate keys
    from the index while their bytes are still at rest, and migrating such
    a chunk would have nothing to repoint.  (Inline mode never stores a
    container whose keys are absent from the index, so the guard is a
    no-op there.)
    """
    container = store.peek(container_id)
    if container.chunk_ids is not None and recipes.all_columnar():
        return _partition_columnar(index, recipes, mark, container)
    vc_table = mark.vc_table
    valid: list[ChunkRef] = []
    invalid: list[bytes] = []
    invalid_bytes = 0
    for entry in container.entries:
        fp = entry.fp
        if fp in vc_table and fp in index:
            valid.append(entry)
        else:
            invalid.append(fp)
            invalid_bytes += entry.size
    return ContainerPartition(valid, invalid, invalid_bytes)


def _partition_columnar(
    index: FingerprintIndex,
    recipes: RecipeStore,
    mark: MarkResult,
    container: Container,
) -> ContainerPartition:
    """Manifest-driven validity split: set algebra over interned ids.

    Classification is per *distinct* id — validity is a key property, so
    every entry of the same key classifies alike — in three tiers:

    1. ids in the mark's ``live_ids`` are proven VC members (the set was
       built from the live key population; Bloom tables have no false
       negatives), leaving only the index-membership guard: a placement
       lookup per survivor, skipped entirely while the index still covers
       the interner's whole key domain;
    2. the remaining minority (dead keys, Bloom false positives, barrier
       keys added after the mark) probes the VC table and placement map
       per id — exactly the legacy per-entry predicate;
    3. entry selection maps the surviving id set over the manifest columns
       (``map`` + ``compress``), reusing the container's existing
       ``ChunkRef`` objects.
    """
    interner = recipes.interner
    keys = interner.keys()
    placements = index.placements_map()
    vc_table = mark.vc_table
    ids = container.chunk_ids
    sizes = container.chunk_sizes
    distinct = container.distinct_ids()

    live_ids = mark.live_ids
    if live_ids is not None:
        survivors = set(distinct & live_ids)
        rest = distinct - live_ids
    else:
        survivors = set()
        rest = distinct
    if survivors and len(placements) != len(keys):
        # Index-membership guard.  On the columnar path the index's key
        # domain is always a subset of the interner's (every indexed key
        # passes through interning), so equal sizes mean the index holds
        # every interned key and the guard cannot demote anything — the
        # steady state until a reclaim or a hybrid coalesce discards keys.
        # The filter probes the placement dict per survivor rather than
        # using a keys()-view set difference: dict-view set algebra copies
        # the whole view into a temporary set, which is O(index) per
        # container instead of O(survivors).
        survivors = {
            chunk_id for chunk_id in survivors if keys[chunk_id] in placements
        }
    for chunk_id in rest:
        key = keys[chunk_id]
        if key in vc_table and key in placements:
            survivors.add(chunk_id)

    if len(survivors) == len(distinct):
        # Fully valid (the GS-list majority): alias the entry list
        # read-only.  Every consumer skips these containers outright
        # (``invalid_bytes == 0`` means nothing to migrate or reclaim), so
        # materialising the valid columns here would be pure waste — they
        # stay ``None``, like a legacy partition's.
        return ContainerPartition(container.entries, [], 0)
    if not survivors:
        return ContainerPartition(
            [],
            list(map(keys.__getitem__, ids)),
            container.used_bytes,
            valid_keys=[],
            valid_sizes=[],
            valid_ids=[],
        )
    mask = list(map(survivors.__contains__, ids))
    inverse = list(map(not_, mask))
    valid_sizes = list(compress(sizes, mask))
    return ContainerPartition(
        list(compress(container.entries, mask)),
        list(compress(map(keys.__getitem__, ids), inverse)),
        container.used_bytes - sum(valid_sizes),
        valid_keys=list(compress(map(keys.__getitem__, ids), mask)),
        valid_sizes=valid_sizes,
        valid_ids=list(compress(ids, mask)),
    )


def partition(ctx: SweepContext, container_id: int) -> ContainerPartition:
    """:func:`partition_members` against a sweep context."""
    return partition_members(ctx.store, ctx.index, ctx.recipes, ctx.mark, container_id)


def partition_container(ctx: SweepContext, container_id: int) -> tuple[list[ChunkRef], int]:
    """Compatibility shim: ``(valid_entries, invalid_bytes)`` of one pass."""
    part = partition(ctx, container_id)
    return part.valid, part.invalid_bytes


def invalid_keys(ctx: SweepContext, container_id: int) -> list[bytes]:
    """Compatibility shim: the invalid-key column of :func:`partition`."""
    return partition(ctx, container_id).invalid_keys


class JournaledCopyForward:
    """Crash-consistent copy-forward writer shared by every strategy.

    Strategies stream valid chunks through :meth:`migrate_chunk` (or whole
    per-source columns through :meth:`migrate_batch` — in whatever order
    they choose, that is their whole job) and hand each emptied source to
    :meth:`schedule_reclaim`; this class owns intent bracketing, index
    repointing at seal time, and the deferred reclaim queue.
    :meth:`finish` seals the tail and drains the queue.
    """

    def __init__(self, ctx: SweepContext):
        self.ctx = ctx
        self.journal = ctx.store.journal
        self.writer = ContainerWriter(ctx.store, on_commit=self._on_seal)
        self.result = MigrationResult()
        #: Open ``copyforward`` intent for the currently filling destination
        #: (its ``moves`` payload list is mutated in place as chunks arrive).
        self._intent = None
        self._moves: list[dict] | None = None
        #: source container id → chunks migrated out but not yet sealed.
        self._outstanding: dict[int, int] = {}
        #: fp → destination id, this round.  Guards against cross-container
        #: duplicates, which exist at rest only after an aborted round (the
        #: source survives next to an already-repointed destination).
        self._migrated: dict[bytes, int] = {}
        #: source container id → valid chunks migrated (trace reporting).
        self._valid_counts: dict[int, int] = {}
        #: FIFO of (source_id, invalid_fps, invalid_bytes) awaiting reclaim.
        #: Head-of-line blocking keeps ``reclaimed_ids`` in schedule order.
        self._pending: "deque[tuple[int, list[bytes], int]]" = deque()

    def migrate_chunk(self, entry: ChunkRef, payload: bytes | None, source_id: int) -> None:
        """Copy one valid chunk of ``source_id`` toward the open destination."""
        if entry.fp in self._migrated:
            # Second physical copy of a key already migrated this round
            # (possible only after a recovered crash left a duplicate at
            # rest): keep the one copy, skip the append.
            return
        destination = self.writer.append(entry, payload)  # may seal the previous one
        if self._intent is None:
            self._moves = []
            self._intent = self.journal.begin(
                "copyforward", destination=destination, moves=self._moves
            )
        self._moves.append({"fp": entry.fp, "source": source_id, "size": entry.size})
        self._migrated[entry.fp] = destination
        self._outstanding[source_id] = self._outstanding.get(source_id, 0) + 1
        self._valid_counts[source_id] = self._valid_counts.get(source_id, 0) + 1
        self.result.migrated_bytes += entry.size
        self.result.migrated_chunks += 1

    def migrate_batch(
        self,
        entries: Sequence[ChunkRef],
        fps: Sequence[bytes],
        sizes: Sequence[int],
        sources: "int | Sequence[int]",
        ids: "Sequence[int] | None" = None,
    ) -> None:
        """Copy a payload-free column of valid chunks in one batched pass.

        ``entries``/``fps``/``sizes`` are aligned columns (a container
        partition's valid columns, or a planner sequence); ``sources`` is
        the single source container id or a per-entry column of them.
        ``ids`` is the aligned interned-id column when the caller has one:
        destination containers then grow their manifest incrementally and
        skip the seal-time re-interning pass.
        Semantically identical to a :meth:`migrate_chunk` loop — the same
        per-entry move records land in the ``copyforward`` intent payload,
        the same seal/repoint boundaries fire — but capacity packing, intent
        payload growth, the duplicate guard, and the per-source counters all
        run once per destination *run* instead of once per chunk.
        """
        n = len(entries)
        if n == 0:
            return
        migrated = self._migrated
        multi_source = not isinstance(sources, int)
        if (migrated and not migrated.keys().isdisjoint(fps)) or len(set(fps)) != n:
            # Duplicates in play (a recovered crash left a key at rest
            # twice): fall back to the per-chunk loop and its guard.
            source_column = sources if multi_source else repeat(sources)
            for entry, source_id in zip(entries, source_column):
                self.migrate_chunk(entry, None, source_id)
            return

        writer = self.writer
        result = self.result
        outstanding = self._outstanding
        valid_counts = self._valid_counts
        prefix = list(accumulate(sizes))
        start = 0
        while start < n:
            container = writer.open_for(sizes[start])  # may seal the previous one
            if self._intent is None:
                self._moves = []
                self._intent = self.journal.begin(
                    "copyforward",
                    destination=container.container_id,
                    moves=self._moves,
                )
            base = prefix[start - 1] if start else 0
            stop = bisect_right(
                prefix, base + container.capacity - container.used_bytes, lo=start
            )
            if stop == start:
                # A single chunk larger than an empty container: surface
                # the same ContainerFullError the per-chunk path raises.
                container.append(entries[start])
            run_refs = entries[start:stop]
            run_fps = fps[start:stop]
            run_sizes = sizes[start:stop]
            run_bytes = prefix[stop - 1] - base
            container.extend(
                run_refs,
                run_bytes,
                ids=ids[start:stop] if ids is not None else None,
                sizes=run_sizes,
            )
            destination = container.container_id
            if multi_source:
                run_sources = sources[start:stop]
                self._moves.extend(
                    {"fp": fp, "source": source_id, "size": size}
                    for fp, source_id, size in zip(run_fps, run_sources, run_sizes)
                )
                for source_id, count in Counter(run_sources).items():
                    outstanding[source_id] = outstanding.get(source_id, 0) + count
                    valid_counts[source_id] = valid_counts.get(source_id, 0) + count
            else:
                self._moves.extend(
                    {"fp": fp, "source": sources, "size": size}
                    for fp, size in zip(run_fps, run_sizes)
                )
                count = stop - start
                outstanding[sources] = outstanding.get(sources, 0) + count
                valid_counts[sources] = valid_counts.get(sources, 0) + count
            migrated.update(zip(run_fps, repeat(destination)))
            result.migrated_bytes += run_bytes
            result.migrated_chunks += stop - start
            start = stop

    def schedule_reclaim(
        self, container_id: int, invalid_fps: list[bytes], invalid_bytes: int
    ) -> None:
        """Reclaim ``container_id`` once its migrated chunks are durable."""
        self._pending.append((container_id, invalid_fps, invalid_bytes))
        self._drain()

    def finish(self) -> MigrationResult:
        """Seal the open destination, drain pending reclaims, and report."""
        produced = self.writer.flush()  # triggers _on_seal → final drain
        self._drain()
        assert not self._pending, "reclaim deferred past the end of the sweep"
        self.result.produced_ids = produced
        return self.result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _on_seal(self, container: Container) -> None:
        """Destination sealed: repoint the index, close the intent, drain."""
        intent, moves = self._intent, self._moves
        self._intent = self._moves = None
        assert intent is not None and moves is not None
        self.ctx.disk.crash_point(
            "sweep.repoint",
            container_id=container.container_id,
            chunks=len(moves),
        )
        self.ctx.index.relocate_many(
            (move["fp"] for move in moves), container.container_id
        )
        self.journal.commit(intent)
        self.journal.close(intent)
        for move in moves:
            self._outstanding[move["source"]] -= 1
        self._drain()

    def _drain(self) -> None:
        while self._pending and self._outstanding.get(self._pending[0][0], 0) == 0:
            container_id, invalid_fps, invalid_bytes = self._pending.popleft()
            self._reclaim(container_id, invalid_fps, invalid_bytes)

    def _reclaim(self, container_id: int, invalid_fps: list[bytes], invalid_bytes: int) -> None:
        intent = self.journal.begin(
            "reclaim", container_id=container_id, invalid=invalid_fps
        )
        for fp in invalid_fps:
            self.ctx.index.discard(fp)
        self.ctx.disk.crash_point("sweep.delete", container_id=container_id)
        self.ctx.store.delete_container(container_id)
        self.journal.commit(intent)
        self.journal.close(intent)
        self.result.reclaimed_ids.append(container_id)
        self.result.reclaimed_bytes += invalid_bytes
        tracer = self.ctx.disk.tracer
        if tracer.enabled:
            tracer.emit(
                "gc.reclaim",
                sim_time=self.ctx.disk.sim_time,
                fields={
                    "container_id": container_id,
                    "valid_chunks": self._valid_counts.get(container_id, 0),
                    "invalid_bytes": invalid_bytes,
                },
            )


def sweep_source(
    copy_forward: JournaledCopyForward,
    ctx: SweepContext,
    container_id: int,
    part: ContainerPartition,
) -> None:
    """Classic per-source sweep body shared by the STW and incremental
    engines: read the source if anything survives, copy the valid chunks
    forward (batched on the columnar path, per-chunk with payloads on the
    legacy/byte-level path), and schedule the reclaim."""
    payload_source = ctx.store.read_container(container_id) if part.valid else None
    if part.valid_keys is not None and (
        payload_source is None or not payload_source.has_payloads()
    ):
        copy_forward.migrate_batch(
            part.valid,
            part.valid_keys,
            part.valid_sizes,
            container_id,
            ids=part.valid_ids,
        )
    else:
        for entry in part.valid:
            payload = (
                payload_source.payload(entry.fp) if payload_source is not None else None
            )
            copy_forward.migrate_chunk(entry, payload, container_id)
    copy_forward.schedule_reclaim(container_id, part.invalid_keys, part.invalid_bytes)


class NaiveMigration:
    """Scan-order copy-forward: classic mark–sweep (paper §2.4).

    Containers are processed in GS-list order; within each container valid
    chunks keep their relative order.  No attempt is made to co-locate
    related chunks — fragmentation survives the sweep, which is precisely
    the behaviour GCCDF improves on.
    """

    name = "naive"

    def migrate(self, ctx: SweepContext) -> MigrationResult:
        copy_forward = JournaledCopyForward(ctx)
        for container_id in ctx.mark.gs_list:
            part = partition(ctx, container_id)
            if part.invalid_bytes == 0:
                continue  # involved but fully valid: nothing to reclaim
            # Sweep-read: one full container read, skipped when nothing is
            # valid (metadata already told us there is nothing to copy).
            sweep_source(copy_forward, ctx, container_id, part)
        return copy_forward.finish()
