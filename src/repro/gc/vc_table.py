"""The VC table: which chunk copies are still valid.

Paper §2.4: "The mark stage generates [the] VC table (e.g., Bloom filter or
bit-vector) that records all valid chunks."  Both variants are provided:

* :class:`ExactVCTable` — a hash set; precise, memory ∝ live chunks.
* :class:`BloomVCTable` — a Bloom filter; compact, but false positives make
  GC occasionally *retain* a dead chunk (never the reverse, so safety —
  no live chunk is ever dropped — is preserved by construction).

Keys are storage keys, so each physical copy's validity is tracked
independently, which is what rewriting baselines need.
"""

from __future__ import annotations

from typing import Iterable, Protocol

from repro.errors import ConfigError
from repro.hashing.bloom import BloomFilter


class VCTable(Protocol):
    """Membership interface the sweep stage probes."""

    def add(self, key: bytes) -> None: ...

    def update(self, keys: Iterable[bytes]) -> None: ...

    def __contains__(self, key: bytes) -> bool: ...


class ExactVCTable:
    """Precise valid-chunk set."""

    def __init__(self) -> None:
        self._keys: set[bytes] = set()

    def add(self, key: bytes) -> None:
        self._keys.add(key)

    def update(self, keys: Iterable[bytes]) -> None:
        self._keys.update(keys)

    def __contains__(self, key: bytes) -> bool:
        return key in self._keys

    def __len__(self) -> int:
        return len(self._keys)


class BloomVCTable:
    """Bloom-filter valid-chunk set (false positives retain dead chunks)."""

    def __init__(self, expected_keys: int, fp_rate: float = 0.001):
        if expected_keys <= 0:
            raise ConfigError("expected_keys must be positive")
        self._filter = BloomFilter(capacity=expected_keys, fp_rate=fp_rate, salt=b"vc-table")

    def add(self, key: bytes) -> None:
        self._filter.add(key)

    def update(self, keys: Iterable[bytes]) -> None:
        self._filter.update(keys)

    def __contains__(self, key: bytes) -> bool:
        return key in self._filter

    def __len__(self) -> int:
        return len(self._filter)


def make_vc_table(kind: str, expected_keys: int) -> ExactVCTable | BloomVCTable:
    """Build the VC-table variant selected by ``SystemConfig.vc_table``."""
    if kind == "exact":
        return ExactVCTable()
    if kind == "bloom":
        return BloomVCTable(expected_keys=max(1, expected_keys))
    raise ConfigError(f"unknown vc_table kind {kind!r}")
