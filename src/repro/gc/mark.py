"""The GC mark stage (paper §2.4, §5.5).

One traversal over all recipes produces the three structures the sweep (and
GCCDF) need:

* **VC table** — every storage key referenced by a live backup;
* **GS list** — containers holding chunks referenced by logically deleted
  backups; these *may* contain invalid chunks and are the sweep's work list;
* **RRT** — for each GS-list container, the live backups that reference it.
  §5.5 observes RRT can be built during the same traversal at negligible
  cost, which is exactly what this implementation does.

Mark I/O is charged as metadata reads: one read per recipe, sized at
``RECIPE_ENTRY_BYTES`` per entry (a fingerprint plus size/offset fields, the
on-disk recipe record of container-based systems).

Two kernels implement the traversal.  When the recipe store is
homogeneously columnar (the default pipeline representation), each recipe's
id column collapses to a set of dense interned ids and the whole traversal
becomes C-level set algebra — candidacy, liveness, the unresolved-probe
frontier and the per-recipe RRT contribution are set unions, differences
and intersections, with no Python-level work per chunk occurrence.  Legacy
tuple recipes take the original per-entry kernel.  Both produce identical
:class:`MarkResult`\\ s and identical index probe statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig
from repro.gc.vc_table import VCTable, make_vc_table
from repro.index.fingerprint_index import FingerprintIndex
from repro.index.recipe import RecipeStore
from repro.simio.disk import DiskModel

#: On-disk size of one recipe record: 24-byte storage key + 8 bytes of
#: size/flags, matching the paper's ~800 B per 100-recipe RRT entry estimate.
RECIPE_ENTRY_BYTES = 32


@dataclass(frozen=True)
class MarkResult:
    """Everything the mark stage hands to the sweep."""

    vc_table: VCTable
    #: Ascending ids of containers referenced by deleted backups.
    gs_list: tuple[int, ...]
    #: container id → ascending tuple of live backup ids referencing it
    #: (only for GS-list containers, as in the paper).
    rrt: dict[int, tuple[int, ...]]
    #: Keys referenced by deleted backups (candidates for invalidation).
    candidate_keys: int
    #: Simulated seconds spent reading recipes.
    mark_seconds: float
    #: Interned ids of the live key set (columnar marks only).  Always a
    #: *subset* of the VC table's members at any later time — the table may
    #: grow via the incremental live-reference barrier — so sweep kernels
    #: may treat ``id in live_ids`` as a proven VC hit and fall back to
    #: probing the table itself for the rest (Bloom false positives and
    #: barrier additions included).  ``None`` on the legacy path.
    live_ids: frozenset[int] | None = None

    def rrt_bytes_estimate(self) -> int:
        """Approximate RRT memory footprint (paper §5.5's sizing argument:
        8 bytes per recipe id per entry plus a small per-entry header)."""
        per_entry_header = 16
        return sum(
            per_entry_header + 8 * len(backups) for backups in self.rrt.values()
        )


class MarkStage:
    """Builds :class:`MarkResult` from the recipe store."""

    def __init__(
        self,
        config: SystemConfig,
        index: FingerprintIndex,
        recipes: RecipeStore,
        disk: DiskModel,
        extra_gs: frozenset[int] | set[int] = frozenset(),
    ):
        self.config = config
        self.index = index
        self.recipes = recipes
        self.disk = disk
        #: Containers force-fed onto the GS list regardless of deletions —
        #: the hybrid rededup pass queues containers whose coalesced
        #: duplicate bytes only the sweep can reclaim.  Seeded before
        #: pass 1 so pass 2 builds their RRT rows exactly as it would for
        #: deletion-selected containers.
        self.extra_gs = frozenset(extra_gs)

    def run(self) -> MarkResult:
        if self.recipes.all_columnar():
            return self._run_columnar()
        return self._run_legacy()

    # ------------------------------------------------------------------
    # Columnar kernel: array sweeps over the dense chunk-id space
    # ------------------------------------------------------------------

    def _run_columnar(self) -> MarkResult:
        interner = self.recipes.interner
        keys = interner.keys()
        index_lookup_many = self.index.lookup_many
        # Dense-id bookkeeping, manipulated almost entirely through C-level
        # set operations: per recipe the id column collapses to a set once
        # (``set(array)`` iterates in C); candidacy, liveness, the
        # unresolved frontier, and the RRT contribution are set algebra over
        # whole *populations*, not per recipe.  Each pass unions its
        # recipes' id sets, subtracts what is already resolved, and probes
        # the index once for the whole frontier — the same once-per-unique-
        # key probe count (and counter accounting) as the legacy memo, just
        # in dense-id order instead of first-occurrence order.  Batching is
        # unobservable: the index is read-only during mark, and the RRT is
        # order-independent (a recipe references a GS container iff any of
        # its chunks is *placed* there, a pure function of the frozen index
        # state — the legacy kernel's per-entry adds compute exactly that).
        #: GS container id → resolved chunk ids placed in it.  A recipe
        #: references a GS container iff its id set intersects the
        #: container's member set, which ``isdisjoint`` answers at C speed
        #: with early exit — so RRT incidence costs per *container*, not
        #: per chunk occurrence.
        gs_members: dict[int, set[int]] = {cid: set() for cid in self.extra_gs}

        def resolve(fresh: "set[int]", create: bool) -> None:
            """Probe the index for a frontier of ids; bucket the placed ones
            into their containers' member sets.  Pass 1 creates member sets
            on demand (``gs_members`` doubles as the GS container set);
            pass 2 only feeds containers already on the GS list — live
            chunks elsewhere are irrelevant to the sweep."""
            fresh_ids = list(fresh)
            placements = index_lookup_many(list(map(keys.__getitem__, fresh_ids)))
            for chunk_id, placement in zip(fresh_ids, placements):
                if placement is not None:
                    members = gs_members.get(placement.container_id)
                    if members is None:
                        if not create:
                            continue
                        members = gs_members[placement.container_id] = set()
                    members.add(chunk_id)

        with self.disk.phase("gc.mark") as ph:
            # Pass 1 — deleted recipes: find containers that may hold garbage.
            deleted_sets = []
            for recipe in self.recipes.deleted_recipes():
                self.disk.read(recipe.num_chunks * RECIPE_ENTRY_BYTES)
                deleted_sets.append(recipe.unique_ids())
            candidate_ids: set[int] = set().union(*deleted_sets) if deleted_sets else set()
            resolve(candidate_ids, create=True)
            gs_set: set[int] = set(gs_members)

            # Mark is read-only, so a crash here needs no repair — recovery
            # simply aborts the round and the next GC re-marks from scratch.
            self.disk.crash_point("gc.mark", gs_containers=len(gs_set))

            # Pass 2 — live recipes: liveness sets and RRT in one traversal.
            live_recipes = list(self.recipes.live_recipes())
            live_sets = []
            for recipe in live_recipes:
                self.disk.read(recipe.num_chunks * RECIPE_ENTRY_BYTES)
                live_sets.append(recipe.unique_ids())
            live_ids: set[int] = set().union(*live_sets) if live_sets else set()
            fresh = live_ids - candidate_ids
            if fresh:
                resolve(fresh, create=False)
            rrt_sets: dict[int, set[int]] = {container_id: set() for container_id in gs_set}
            gs_items = list(gs_members.items())
            for recipe, ids_set in zip(live_recipes, live_sets):
                backup_id = recipe.backup_id
                isdisjoint = ids_set.isdisjoint
                for container_id, members in gs_items:
                    if not isdisjoint(members):
                        rrt_sets[container_id].add(backup_id)

            # Populate the VC table from the liveness set: once per unique
            # live key.  The legacy kernel adds per occurrence, but both VC
            # implementations (exact set, Bloom) are idempotent under add,
            # so the resulting table is identical.
            vc_table = make_vc_table(self.config.vc_table, expected_keys=len(self.index))
            vc_table.update(map(keys.__getitem__, live_ids))

            ph.annotate(
                candidate_keys=len(candidate_ids),
                gs_containers=len(gs_set),
            )

        return MarkResult(
            vc_table=vc_table,
            gs_list=tuple(sorted(gs_set)),
            rrt={cid: tuple(sorted(backups)) for cid, backups in rrt_sets.items()},
            candidate_keys=len(candidate_ids),
            mark_seconds=ph.delta.read_seconds,
            live_ids=frozenset(live_ids),
        )

    # ------------------------------------------------------------------
    # Legacy kernel: per-entry traversal over tuple recipes
    # ------------------------------------------------------------------

    def _run_legacy(self) -> MarkResult:
        # The index is immutable for the duration of one mark run, and
        # chunks shared across backups recur once per referencing recipe,
        # so resolved placements are memoised for the whole traversal
        # (pass 2 would otherwise re-probe the same fingerprint per recipe).
        # The memo is probed inline via C-level ``dict.get`` with a miss
        # sentinel: on the dedup-heavy pass-2 hot path that replaces a
        # Python-level ``index.lookup`` call per entry.
        missing = object()
        resolved: dict[bytes, object] = {}
        resolved_get = resolved.get
        index_lookup = self.index.lookup

        with self.disk.phase("gc.mark") as ph:
            # Pass 1 — deleted recipes: find containers that may hold garbage.
            gs_set: set[int] = set(self.extra_gs)
            candidate_keys: set[bytes] = set()
            for recipe in self.recipes.deleted_recipes():
                self.disk.read(recipe.num_chunks * RECIPE_ENTRY_BYTES)
                for entry in recipe.entries:
                    if entry.fp in candidate_keys:
                        continue
                    candidate_keys.add(entry.fp)
                    placement = resolved[entry.fp] = index_lookup(entry.fp)
                    if placement is not None:
                        gs_set.add(placement.container_id)

            # Mark is read-only, so a crash here needs no repair — recovery
            # simply aborts the round and the next GC re-marks from scratch.
            self.disk.crash_point("gc.mark", gs_containers=len(gs_set))

            # Pass 2 — live recipes: VC table and RRT in a single traversal.
            vc_table = make_vc_table(self.config.vc_table, expected_keys=len(self.index))
            rrt_sets: dict[int, set[int]] = {container_id: set() for container_id in gs_set}
            for recipe in self.recipes.live_recipes():
                self.disk.read(recipe.num_chunks * RECIPE_ENTRY_BYTES)
                seen_containers: set[int] = set()
                for entry in recipe.entries:
                    fp = entry.fp
                    vc_table.add(fp)
                    placement = resolved_get(fp, missing)
                    if placement is missing:
                        placement = resolved[fp] = index_lookup(fp)
                    if placement is None:
                        continue
                    container_id = placement.container_id
                    if container_id in rrt_sets and container_id not in seen_containers:
                        seen_containers.add(container_id)
                        rrt_sets[container_id].add(recipe.backup_id)

            ph.annotate(
                candidate_keys=len(candidate_keys),
                gs_containers=len(gs_set),
            )

        return MarkResult(
            vc_table=vc_table,
            gs_list=tuple(sorted(gs_set)),
            rrt={cid: tuple(sorted(backups)) for cid, backups in rrt_sets.items()},
            candidate_keys=len(candidate_keys),
            mark_seconds=ph.delta.read_seconds,
        )
