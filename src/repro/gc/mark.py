"""The GC mark stage (paper §2.4, §5.5).

One traversal over all recipes produces the three structures the sweep (and
GCCDF) need:

* **VC table** — every storage key referenced by a live backup;
* **GS list** — containers holding chunks referenced by logically deleted
  backups; these *may* contain invalid chunks and are the sweep's work list;
* **RRT** — for each GS-list container, the live backups that reference it.
  §5.5 observes RRT can be built during the same traversal at negligible
  cost, which is exactly what this implementation does.

Mark I/O is charged as metadata reads: one read per recipe, sized at
``RECIPE_ENTRY_BYTES`` per entry (a fingerprint plus size/offset fields, the
on-disk recipe record of container-based systems).

Two kernels implement the traversal.  When the recipe store is
homogeneously columnar (the default pipeline representation), each recipe's
id column collapses to a set of dense interned ids and the whole traversal
becomes C-level set algebra — candidacy, liveness, the unresolved-probe
frontier and the per-recipe RRT contribution are set unions, differences
and intersections, with no Python-level work per chunk occurrence.  Legacy
tuple recipes take the original per-entry kernel.  Both produce identical
:class:`MarkResult`\\ s and identical index probe statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig
from repro.gc.vc_table import VCTable, make_vc_table
from repro.index.fingerprint_index import FingerprintIndex
from repro.index.recipe import RecipeStore
from repro.simio.disk import DiskModel

#: On-disk size of one recipe record: 24-byte storage key + 8 bytes of
#: size/flags, matching the paper's ~800 B per 100-recipe RRT entry estimate.
RECIPE_ENTRY_BYTES = 32


@dataclass(frozen=True)
class MarkResult:
    """Everything the mark stage hands to the sweep."""

    vc_table: VCTable
    #: Ascending ids of containers referenced by deleted backups.
    gs_list: tuple[int, ...]
    #: container id → ascending tuple of live backup ids referencing it
    #: (only for GS-list containers, as in the paper).
    rrt: dict[int, tuple[int, ...]]
    #: Keys referenced by deleted backups (candidates for invalidation).
    candidate_keys: int
    #: Simulated seconds spent reading recipes.
    mark_seconds: float

    def rrt_bytes_estimate(self) -> int:
        """Approximate RRT memory footprint (paper §5.5's sizing argument:
        8 bytes per recipe id per entry plus a small per-entry header)."""
        per_entry_header = 16
        return sum(
            per_entry_header + 8 * len(backups) for backups in self.rrt.values()
        )


class MarkStage:
    """Builds :class:`MarkResult` from the recipe store."""

    def __init__(
        self,
        config: SystemConfig,
        index: FingerprintIndex,
        recipes: RecipeStore,
        disk: DiskModel,
        extra_gs: frozenset[int] | set[int] = frozenset(),
    ):
        self.config = config
        self.index = index
        self.recipes = recipes
        self.disk = disk
        #: Containers force-fed onto the GS list regardless of deletions —
        #: the hybrid rededup pass queues containers whose coalesced
        #: duplicate bytes only the sweep can reclaim.  Seeded before
        #: pass 1 so pass 2 builds their RRT rows exactly as it would for
        #: deletion-selected containers.
        self.extra_gs = frozenset(extra_gs)

    def run(self) -> MarkResult:
        if self.recipes.all_columnar():
            return self._run_columnar()
        return self._run_legacy()

    # ------------------------------------------------------------------
    # Columnar kernel: array sweeps over the dense chunk-id space
    # ------------------------------------------------------------------

    def _run_columnar(self) -> MarkResult:
        interner = self.recipes.interner
        keys = interner.keys()
        index_lookup = self.index.lookup
        # Dense-id bookkeeping, manipulated almost entirely through C-level
        # set operations: per recipe the id column collapses to a set once
        # (``set(array)`` iterates in C), then candidacy, liveness, the
        # unresolved frontier, and the RRT contribution are set algebra.
        # Only genuinely fresh ids reach the Python-level probe loop — the
        # same once-per-unique-key probe count as the legacy memo, just in
        # dense-id order instead of first-occurrence order (the index is
        # read-only during mark, so probe order is unobservable).
        candidate_ids: set[int] = set()
        live_ids: set[int] = set()
        resolved_ids: set[int] = set()
        #: GS container id → resolved chunk ids placed in it.  A recipe
        #: references a GS container iff its id set intersects the
        #: container's member set, which ``isdisjoint`` answers at C speed
        #: with early exit — so RRT incidence costs per *container*, not
        #: per chunk occurrence.
        gs_members: dict[int, set[int]] = {cid: set() for cid in self.extra_gs}

        with self.disk.phase("gc.mark") as ph:
            # Pass 1 — deleted recipes: find containers that may hold garbage.
            gs_set: set[int] = set(self.extra_gs)
            for recipe in self.recipes.deleted_recipes():
                self.disk.read(recipe.num_chunks * RECIPE_ENTRY_BYTES)
                fresh = recipe.unique_ids() - candidate_ids
                candidate_ids |= fresh
                resolved_ids |= fresh
                for chunk_id in fresh:
                    placement = index_lookup(keys[chunk_id])
                    if placement is not None:
                        container_id = placement.container_id
                        gs_set.add(container_id)
                        members = gs_members.get(container_id)
                        if members is None:
                            members = gs_members[container_id] = set()
                        members.add(chunk_id)

            # Mark is read-only, so a crash here needs no repair — recovery
            # simply aborts the round and the next GC re-marks from scratch.
            self.disk.crash_point("gc.mark", gs_containers=len(gs_set))

            # Pass 2 — live recipes: liveness sets and RRT in one traversal.
            rrt_sets: dict[int, set[int]] = {container_id: set() for container_id in gs_set}
            for recipe in self.recipes.live_recipes():
                self.disk.read(recipe.num_chunks * RECIPE_ENTRY_BYTES)
                ids_set = recipe.unique_ids()
                live_ids |= ids_set
                fresh = ids_set - resolved_ids
                if fresh:
                    resolved_ids |= fresh
                    for chunk_id in fresh:
                        placement = index_lookup(keys[chunk_id])
                        if placement is not None:
                            members = gs_members.get(placement.container_id)
                            if members is not None:
                                members.add(chunk_id)
                backup_id = recipe.backup_id
                isdisjoint = ids_set.isdisjoint
                for container_id, members in gs_members.items():
                    if not isdisjoint(members):
                        rrt_sets[container_id].add(backup_id)

            # Populate the VC table from the liveness set: once per unique
            # live key.  The legacy kernel adds per occurrence, but both VC
            # implementations (exact set, Bloom) are idempotent under add,
            # so the resulting table is identical.
            vc_table = make_vc_table(self.config.vc_table, expected_keys=len(self.index))
            vc_table.update(map(keys.__getitem__, live_ids))

            ph.annotate(
                candidate_keys=len(candidate_ids),
                gs_containers=len(gs_set),
            )

        return MarkResult(
            vc_table=vc_table,
            gs_list=tuple(sorted(gs_set)),
            rrt={cid: tuple(sorted(backups)) for cid, backups in rrt_sets.items()},
            candidate_keys=len(candidate_ids),
            mark_seconds=ph.delta.read_seconds,
        )

    # ------------------------------------------------------------------
    # Legacy kernel: per-entry traversal over tuple recipes
    # ------------------------------------------------------------------

    def _run_legacy(self) -> MarkResult:
        # The index is immutable for the duration of one mark run, and
        # chunks shared across backups recur once per referencing recipe,
        # so resolved placements are memoised for the whole traversal
        # (pass 2 would otherwise re-probe the same fingerprint per recipe).
        # The memo is probed inline via C-level ``dict.get`` with a miss
        # sentinel: on the dedup-heavy pass-2 hot path that replaces a
        # Python-level ``index.lookup`` call per entry.
        missing = object()
        resolved: dict[bytes, object] = {}
        resolved_get = resolved.get
        index_lookup = self.index.lookup

        with self.disk.phase("gc.mark") as ph:
            # Pass 1 — deleted recipes: find containers that may hold garbage.
            gs_set: set[int] = set(self.extra_gs)
            candidate_keys: set[bytes] = set()
            for recipe in self.recipes.deleted_recipes():
                self.disk.read(recipe.num_chunks * RECIPE_ENTRY_BYTES)
                for entry in recipe.entries:
                    if entry.fp in candidate_keys:
                        continue
                    candidate_keys.add(entry.fp)
                    placement = resolved[entry.fp] = index_lookup(entry.fp)
                    if placement is not None:
                        gs_set.add(placement.container_id)

            # Mark is read-only, so a crash here needs no repair — recovery
            # simply aborts the round and the next GC re-marks from scratch.
            self.disk.crash_point("gc.mark", gs_containers=len(gs_set))

            # Pass 2 — live recipes: VC table and RRT in a single traversal.
            vc_table = make_vc_table(self.config.vc_table, expected_keys=len(self.index))
            rrt_sets: dict[int, set[int]] = {container_id: set() for container_id in gs_set}
            for recipe in self.recipes.live_recipes():
                self.disk.read(recipe.num_chunks * RECIPE_ENTRY_BYTES)
                seen_containers: set[int] = set()
                for entry in recipe.entries:
                    fp = entry.fp
                    vc_table.add(fp)
                    placement = resolved_get(fp, missing)
                    if placement is missing:
                        placement = resolved[fp] = index_lookup(fp)
                    if placement is None:
                        continue
                    container_id = placement.container_id
                    if container_id in rrt_sets and container_id not in seen_containers:
                        seen_containers.add(container_id)
                        rrt_sets[container_id].add(recipe.backup_id)

            ph.annotate(
                candidate_keys=len(candidate_keys),
                gs_containers=len(gs_set),
            )

        return MarkResult(
            vc_table=vc_table,
            gs_list=tuple(sorted(gs_set)),
            rrt={cid: tuple(sorted(backups)) for cid, backups in rrt_sets.items()},
            candidate_keys=len(candidate_keys),
            mark_seconds=ph.delta.read_seconds,
        )
