"""The GCCDF Analyzer (paper §5.3): locality-promoting chunk clustering.

The Analyzer classifies a segment's valid chunks by *ownership* using a
binary tree: every round checks one backup and splits each leaf into the
chunks that backup references and those it does not.  After all involved
backups are checked, each leaf holds chunks with identical ownership — a
:class:`~repro.core.clusters.Cluster`.

All four of the paper's optimizations are implemented:

① **Bloom-filter reference checks** — per-recipe filters keyed by storage
   key replace recipe scans; see :class:`ReferenceChecker` (filters are
   built once per GC run and reused across segments).
② **Reverse (most-recent-first) backup order** — the first split is on the
   newest involved backup, so adjacent leaves agree on the most recent
   backups (the Planner's packing property, §5.4).
③ **Split denial** — leaves at or below the configured chunk-count
   threshold stop splitting, bounding cluster fragmentation.
④ **Doubly-linked leaves holding chunk references** — leaves form a linked
   list for the Planner's left-to-right traversal and store refs, not data.

Tree orientation: *referenced* chunks go to the **left** child.  The
leftmost leaf is therefore the cluster owned by every recent backup (the
"largest ownership" the §4.2 packing strategy starts from), and left-to-right
traversal yields the similarity-sorted order of Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import compress
from operator import not_
from typing import Callable

from repro.config import GCCDFConfig
from repro.core.clusters import Cluster
from repro.hashing.bloom import BloomFilter
from repro.index.recipe import RecipeStore
from repro.model import ChunkRef


class ReferenceChecker:
    """Answers "does backup *b* reference storage key *k*?" (optimization ①).

    One membership filter per backup recipe, built lazily on first use and
    cached for the whole GC run.  With Bloom filters a false positive can
    misplace a chunk into a slightly-too-large ownership cluster — harmless
    for correctness (clustering only affects layout), bounded by the
    configured false-positive rate.
    """

    def __init__(self, recipes: RecipeStore, config: GCCDFConfig):
        self.recipes = recipes
        self.config = config
        self._filters: dict[int, Callable[[bytes], bool]] = {}
        #: Filters built (for reporting memory/CPU effort).
        self.filters_built = 0
        #: Total filter-construction operations (one per recipe entry).
        self.build_ops = 0

    def _build(self, backup_id: int) -> Callable[[bytes], bool]:
        recipe = self.recipes.get(backup_id)
        self.filters_built += 1
        self.build_ops += recipe.num_chunks
        if self.config.exact_reference_check:
            return recipe.unique_fingerprints().__contains__
        bloom = BloomFilter(
            capacity=max(1, recipe.num_chunks),
            fp_rate=self.config.bloom_fp_rate,
            salt=b"recipe" + backup_id.to_bytes(8, "big"),
        )
        # fingerprints() resolves columnar recipes through the interner's
        # flat id → key table; same keys, same order, on either
        # representation (filter bits are therefore identical too).
        bloom.update(recipe.fingerprints())
        return bloom.__contains__

    def membership(self, backup_id: int) -> Callable[[bytes], bool]:
        """The membership predicate for one backup's recipe."""
        predicate = self._filters.get(backup_id)
        if predicate is None:
            predicate = self._build(backup_id)
            self._filters[backup_id] = predicate
        return predicate

    def exact_ids(self, backup_id: int) -> frozenset[int] | None:
        """The recipe's exact interned-id member set (columnar recipes only).

        This is the Analyzer's id-level fast path: an id in this set is a
        *proven* recipe member, so the Bloom predicate — which has no false
        negatives — would answer True for its key without being asked.  Ids
        outside it still probe the real filter, reproducing the filter's
        false positives bit-for-bit (clustering, and therefore layout, must
        not depend on which kernel ran).  The set is the recipe's cached
        ``unique_ids()`` — already materialised by the columnar mark — so
        consulting it costs no build work and is deliberately not counted
        in ``build_ops``.
        """
        recipe = self.recipes.get(backup_id)
        unique_ids = getattr(recipe, "unique_ids", None)
        return unique_ids() if unique_ids is not None else None


@dataclass
class _LeafNode:
    """A leaf of the ownership tree (optimization ④: linked, refs only)."""

    chunks: list[ChunkRef]
    #: Interned ids aligned with ``chunks`` (columnar runs only).
    ids: list[int] | None = None
    #: Backups (ascending id) confirmed to reference every chunk here.
    owners: list[int] = field(default_factory=list)
    denied: bool = False
    prev: "_LeafNode | None" = None
    next: "_LeafNode | None" = None


class Analyzer:
    """Clusters one segment's valid chunks by ownership."""

    def __init__(self, checker: ReferenceChecker, config: GCCDFConfig):
        self.checker = checker
        self.config = config
        #: Peak number of leaves seen in the last run (tree-size reporting).
        self.last_leaf_count = 0
        #: Membership probes performed in the last run (cost accounting).
        self.last_probe_count = 0
        #: Chunks clustered in the last run (tree-size estimation).
        self.last_chunk_count = 0

    def estimated_tree_bytes(self) -> int:
        """Approximate memory of the last run's tree (paper §5.5: an
        ~80-byte node structure per leaf plus one chunk pointer per chunk —
        leaves hold references, not data, per optimization ④)."""
        node_bytes = 80
        pointer_bytes = 8
        return self.last_leaf_count * node_bytes + self.last_chunk_count * pointer_bytes

    def cluster(
        self,
        valid_chunks: list[ChunkRef],
        involved_backups: tuple[int, ...],
        valid_ids: list[int] | None = None,
    ) -> list[Cluster]:
        """Run the round-based splitting; returns clusters in tree order.

        ``valid_ids`` (interned ids aligned with ``valid_chunks``, columnar
        services only) switches the per-leaf reference check to the fused
        id-level kernel: a C-level hit against the recipe's exact id set
        proves membership — the Bloom predicate has no false negatives, so
        its answer is already known — and only the non-member minority
        probes the real filter (one fused pass, reproducing Bloom false
        positives exactly).  Probe accounting is unchanged — ``probes``
        counts chunk classifications, not digest computations, on both
        kernels — so ``analyze_ops`` and the ``gc.segment`` trace are
        identical either way.
        """
        if not valid_chunks:
            self.last_leaf_count = 0
            self.last_probe_count = 0
            self.last_chunk_count = 0
            return []

        head = _LeafNode(
            chunks=list(valid_chunks),
            ids=list(valid_ids) if valid_ids is not None else None,
        )
        threshold = self.config.split_denial_threshold
        exact_config = self.config.exact_reference_check
        keys = (
            self.checker.recipes.interner.keys() if valid_ids is not None else None
        )
        probes = 0

        # Optimization ②: most recent backup first.
        for backup_id in sorted(involved_backups, reverse=True):
            predicate = self.checker.membership(backup_id)
            exact = self.checker.exact_ids(backup_id) if valid_ids is not None else None
            node: _LeafNode | None = head
            while node is not None:
                successor = node.next
                if node.denied or (threshold and len(node.chunks) <= threshold):
                    # Optimization ③: deny further splitting of tiny leaves.
                    node.denied = True
                    node = successor
                    continue
                probes += len(node.chunks)
                node_ids = node.ids
                if node_ids is not None and exact is not None:
                    if exact_config:
                        # Exact-check config: the predicate *is* recipe
                        # membership, which the id set answers outright.
                        flags = [chunk_id in exact for chunk_id in node_ids]
                    else:
                        flags = [
                            chunk_id in exact or predicate(keys[chunk_id])
                            for chunk_id in node_ids
                        ]
                    referenced = list(compress(node.chunks, flags))
                    if len(referenced) == len(node.chunks):
                        unreferenced: list[ChunkRef] = []
                    elif not referenced:
                        unreferenced = node.chunks
                    else:
                        inverse = list(map(not_, flags))
                        unreferenced = list(compress(node.chunks, inverse))
                        right_ids = list(compress(node_ids, inverse))
                        node.ids = list(compress(node_ids, flags))
                else:
                    referenced = [c for c in node.chunks if predicate(c.fp)]
                    unreferenced = [c for c in node.chunks if not predicate(c.fp)]
                    right_ids = None
                if referenced and unreferenced:
                    # Split: referenced chunks stay in `node` (left child),
                    # the rest move to a new right sibling.
                    right = _LeafNode(
                        chunks=unreferenced,
                        ids=right_ids,
                        owners=list(node.owners),
                        prev=node,
                        next=successor,
                    )
                    node.owners = node.owners + [backup_id]
                    node.chunks = referenced
                    node.next = right
                    if successor is not None:
                        successor.prev = right
                elif referenced:
                    node.owners = node.owners + [backup_id]
                # else: wholly unreferenced — leaf unchanged.
                node = successor

        clusters: list[Cluster] = []
        node = head
        while node is not None:
            clusters.append(
                Cluster(
                    # Paper convention: ownership ascending (oldest first);
                    # owners were appended newest-first, so reverse.
                    ownership=tuple(sorted(node.owners)),
                    chunks=node.chunks,
                    denied=node.denied,
                )
            )
            node = node.next
        self.last_leaf_count = len(clusters)
        self.last_probe_count = probes
        self.last_chunk_count = len(valid_chunks)
        return clusters
