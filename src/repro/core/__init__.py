"""GCCDF — garbage-collection-collaborative defragmentation (paper §4–§5).

The pipeline plugs into mark–sweep GC between the mark and sweep stages:

* :class:`Preprocessor` (§5.2) — segments the GC work list, loads valid
  chunks into the GC cache, and derives each segment's *Involved Backups*
  from the RRT.
* :class:`Analyzer` (§5.3) — locality-promoting chunk clustering: a binary
  tree splits chunks by per-backup reference (most recent backup first,
  Bloom-filter membership checks, split-denial threshold), leaving leaves =
  clusters of identical ownership.
* :class:`Planner` (§5.4) — container-adaptable cluster packing: orders
  clusters (tree order realises the packing implicitly; greedy and random
  orders exist for the §6.5 ablation) and emits the migration order.
* :class:`GCCDFMigration` (§5.1) — the :class:`~repro.gc.migration.
  MigrationStrategy` that executes all of the above during the sweep.
"""

from repro.core.clusters import Cluster
from repro.core.preprocessor import Preprocessor, Segment
from repro.core.analyzer import Analyzer, ReferenceChecker
from repro.core.packing import (
    ownership_similarity,
    matching_suffix_length,
    greedy_pack,
    random_pack,
    order_clusters,
)
from repro.core.planner import Planner
from repro.core.gccdf import GCCDFMigration

__all__ = [
    "Cluster",
    "Preprocessor",
    "Segment",
    "Analyzer",
    "ReferenceChecker",
    "ownership_similarity",
    "matching_suffix_length",
    "greedy_pack",
    "random_pack",
    "order_clusters",
    "Planner",
    "GCCDFMigration",
]
