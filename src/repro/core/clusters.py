"""Chunk clusters: the unit GCCDF reorders.

A cluster is a maximal group of valid chunks sharing the same *ownership* —
the set of live backups that reference them (paper §4.1).  Chunks in one
cluster are always needed together (restoring any owner needs all of them)
or not at all, so packing a cluster contiguously can never cause read
amplification by itself; only the container-boundary mixing *between*
clusters can (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model import ChunkRef


@dataclass
class Cluster:
    """One ownership cluster produced by the Analyzer.

    ``ownership`` lists the owning backup ids ascending (oldest first), the
    paper's convention — so the *suffix* of the list is its most recent
    owners, which is what the longest-matching-suffix tie-break inspects.
    For a split-denied leaf (§5.3 optimization ③) the ownership is the set
    decided so far and ``denied`` is True; chunks inside may disagree on the
    backups that were never checked.
    """

    ownership: tuple[int, ...]
    chunks: list[ChunkRef] = field(default_factory=list)
    denied: bool = False

    @property
    def size_bytes(self) -> int:
        return sum(chunk.size for chunk in self.chunks)

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)

    def __repr__(self) -> str:
        flag = ", denied" if self.denied else ""
        return (
            f"Cluster(owners={list(self.ownership)}, {self.num_chunks} chunks, "
            f"{self.size_bytes}B{flag})"
        )
