"""GCCDF as a migration strategy (paper §5.1, Fig. 7).

``GCCDFMigration`` plugs between the GC mark and sweep stages and runs, per
segment: Preprocessor (sweep-read into the GC cache) → Analyzer (ownership
clustering) → Planner (migration order) → sweep-write in the reordered
sequence.  Only the Analyzer/Planner work is new CPU cost (charged to the
``analyze`` stage of the Fig. 14 breakdown); all I/O is the migration classic
GC performs anyway — the paper's piggybacking argument.

One deliberate implementation choice: the container writer is shared across
segments, so a container may absorb the tail of one segment and the head of
the next instead of sealing underfilled containers at every segment
boundary.  This strictly reduces produced containers and matches the paper's
"fill [clusters] sequentially into the containers" description.

On the columnar path the sweep-write drains each segment as one batched
column (the planner's reordered sequence plus a bulk source lookup against
the index's placement map) through :meth:`JournaledCopyForward
.migrate_batch`; payload-carrying segments and legacy services keep the
per-chunk loop.  Reclaim data comes from the preprocessing-time partitions
the segments already carry — validity is stable within a drained round, so
re-partitioning every container a second time here would recompute the same
answer.
"""

from __future__ import annotations

from repro.core.analyzer import Analyzer, ReferenceChecker
from repro.core.planner import Planner
from repro.core.preprocessor import Preprocessor
from repro.gc.migration import (
    JournaledCopyForward,
    MigrationResult,
    SweepContext,
)
from repro.util.rng import DeterministicRng


class GCCDFMigration:
    """The paper's contribution, as a :class:`MigrationStrategy`."""

    name = "gccdf"

    def __init__(self, seed: int = 0, parallel_workers: int = 1):
        """``parallel_workers``: §5.5's extension — segment workflows are
        fully independent, so N workers can defragment N segments at once.
        Modelled in the time accounting (analyze time divides by the
        effective parallelism); the data path itself stays sequential and
        deterministic."""
        if parallel_workers < 1:
            raise ValueError("parallel_workers must be >= 1")
        self._seed = seed
        self._round = 0
        self.parallel_workers = parallel_workers
        #: Per-segment cluster counts of the last run (§5.5 reporting).
        self.last_cluster_counts: list[int] = []

    def migrate(self, ctx: SweepContext) -> MigrationResult:
        copy_forward = JournaledCopyForward(ctx)
        result = copy_forward.result
        checker = ReferenceChecker(ctx.recipes, ctx.config.gccdf)
        analyzer = Analyzer(checker, ctx.config.gccdf)
        planner = Planner(
            ctx.config.gccdf,
            rng=DeterministicRng(self._seed).fork("round", self._round),
        )
        preprocessor = Preprocessor(ctx)
        self.last_cluster_counts = []

        for segment in preprocessor.segments():
            # Analyze: cluster by ownership, then pack (CPU time, Fig. 14).
            builds_before = checker.build_ops
            with ctx.analyze_watch.timed():
                clusters = analyzer.cluster(
                    segment.valid_chunks,
                    segment.involved_backups,
                    valid_ids=segment.valid_ids,
                )
                order = planner.plan(clusters, segment.involved_backups)
            self.last_cluster_counts.append(order.num_clusters)
            # Analyze cost in operations: filter builds + membership probes
            # + packing comparisons + the migration-order construction.
            ctx.analyze_ops += (
                (checker.build_ops - builds_before)
                + analyzer.last_probe_count
                + order.num_clusters * order.num_clusters
                + order.num_chunks
            )

            # Sweep-write: drain the GC cache in the reordered sequence.
            # The chunk's current placement names its source container —
            # still correct here, because repointing happens only when a
            # destination seals, and every fp belongs to exactly one
            # not-yet-reclaimed source.
            sequence = order.sequence
            if segment.valid_ids is not None and not segment.payloads:
                placements = ctx.index.placements_map()
                copy_forward.migrate_batch(
                    sequence,
                    [ref.fp for ref in sequence],
                    [ref.size for ref in sequence],
                    [placements[ref.fp].container_id for ref in sequence],
                )
            else:
                for ref in sequence:
                    source_id = ctx.index.get(ref.fp).container_id
                    copy_forward.migrate_chunk(
                        ref, segment.payloads.get(ref.fp), source_id
                    )

            # Mid-migration abort point: the segment's chunks sit in the
            # (possibly still open) destination, its sources untouched.
            ctx.disk.crash_point(
                "gccdf.segment",
                segment_index=segment.index,
                containers=len(segment.container_ids),
            )

            # Schedule the segment's old containers for reclaim; deletion
            # becomes durable only after their chunks seal and repoint.
            for container_id, container_invalid_keys, container_invalid_bytes in (
                segment.reclaims
            ):
                copy_forward.schedule_reclaim(
                    container_id,
                    container_invalid_keys,
                    container_invalid_bytes,
                )

            tracer = ctx.disk.tracer
            if tracer.enabled:
                tracer.emit(
                    "gc.segment",
                    sim_time=ctx.disk.sim_time,
                    fields={
                        "containers": len(segment.container_ids),
                        "clusters": order.num_clusters,
                        "migrated_chunks": order.num_chunks,
                        "invalid_bytes": segment.invalid_bytes,
                    },
                )

        copy_forward.finish()
        ctx.analyze_parallelism = min(
            self.parallel_workers, max(1, len(self.last_cluster_counts))
        )
        self._round += 1
        return result
