"""The GCCDF Preprocessor (paper §5.2).

Bridges the GC mark stage and the Analyzer.  Three tasks, as in Fig. 8:

1. **Segmentation** — group the GC work list (containers confirmed to hold
   invalid chunks) into segments of ``segment_size`` containers.  All later
   GCCDF processing runs per segment, bounding the GC cache to
   ``segment_size × container_size`` bytes and keeping the Analyzer's tree
   small (§5.5 trade-off discussion).
2. **Identify & cache valid chunks** — read each segment container (this is
   the sweep-read I/O GC would pay anyway), check chunks against the VC
   table, and keep the valid ones (refs + payloads) in the in-memory
   *GC cache*.
3. **Collect reference information** — union the RRT entries of the
   segment's containers into the segment's *Involved Backups* list, which
   tells the Analyzer which backups' references matter here.

Each segment also carries the partition by-products downstream consumers
need anyway: the aligned interned-id column of its valid chunks (columnar
services only — it feeds the Analyzer's exact-membership fast path) and the
per-container ``(invalid_keys, invalid_bytes)`` reclaim data.  Validity is
stable for the duration of one drained GC round — migration relocates index
entries without removing them, reclaims drop only already-invalid keys, and
the VC table never changes mid-round — so the sweep reuses these partitions
at reclaim-scheduling time instead of re-partitioning every container
twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.gc.migration import ContainerPartition, SweepContext, partition
from repro.model import ChunkRef


@dataclass
class Segment:
    """One unit of GCCDF work: containers, cached valid chunks, owners."""

    index: int
    container_ids: list[int]
    #: Valid chunks of the segment, in container scan order.
    valid_chunks: list[ChunkRef] = field(default_factory=list)
    #: Interned ids aligned with ``valid_chunks`` (``None`` when any of the
    #: segment's containers lacks a manifest, i.e. on the legacy path).
    valid_ids: list[int] | None = None
    #: storage key → payload bytes, for chunks that carry payloads.
    payloads: dict[bytes, bytes] = field(default_factory=dict)
    #: Live backups referencing any container of this segment, ascending.
    involved_backups: tuple[int, ...] = ()
    #: Invalid bytes found across the segment's containers.
    invalid_bytes: int = 0
    #: Per-container reclaim data, in scan order:
    #: ``(container_id, invalid_keys, invalid_bytes)``.
    reclaims: list[tuple[int, list[bytes], int]] = field(default_factory=list)

    @property
    def cached_bytes(self) -> int:
        """GC-cache footprint of this segment (valid chunk bytes)."""
        return sum(chunk.size for chunk in self.valid_chunks)


class Preprocessor:
    """Builds :class:`Segment` work units from a sweep context."""

    def __init__(self, ctx: SweepContext):
        self.ctx = ctx
        self.segment_size = ctx.config.gccdf.segment_size

    def reclaimable_containers(self) -> list[tuple[int, ContainerPartition]]:
        """GS-list containers that actually hold invalid chunks.

        Returns ``(container_id, partition)`` pairs; fully-valid containers
        stay involved-but-untouched, matching the involved/reclaimed
        distinction of Fig. 13.
        """
        out = []
        for container_id in self.ctx.mark.gs_list:
            part = partition(self.ctx, container_id)
            if part.invalid_bytes == 0:
                continue
            out.append((container_id, part))
        return out

    def segments(self) -> Iterator[Segment]:
        """Yield segments one at a time (the GC cache holds one segment)."""
        work = self.reclaimable_containers()
        columnar = all(part.valid_ids is not None for _, part in work)
        for seg_index, start in enumerate(range(0, len(work), self.segment_size)):
            batch = work[start : start + self.segment_size]
            segment = Segment(
                index=seg_index,
                container_ids=[container_id for container_id, _ in batch],
                valid_ids=[] if columnar else None,
            )
            owners: set[int] = set()
            for container_id, part in batch:
                segment.invalid_bytes += part.invalid_bytes
                segment.reclaims.append(
                    (container_id, part.invalid_keys, part.invalid_bytes)
                )
                owners.update(self.ctx.mark.rrt.get(container_id, ()))
                if not part.valid:
                    continue
                # Sweep-read: fetch the container (charged I/O) and cache
                # its valid chunks in memory.
                container = self.ctx.store.read_container(container_id)
                segment.valid_chunks.extend(part.valid)
                if columnar:
                    segment.valid_ids.extend(part.valid_ids)
                if container.has_payloads():
                    for entry in part.valid:
                        payload = container.payload(entry.fp)
                        if payload is not None:
                            segment.payloads[entry.fp] = payload
            segment.involved_backups = tuple(sorted(owners))
            yield segment
