"""The GCCDF Planner (paper §5.4).

The Planner turns the Analyzer's clusters into the *Migration Order*: it
walks the leaf list left to right (for the default ``tree`` packing the tree
order *is* the container-adaptable packing — §5.4's "binary-tree-assisted
implementation"), or applies the explicit greedy/random packing for the
ablation configurations, then flattens clusters into the final reordered
chunk sequence the sweep writes out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GCCDFConfig
from repro.core.clusters import Cluster
from repro.core.packing import order_clusters
from repro.model import ChunkRef
from repro.util.rng import DeterministicRng


@dataclass(frozen=True)
class MigrationOrder:
    """The Planner's output for one segment."""

    #: Chunks in final write order.
    sequence: tuple[ChunkRef, ...]
    #: Cluster count after packing (tree-size/leaf statistics, §5.5).
    num_clusters: int

    @property
    def num_chunks(self) -> int:
        return len(self.sequence)


class Planner:
    """Produces the reordered migration sequence for each segment."""

    def __init__(self, config: GCCDFConfig, rng: DeterministicRng | None = None):
        self.config = config
        self._rng = rng or DeterministicRng(0)

    def plan(
        self,
        clusters: list[Cluster],
        involved_backups: tuple[int, ...],
    ) -> MigrationOrder:
        """Order clusters per the configured packing, flatten to chunks."""
        ordered = order_clusters(
            clusters,
            strategy=self.config.packing,
            num_backups=len(involved_backups),
            rng=self._rng,
        )
        sequence: list[ChunkRef] = []
        for cluster in ordered:
            sequence.extend(cluster.chunks)
        return MigrationOrder(sequence=tuple(sequence), num_clusters=len(ordered))
