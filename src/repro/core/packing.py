"""Container-adaptable cluster packing (paper §4.2).

Cluster sizes rarely align with container boundaries, so chunks of *adjacent*
clusters end up mixed in the same container.  The packing order decides which
clusters become neighbours, and therefore which mixes happen.  The paper's
strategy:

1. start from the cluster with the largest ownership;
2. repeatedly append the remaining cluster most similar (by ownership) to
   the last one placed;
3. break similarity ties by the longest matching *suffix* of the ownership
   lists — i.e. agreement on the most recent backups, which both suffer the
   most fragmentation and live the longest (§4.2's two reasons).

Three implementations are exposed for the §6.5 ablation:

* ``tree`` — the production path: the Analyzer's binary-tree leaf order
  realises this packing implicitly (§5.4), so no work is needed;
* ``greedy`` — the explicit strategy above, applied to any cluster list;
* ``random`` — the ablation baseline (≈20 % extra read amplification in the
  paper's Fig. 15a).
"""

from __future__ import annotations

from repro.core.clusters import Cluster
from repro.errors import ConfigError
from repro.util.rng import DeterministicRng


def ownership_similarity(a: tuple[int, ...], b: tuple[int, ...], num_backups: int) -> float:
    """Fraction of all involved backups common to both ownerships (§4.2)."""
    if num_backups <= 0:
        return 0.0
    return len(set(a) & set(b)) / num_backups


def matching_suffix_length(a: tuple[int, ...], b: tuple[int, ...]) -> int:
    """Length of the common trailing run of two ascending ownership lists.

    Ownership lists end with their most recent backups, so this measures
    agreement on recency: ``{1,2,3,4}`` vs ``{1,3,4}`` share the suffix
    ``(3, 4)`` → 2.
    """
    count = 0
    for x, y in zip(reversed(a), reversed(b)):
        if x != y:
            break
        count += 1
    return count


def greedy_pack(clusters: list[Cluster], num_backups: int) -> list[Cluster]:
    """The explicit §4.2 packing: similarity chain from the largest owner set.

    Deterministic: all ties beyond the paper's two criteria fall back to the
    ownership tuple itself.  O(n²) in the number of clusters — acceptable
    because segmentation keeps per-segment cluster counts in the thousands
    (§5.5 reports 1200–1600 leaves per segment).
    """
    if not clusters:
        return []
    remaining = list(clusters)
    # Initial entry: largest ownership (ties: more chunks, then tuple order).
    first = max(
        remaining,
        key=lambda c: (len(c.ownership), c.num_chunks, tuple(-b for b in c.ownership)),
    )
    remaining.remove(first)
    ordered = [first]
    while remaining:
        last = ordered[-1].ownership
        best = max(
            remaining,
            key=lambda c: (
                ownership_similarity(last, c.ownership, num_backups),
                matching_suffix_length(last, c.ownership),
                len(c.ownership),
                c.ownership,
            ),
        )
        remaining.remove(best)
        ordered.append(best)
    return ordered


def random_pack(clusters: list[Cluster], rng: DeterministicRng) -> list[Cluster]:
    """Ablation baseline: uniformly random cluster order."""
    shuffled = list(clusters)
    rng.shuffle(shuffled)
    return shuffled


def order_clusters(
    clusters: list[Cluster],
    strategy: str,
    num_backups: int,
    rng: DeterministicRng | None = None,
) -> list[Cluster]:
    """Dispatch on the configured packing strategy."""
    if strategy == "tree":
        return list(clusters)
    if strategy == "greedy":
        return greedy_pack(clusters, num_backups)
    if strategy == "random":
        if rng is None:
            raise ConfigError("random packing requires an RNG")
        return random_pack(clusters, rng)
    raise ConfigError(f"unknown packing strategy {strategy!r}")
