"""Deduplicating ingest (paper §2.2) and rewriting defragmentation (§2.3).

The pipeline implements the five-step dedup workflow: chunk → fingerprint →
duplicate detection → (rewriting hook) → container write + recipe.  Rewriting
policies — the paper's comparison baselines Capping, HAR and SMR — plug into
the hook and may choose to store a duplicate again for locality.
"""

from repro.dedup.keys import storage_key, logical_fp, key_generation
from repro.dedup.logical_index import LogicalIndex
from repro.dedup.pipeline import IngestPipeline, IngestResult
from repro.dedup.rewriting import (
    RewritingPolicy,
    NullRewriting,
    CappingRewriting,
    HARRewriting,
    SMRRewriting,
    make_rewriting,
)

__all__ = [
    "storage_key",
    "logical_fp",
    "key_generation",
    "LogicalIndex",
    "IngestPipeline",
    "IngestResult",
    "RewritingPolicy",
    "NullRewriting",
    "CappingRewriting",
    "HARRewriting",
    "SMRRewriting",
    "make_rewriting",
]
