"""Storage keys: physical chunk-copy identities.

Rewriting techniques store *additional copies* of duplicate chunks, and every
backup's recipe must keep reading the copy it was written against (that is
what makes rewriting's dedup-ratio loss persistent: old copies stay pinned
until their referencing backups rotate out).  To model this faithfully the
library distinguishes:

* the **logical fingerprint** — 20-byte SHA-1 of content; two chunks with the
  same logical fingerprint are duplicates;
* the **storage key** — logical fingerprint plus a 4-byte *generation*
  counter; each physical copy of a chunk has its own key.

Recipes, the fingerprint index, containers, the VC table and GCCDF's
ownership analysis all operate on storage keys, so per-copy liveness falls
out naturally from the ordinary machinery.  Systems that never rewrite
(Naïve, GCCDF) only ever mint generation 0; the non-dedup baseline mints a
fresh generation per occurrence.
"""

from __future__ import annotations

from repro.hashing.fingerprints import FINGERPRINT_SIZE

#: Bytes appended to the logical fingerprint to encode the copy generation.
GENERATION_SIZE = 4
#: Total storage-key width.
KEY_SIZE = FINGERPRINT_SIZE + GENERATION_SIZE


def storage_key(fp: bytes, generation: int = 0) -> bytes:
    """Build the storage key for copy ``generation`` of logical chunk ``fp``."""
    if len(fp) != FINGERPRINT_SIZE:
        raise ValueError(f"expected {FINGERPRINT_SIZE}-byte fingerprint, got {len(fp)}")
    if not (0 <= generation < 1 << (8 * GENERATION_SIZE)):
        raise ValueError(f"generation {generation} out of range")
    return fp + generation.to_bytes(GENERATION_SIZE, "big")


def logical_fp(key: bytes) -> bytes:
    """Recover the logical fingerprint from a storage key."""
    if len(key) != KEY_SIZE:
        raise ValueError(f"expected {KEY_SIZE}-byte storage key, got {len(key)}")
    return key[:FINGERPRINT_SIZE]


def key_generation(key: bytes) -> int:
    """Recover the copy generation from a storage key."""
    if len(key) != KEY_SIZE:
        raise ValueError(f"expected {KEY_SIZE}-byte storage key, got {len(key)}")
    return int.from_bytes(key[FINGERPRINT_SIZE:], "big")
