"""Rewriting-based defragmentation baselines (paper §2.3, §6.1).

A rewriting policy watches the ingest stream and may flag duplicate chunks to
be *stored again* near their backup's other chunks, trading dedup ratio for
restore locality.  Three published techniques are implemented:

* :class:`CappingRewriting` — Lillibridge et al., FAST '13.
* :class:`HARRewriting` — History-Aware Rewriting, Fu et al., TPDS '16.
* :class:`SMRRewriting` — cost-efficient utility-threshold rewriting after
  Wu et al., TPDS '19 (approximation; see DESIGN.md substitution table).

plus :class:`NullRewriting` (never rewrites — used by Naïve and GCCDF).
"""

from repro.dedup.rewriting.base import IngestEntry, NullRewriting, RewritingPolicy
from repro.dedup.rewriting.capping import CappingRewriting
from repro.dedup.rewriting.har import HARRewriting
from repro.dedup.rewriting.smr import SMRRewriting

_REGISTRY = {
    "none": NullRewriting,
    "capping": CappingRewriting,
    "har": HARRewriting,
    "smr": SMRRewriting,
}


def make_rewriting(name: str, store, **kwargs) -> RewritingPolicy:
    """Instantiate a rewriting policy by name.

    ``store`` is the container store the policy may consult for container
    metadata (utilization); policies that do not need it ignore it.
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown rewriting policy {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None
    if cls is NullRewriting:
        return cls()
    return cls(store=store, **kwargs)


__all__ = [
    "IngestEntry",
    "RewritingPolicy",
    "NullRewriting",
    "CappingRewriting",
    "HARRewriting",
    "SMRRewriting",
    "make_rewriting",
]
