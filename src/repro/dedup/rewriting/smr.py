"""SMR — cost-efficient rewriting (after Wu et al., TPDS '19).

The published scheme estimates, per stream segment, the *rewrite utility* of
each referenced old container — how little of it the segment actually uses —
and rewrites duplicates housed in the highest-utility (worst-utilized)
containers, subject to a rewrite budget that bounds the dedup-ratio damage
per segment.

This is a reimplementation from the paper's description rather than the
(unavailable) original code; DESIGN.md records the substitution.  The
qualitative profile the GCCDF paper relies on — modest restore gains, the
largest dedup-ratio losses among the rewriters (up to ~56 % on MIX) — comes
from the aggressive default budget below.
"""

from __future__ import annotations

from typing import Iterable

from repro.dedup.rewriting.base import IngestEntry, RewritingPolicy, _Segment
from repro.errors import ConfigError, UnknownContainerError
from repro.storage.store import ContainerStore


class SMRRewriting(RewritingPolicy):
    """Utility-ranked, budgeted rewriting per stream segment."""

    name = "smr"

    def __init__(
        self,
        store: ContainerStore,
        utility_threshold: float = 0.3,
        rewrite_budget: float = 0.05,
        segment_containers: int = 5,
    ):
        """``utility_threshold``: containers with referenced fraction below
        this are rewrite candidates.  ``rewrite_budget``: ceiling on rewritten
        bytes as a fraction of segment bytes.  ``segment_containers``:
        segment length in containers."""
        if not (0.0 < utility_threshold <= 1.0):
            raise ConfigError("utility_threshold must be in (0, 1]")
        if not (0.0 <= rewrite_budget <= 1.0):
            raise ConfigError("rewrite_budget must be in [0, 1]")
        if segment_containers <= 0:
            raise ConfigError("segment_containers must be positive")
        self.store = store
        self.utility_threshold = utility_threshold
        self.rewrite_budget = rewrite_budget
        self.segment_bytes = segment_containers * store.capacity
        self._segment = _Segment()

    def begin_backup(self, backup_id: int) -> None:
        self._segment.clear()

    def feed(self, entry: IngestEntry) -> Iterable[IngestEntry]:
        self._segment.add(entry)
        if self._segment.buffered_bytes >= self.segment_bytes:
            return self._decide_segment()
        return ()

    def flush(self) -> Iterable[IngestEntry]:
        return self._decide_segment()

    def _container_utility(self, container_id: int, referenced_bytes: int) -> float:
        """1 - referenced fraction: high utility == badly utilized."""
        try:
            container = self.store.peek(container_id)
        except UnknownContainerError:
            return 0.0
        if container.used_bytes == 0:
            return 0.0
        return 1.0 - referenced_bytes / container.used_bytes

    def _decide_segment(self) -> list[IngestEntry]:
        entries = list(self._segment.entries)
        segment_bytes = self._segment.buffered_bytes
        per_container = self._segment.referenced_bytes_by_container()
        self._segment.clear()
        if not per_container:
            return entries

        # Rank candidate containers worst-utilized first.
        candidates = []
        for container_id, referenced_bytes in per_container.items():
            utility = self._container_utility(container_id, referenced_bytes)
            if utility > 1.0 - self.utility_threshold:
                candidates.append((utility, container_id, referenced_bytes))
        candidates.sort(key=lambda item: (-item[0], item[1]))

        budget = self.rewrite_budget * segment_bytes
        to_rewrite: set[int] = set()
        spent = 0
        for _, container_id, referenced_bytes in candidates:
            if spent + referenced_bytes > budget:
                continue
            to_rewrite.add(container_id)
            spent += referenced_bytes

        if to_rewrite:
            for entry in entries:
                if entry.duplicate and entry.container_id in to_rewrite:
                    entry.rewrite = True
        return entries
