"""Capping (Lillibridge et al., FAST '13).

Capping bounds the number of *old* containers a fixed-size segment of the
backup stream may reference.  The stream is buffered in segments (20 MiB in
the original paper — expressed here as a multiple of the container size so it
scales with the geometry).  Within a segment the referenced old containers
are ranked by how many duplicate bytes they supply; only the top ``cap``
survive, and duplicates pointing at any other container are rewritten.

The effect: restoring the backup touches at most ``cap`` old containers per
segment, at the cost of re-storing the rewritten duplicates.
"""

from __future__ import annotations

from typing import Iterable

from repro.dedup.rewriting.base import IngestEntry, RewritingPolicy, _Segment
from repro.errors import ConfigError
from repro.storage.store import ContainerStore


class CappingRewriting(RewritingPolicy):
    """Segment-buffered container capping."""

    name = "capping"

    def __init__(
        self,
        store: ContainerStore,
        cap: int = 20,
        segment_containers: int = 5,
    ):
        """``cap``: old containers allowed per segment (the paper's artifact
        default ``CappingThreshold=20``).  ``segment_containers``: segment
        length as a multiple of the container size (20 MiB / 4 MiB = 5)."""
        if cap <= 0:
            raise ConfigError("capping cap must be positive")
        if segment_containers <= 0:
            raise ConfigError("segment_containers must be positive")
        self.cap = cap
        self.segment_bytes = segment_containers * store.capacity
        self._segment = _Segment()

    def begin_backup(self, backup_id: int) -> None:
        self._segment.clear()

    def feed(self, entry: IngestEntry) -> Iterable[IngestEntry]:
        self._segment.add(entry)
        if self._segment.buffered_bytes >= self.segment_bytes:
            return self._decide_segment()
        return ()

    def flush(self) -> Iterable[IngestEntry]:
        return self._decide_segment()

    def _decide_segment(self) -> list[IngestEntry]:
        """Rank referenced containers, rewrite duplicates beyond the cap."""
        entries = list(self._segment.entries)
        per_container = self._segment.referenced_bytes_by_container()
        self._segment.clear()
        if len(per_container) > self.cap:
            ranked = sorted(per_container.items(), key=lambda kv: (-kv[1], kv[0]))
            allowed = {container_id for container_id, _ in ranked[: self.cap]}
            for entry in entries:
                if entry.duplicate and entry.container_id not in allowed:
                    entry.rewrite = True
        return entries
