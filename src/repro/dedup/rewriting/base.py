"""Rewriting-policy interface.

Policies see the ingest stream as a sequence of :class:`IngestEntry` items
already annotated with the duplicate-detection result.  They may buffer
entries (Capping and SMR decide per stream segment) and must emit every entry
exactly once, in stream order, with ``rewrite`` finalised.  The pipeline then
writes unique entries and rewrite-flagged duplicates to containers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


@dataclass(slots=True)
class IngestEntry:
    """One chunk travelling through the ingest pipeline.

    The pipeline fills the identity and duplicate-detection fields; the
    rewriting policy owns ``rewrite``.  Slotted: one is created per chunk
    occurrence on every policy-bearing ingest path.
    """

    fp: bytes
    size: int
    payload: bytes | None = None
    #: True when duplicate detection found an existing copy.
    duplicate: bool = False
    #: Storage key of the existing current copy (duplicates only).
    existing_key: bytes | None = None
    #: Container currently holding that copy (duplicates only).
    container_id: int | None = None
    #: Policy decision: store this duplicate again.
    rewrite: bool = False


class RewritingPolicy:
    """Base class: never rewrites; subclasses override the hooks they need."""

    #: Human-readable policy name for reports.
    name = "none"

    def begin_backup(self, backup_id: int) -> None:
        """Called before the first chunk of each backup."""

    def feed(self, entry: IngestEntry) -> Iterable[IngestEntry]:
        """Offer one entry; yield zero or more entries with final decisions.

        Entries must come back in stream order.  A policy that buffers
        returns nothing now and releases the buffer later.
        """
        return (entry,)

    def flush(self) -> Iterable[IngestEntry]:
        """Release any buffered entries at end of backup (decisions final)."""
        return ()

    def end_backup(self) -> None:
        """Called after the last entry has been flushed and written."""


@dataclass
class _Segment:
    """A buffered run of stream entries used by segment-based policies."""

    entries: list[IngestEntry] = field(default_factory=list)
    buffered_bytes: int = 0

    def add(self, entry: IngestEntry) -> None:
        self.entries.append(entry)
        self.buffered_bytes += entry.size

    def referenced_bytes_by_container(self) -> dict[int, int]:
        """Duplicate bytes per referenced old container in this segment."""
        per_container: dict[int, int] = {}
        for entry in self.entries:
            if entry.duplicate and entry.container_id is not None:
                per_container[entry.container_id] = (
                    per_container.get(entry.container_id, 0) + entry.size
                )
        return per_container

    def clear(self) -> None:
        self.entries.clear()
        self.buffered_bytes = 0


class NullRewriting(RewritingPolicy):
    """The no-op policy: every duplicate stays deduplicated.

    Used by the Naïve baseline and by GCCDF itself — the paper's point is
    that GCCDF "never tolerates any duplicate chunks" (§6.2).
    """

    name = "none"
