"""HAR — History-Aware Rewriting (Fu et al., TPDS '16).

HAR's insight is that fragmentation shows up as *sparse containers*: old
containers of which the current backup references only a small fraction.
Because consecutive backups are similar, a container sparse for backup *n*
will be sparse for backup *n+1* too.  So HAR records, while ingesting each
backup, the utilization of every old container it references; containers
below the utilization threshold are declared sparse, and during the *next*
backup every duplicate chunk housed in a sparse container is rewritten.

Decisions are per chunk (no stream buffering), which is what makes HAR cheap
at ingest time.
"""

from __future__ import annotations

from typing import Iterable

from repro.dedup.rewriting.base import IngestEntry, RewritingPolicy
from repro.errors import ConfigError, UnknownContainerError
from repro.storage.store import ContainerStore


class HARRewriting(RewritingPolicy):
    """Sparse-container rewriting driven by the previous backup's history."""

    name = "har"

    def __init__(self, store: ContainerStore, utilization_threshold: float = 0.25):
        """``utilization_threshold``: containers whose referenced fraction
        falls below this are sparse.  The default is calibrated so HAR's
        profile matches the paper's §3.1/§6.2 observation — a moderate
        restore gain bought with a lasting dedup-ratio loss."""
        if not (0.0 < utilization_threshold <= 1.0):
            raise ConfigError("utilization_threshold must be in (0, 1]")
        self.store = store
        self.utilization_threshold = utilization_threshold
        #: Persistent per-container utilization records ("history"): the
        #: container's referenced fraction the last time any backup touched
        #: it.  Persistence (rather than previous-backup-only state) is what
        #: keeps HAR effective on multi-source streams, where the relevant
        #: history for a source is several backups old.
        self._utilization: dict[int, float] = {}
        #: Referenced bytes per old container, accumulated this backup.
        self._referenced: dict[int, int] = {}

    def begin_backup(self, backup_id: int) -> None:
        self._referenced = {}

    def _is_sparse(self, container_id: int) -> bool:
        utilization = self._utilization.get(container_id)
        return utilization is not None and utilization < self.utilization_threshold

    def feed(self, entry: IngestEntry) -> Iterable[IngestEntry]:
        if entry.duplicate and entry.container_id is not None:
            if self._is_sparse(entry.container_id):
                entry.rewrite = True
            else:
                self._referenced[entry.container_id] = (
                    self._referenced.get(entry.container_id, 0) + entry.size
                )
        return (entry,)

    def end_backup(self) -> None:
        """Fold this backup's utilization observations into the records."""
        for container_id, referenced_bytes in self._referenced.items():
            try:
                container = self.store.peek(container_id)
            except UnknownContainerError:
                self._utilization.pop(container_id, None)
                continue  # reclaimed by GC since we saw it
            if container.used_bytes == 0:
                continue
            self._utilization[container_id] = referenced_bytes / container.used_bytes
        self._referenced = {}
