"""Hybrid inline/out-of-line deduplication, piggybacked on the GC cycle.

The inline pipeline probes the fingerprint index for *every* chunk — the
index probe is the ingest fast path's dominant metadata cost at scale.
The hybrid mode (PAPERS.md, arXiv 1405.5661) splits that work:

* **Ingest** classifies each chunk with two cheap probes only — a
  *neighbor map* (the previous backup of the same source, the locality
  set that catches the overwhelming majority of duplicates in backup
  workloads) and an ingest-side Bloom filter over everything ever
  stored.  A neighbor hit dedups inline as usual (one ``validate``
  probe).  A neighbor miss never touches the full index: if the filter
  has *never* seen the fingerprint the chunk is definitely new and is
  stored directly; if the filter says "maybe seen" the chunk is stored
  as a fresh copy anyway and recorded as a **deferred duplicate
  candidate**.
* **GC** coalesces the candidates out-of-line at the start of every
  mark/sweep cycle (:func:`run_rededup` for the stop-the-world engine;
  the incremental engine runs the same :func:`rededup_slice` under its
  step budget): each candidate copy is folded onto its *canonical* copy
  — the oldest generation of the same logical fingerprint still in the
  index — by repointing every referencing recipe, journaled as a
  ``rededup`` intent so a crash at the ``gc.rededup`` point rolls
  forward (see :mod:`repro.faults.recovery`).  The emptied copy's
  container is remembered in :attr:`HybridState.pending_sweep` and
  force-fed into the next mark's GS list, so the ordinary copy-forward
  sweep reclaims the duplicate bytes.

Once GC has drained every candidate, the system state is equivalent to
having ingested inline: same live backups, same logical chunk streams,
same single physical copy per live fingerprint (``benchmarks/hybrid.py``
hard-gates this).  What differs, by design, is the probe accounting —
hybrid ingest performs roughly ``dup_fraction`` index probes per chunk
versus inline's ``1 + dup_fraction`` — and the transient physical bytes
between ingest and the next GC.

Modelling notes: minting a fresh storage key
(:meth:`~repro.dedup.logical_index.LogicalIndex.new_key`) is writer-local
metadata, not an index probe — real deferred-dedup systems assign unique
copy ids without consulting the fingerprint index.  Canonical-copy
discovery during rededup probes index *membership* per older generation;
those probes are accounted separately (``hybrid.rededup_probes``)
because they ride the GC cycle, not the ingest path.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Iterable

from repro.dedup.keys import key_generation, logical_fp, storage_key
from repro.hashing.bloom import BloomFilter
from repro.index.columnar import ColumnarRecipe
from repro.index.recipe import Recipe
from repro.model import ChunkRef

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.faults.journal import IntentJournal
    from repro.index.fingerprint_index import FingerprintIndex
    from repro.index.recipe import RecipeStore
    from repro.simio.disk import DiskModel

#: Initial capacity of the ingest classification filter; like the index's
#: negative guard it rebuilds at 4× from the logical key population
#: whenever insertions outgrow it.
INGEST_FILTER_INITIAL_CAPACITY = 4096

#: Domain-separation salt for the ingest filter (distinct from the
#: index's ``fp-index-guard`` so the two never share collision patterns).
INGEST_FILTER_SALT = b"hybrid-ingest"


class HybridState:
    """Mutable hybrid-dedup bookkeeping owned by one backup service.

    * ``neighbors`` — per-source window: the fp → storage-key map of the
      *previous* backup of that source (plus the in-progress backup's own
      entries while it streams).  This is the cheap locality set ingest
      dedups against inline.
    * ``candidates`` — deferred-duplicate candidates: storage key of the
      deferred copy → ids of the backups referencing it.  GC drains this.
    * ``pending_sweep`` — containers that held a coalesced duplicate
      copy; they are forced into the next mark's GS list so the sweep
      reclaims the duplicate bytes even when no deletion would have
      selected them.
    * ``filter`` — Bloom filter over every logical fingerprint ever
      stored; "definitely never seen" short-circuits a chunk straight to
      storage with zero candidates recorded.
    """

    def __init__(self, filter_capacity: int = INGEST_FILTER_INITIAL_CAPACITY):
        self.neighbors: dict[str, dict[bytes, bytes]] = {}
        self.candidates: dict[bytes, set[int]] = {}
        self.pending_sweep: set[int] = set()
        self.filter = BloomFilter(filter_capacity, salt=INGEST_FILTER_SALT)
        self.filter_adds = 0
        # Ingest-side classification counters.
        self.deferred = 0
        self.neighbor_hits = 0
        self.neighbor_stale = 0
        self.filter_new = 0
        self.filter_maybe = 0
        # GC-side rededup counters.
        self.coalesced = 0
        self.promoted = 0
        self.dropped = 0
        self.rededup_probes = 0
        self.repointed_recipes = 0
        self.repointed_entries = 0

    # ------------------------------------------------------------------
    # Ingest-side filter maintenance
    # ------------------------------------------------------------------

    def note_stored(self, fp: bytes) -> None:
        """Record that a copy of logical fingerprint ``fp`` was stored."""
        self.filter.add(fp)
        self.filter_adds += 1

    def maybe_rebuild_filter(self, current_keys: Iterable[bytes]) -> None:
        """Regrow a saturated ingest filter from the live key population.

        Mirrors the fingerprint index's negative-guard rebuild: reclaimed
        fingerprints drop out, which only removes false "maybe seen"
        answers (fewer spurious deferrals); a Bloom filter never develops
        false negatives, so correctness is unaffected either way.
        """
        if self.filter_adds <= self.filter.capacity:
            return
        keys = list(current_keys)
        rebuilt = BloomFilter(4 * self.filter.capacity, salt=INGEST_FILTER_SALT)
        rebuilt.update(keys)
        self.filter = rebuilt
        self.filter_adds = len(keys)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """The ``hybrid.*`` counter block for ``runtime_metrics()``."""
        return {
            "hybrid.deferred": self.deferred,
            "hybrid.coalesced": self.coalesced,
            "hybrid.promoted": self.promoted,
            "hybrid.dropped": self.dropped,
            "hybrid.pending": len(self.candidates),
            "hybrid.pending_sweep": len(self.pending_sweep),
            "hybrid.neighbor_hits": self.neighbor_hits,
            "hybrid.neighbor_stale": self.neighbor_stale,
            "hybrid.filter_new": self.filter_new,
            "hybrid.filter_maybe": self.filter_maybe,
            "hybrid.rededup_probes": self.rededup_probes,
            "hybrid.repointed_recipes": self.repointed_recipes,
            "hybrid.repointed_entries": self.repointed_entries,
        }


# ----------------------------------------------------------------------
# Recipe repointing
# ----------------------------------------------------------------------


def repoint_recipe(
    recipes: "RecipeStore", backup_id: int, dup: bytes, canonical: bytes
) -> int:
    """Rebuild one backup's recipe with every ``dup`` reference replaced
    by ``canonical``; returns the number of entries changed (0 when the
    recipe does not reference ``dup``, which makes replays idempotent).
    """
    recipe = recipes.get(backup_id)
    if isinstance(recipe, ColumnarRecipe):
        interner = recipe.interner
        dup_id = interner.id_map().get(dup)
        if dup_id is None or dup_id not in recipe.unique_ids():
            return 0
        canonical_id = interner.intern(canonical)
        new_ids = array("q", recipe.chunk_ids)
        changed = 0
        # C-level scan: array.index jumps between occurrences instead of a
        # Python-level comparison per position.
        position = 0
        while True:
            try:
                position = new_ids.index(dup_id, position)
            except ValueError:
                break
            new_ids[position] = canonical_id
            changed += 1
            position += 1
        replacement: Recipe | ColumnarRecipe = ColumnarRecipe(
            recipe.backup_id,
            interner,
            new_ids,
            recipe.chunk_sizes,
            source=recipe.source,
        )
    else:
        changed = sum(1 for entry in recipe.entries if entry.fp == dup)
        if not changed:
            return 0
        replacement = Recipe(
            backup_id=recipe.backup_id,
            entries=tuple(
                entry
                if entry.fp != dup
                else ChunkRef(fp=canonical, size=entry.size)
                for entry in recipe.entries
            ),
            source=recipe.source,
        )
    recipes.replace(replacement)
    return changed


# ----------------------------------------------------------------------
# The GC rededup pass
# ----------------------------------------------------------------------


def find_canonical(
    state: HybridState, index: "FingerprintIndex", key: bytes
) -> bytes | None:
    """The oldest still-indexed copy of ``key``'s logical fingerprint
    below ``key``'s own generation, or ``None`` when ``key`` is already
    the oldest (the candidate was a filter false positive, or its elders
    were reclaimed — either way it is promoted to canonical)."""
    fp = logical_fp(key)
    for generation in range(key_generation(key)):
        state.rededup_probes += 1
        older = storage_key(fp, generation)
        if older in index:
            return older
    return None


def rededup_slice(
    key: bytes,
    *,
    state: HybridState,
    index: "FingerprintIndex",
    recipes: "RecipeStore",
    journal: "IntentJournal",
    disk: "DiskModel",
    barrier: set[bytes] | None = None,
) -> str:
    """Process one deferred-duplicate candidate; returns the outcome.

    * ``"gone"`` — the copy left the index (a sweep reclaimed it, or a
      recovered ``rededup`` intent already coalesced it); dropped.
    * ``"promoted"`` — no older copy exists; the candidate *is* the
      canonical copy.  Dropped (generations only ever grow, so no older
      copy can appear later).
    * ``"idle"`` — an older copy exists but no *live* backup references
      the candidate; kept for the ordinary sweep to reclaim (its deleted
      referers put its container on the GS list when they purge).
    * ``"coalesced"`` — every live referer's recipe was repointed to the
      canonical copy under a journaled ``rededup`` intent, the candidate
      key was dropped from the index, and its container queued in
      ``pending_sweep``.  The ``gc.rededup`` crash point fires between
      the recipe repoints and the index drop; recovery rolls the intent
      forward.

    ``barrier`` is the incremental cycle's live-reference barrier: when a
    mid-cycle ingest referenced the candidate, retention must follow the
    repoint (drop the duplicate key, protect the canonical one).
    """
    refs = state.candidates.get(key)
    if refs is None:
        return "gone"
    if key not in index:
        del state.candidates[key]
        state.dropped += 1
        return "gone"
    canonical = find_canonical(state, index, key)
    if canonical is None:
        del state.candidates[key]
        state.promoted += 1
        return "promoted"
    referers = sorted(backup_id for backup_id in refs if recipes.is_live(backup_id))
    if not referers:
        return "idle"
    # Imported here, not at module top: the ingest pipeline imports this
    # module, and ``repro.gc``'s package init imports the engine, which
    # imports this module back — a top-level import would close the cycle
    # before either side finished initialising.
    from repro.gc.mark import RECIPE_ENTRY_BYTES
    container_id = index.get(key).container_id
    intent = journal.begin(
        "rededup",
        dup=key,
        canonical=canonical,
        backups=referers,
        container_id=container_id,
    )
    changed_entries = 0
    repointed = 0
    for backup_id in referers:
        changed = repoint_recipe(recipes, backup_id, key, canonical)
        if changed:
            disk.write(changed * RECIPE_ENTRY_BYTES)
            changed_entries += changed
            repointed += 1
    disk.crash_point(
        "gc.rededup",
        dup=key.hex(),
        canonical=canonical.hex(),
        container_id=container_id,
    )
    index.discard(key)
    journal.commit(intent)
    journal.close(intent)
    state.pending_sweep.add(container_id)
    fp = logical_fp(key)
    for neighbor_map in state.neighbors.values():
        if neighbor_map.get(fp) == key:
            neighbor_map[fp] = canonical
    if barrier is not None:
        barrier.discard(key)
        barrier.add(canonical)
    del state.candidates[key]
    state.coalesced += 1
    state.repointed_recipes += repointed
    state.repointed_entries += changed_entries
    return "coalesced"


def run_rededup(
    state: HybridState,
    *,
    index: "FingerprintIndex",
    recipes: "RecipeStore",
    journal: "IntentJournal",
    disk: "DiskModel",
) -> None:
    """Drain every current candidate (the stop-the-world engine's pass).

    Candidates are processed in sorted key order — the same order the
    incremental engine's budgeted steps use — so both engines charge
    identical I/O in identical order and a drained hybrid system is
    engine-independent.
    """
    queue = sorted(state.candidates)
    if not queue:
        return
    coalesced_before = state.coalesced
    with disk.phase("gc.rededup") as ph:
        for key in queue:
            rededup_slice(
                key,
                state=state,
                index=index,
                recipes=recipes,
                journal=journal,
                disk=disk,
            )
        ph.annotate(
            candidates=len(queue),
            coalesced=state.coalesced - coalesced_before,
            pending=len(state.candidates),
        )


def forced_containers(state: HybridState, store) -> set[int]:
    """Containers the next mark must GS-list: they held a coalesced
    duplicate copy whose bytes only the sweep can reclaim.  Entries whose
    container already left the store (swept by a previous round) are
    pruned."""
    present = {cid for cid in state.pending_sweep if cid in store}
    state.pending_sweep = set(present)
    return present
