"""Duplicate-detection index: logical fingerprint → current storage key.

This is the index ingest probes (paper §2.2 step ②).  It answers "has this
content been stored, and which physical copy should a new reference point
at?" — always the *most recent* copy, so that after a rewriting policy stores
a fresh copy, subsequent backups reference it and inherit its locality.

Entries can go stale: GC may reclaim the copy a logical entry points at
(when no recipe references it any more).  Rather than coupling GC to this
index, lookups validate against the physical index lazily and treat a stale
hit as a miss.
"""

from __future__ import annotations

from repro.dedup.keys import key_generation, storage_key
from repro.index.fingerprint_index import FingerprintIndex, Placement


class LogicalIndex:
    """fp → current storage key, validated against the physical index."""

    def __init__(self, physical: FingerprintIndex):
        self._physical = physical
        self._current: dict[bytes, bytes] = {}
        self.lookups = 0
        self.hits = 0

    def lookup(self, fp: bytes) -> tuple[bytes, Placement] | None:
        """Return the live current copy of ``fp``, or None.

        A hit whose storage key the physical index no longer holds (the copy
        was garbage-collected) is dropped and reported as a miss.  The
        physical probe uses :meth:`~repro.index.fingerprint_index.
        FingerprintIndex.validate` — the key is almost always present, so
        the negative-lookup guard would be pure overhead here.
        """
        self.lookups += 1
        key = self._current.get(fp)
        if key is None:
            return None
        placement = self._physical.validate(key)
        if placement is None:
            del self._current[fp]
            return None
        self.hits += 1
        return key, placement

    def new_key(self, fp: bytes) -> bytes:
        """Mint the storage key for a fresh copy of ``fp`` and make it
        current.  Generations increase monotonically per fingerprint."""
        previous = self._current.get(fp)
        generation = key_generation(previous) + 1 if previous is not None else 0
        key = storage_key(fp, generation)
        self._current[fp] = key
        return key

    def current_map(self) -> dict[bytes, bytes]:
        """The live fp → current-storage-key dict.

        Exposed for the batched ingest kernel, which fuses the probe /
        validate / invalidate sequence of :meth:`lookup` into one loop with
        C-level dict access; callers must mirror that exact semantics
        (including counter updates) when touching the map directly.
        """
        return self._current

    def __len__(self) -> int:
        return len(self._current)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0
