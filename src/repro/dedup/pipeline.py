"""The deduplicating ingest pipeline (paper §2.2).

``ingest`` consumes a backup's chunk stream — either materialised
:class:`~repro.model.Chunk` objects from a real chunker or bare
:class:`~repro.model.ChunkRef` references from a trace-level workload — and:

1. probes the logical index for duplicates,
2. offers every entry to the rewriting policy (the hook where Capping/HAR/SMR
   act; the paper's workflow puts rewriting exactly here),
3. writes unique and rewrite-flagged chunks to containers,
4. records the backup's recipe over *storage keys*, pinning the exact copies
   this backup reads at restore time.

Setting ``dedup_enabled=False`` makes every occurrence a fresh copy — the
Non-dedup baseline of §3.1 — through the same code path.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Iterable, Union

from repro.dedup.logical_index import LogicalIndex
from repro.dedup.rewriting.base import IngestEntry, NullRewriting, RewritingPolicy
from repro.index.fingerprint_index import FingerprintIndex
from repro.index.recipe import Recipe, RecipeStore
from repro.model import Chunk, ChunkRef
from repro.storage.store import ContainerStore
from repro.storage.writer import ContainerWriter


@dataclass(frozen=True)
class IngestResult:
    """Accounting for one ingested backup."""

    backup_id: int
    logical_bytes: int
    num_chunks: int
    #: Bytes newly written to containers (unique + rewritten copies).
    stored_bytes: int
    #: Bytes eliminated as duplicates (not counting rewritten ones).
    dedup_bytes: int
    #: Bytes that were duplicates but stored again by the rewriting policy.
    rewritten_bytes: int
    #: Containers sealed while ingesting this backup.
    containers_written: int

    def to_dict(self) -> dict:
        """Plain-scalar dict; round-trips through JSON (run cache)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "IngestResult":
        return cls(**data)


class IngestPipeline:
    """Drives backup streams through dedup + rewriting into containers."""

    def __init__(
        self,
        store: ContainerStore,
        index: FingerprintIndex,
        recipes: RecipeStore,
        rewriting: RewritingPolicy | None = None,
        dedup_enabled: bool = True,
    ):
        self.store = store
        self.index = index
        self.recipes = recipes
        self.rewriting = rewriting or NullRewriting()
        self.dedup_enabled = dedup_enabled
        self.logical = LogicalIndex(index)

    def ingest(
        self,
        stream: Iterable[Union[Chunk, ChunkRef]],
        source: str = "",
    ) -> IngestResult:
        """Deduplicate and store one backup; returns its accounting."""
        backup_id = self.recipes.new_backup_id()
        self.rewriting.begin_backup(backup_id)
        writer = ContainerWriter(self.store)

        recipe_keys: list[ChunkRef] = []
        logical_bytes = 0
        stored_bytes = 0
        dedup_bytes = 0
        rewritten_bytes = 0

        def write_entry(entry: IngestEntry) -> None:
            nonlocal stored_bytes, dedup_bytes, rewritten_bytes
            if entry.duplicate and not entry.rewrite:
                assert entry.existing_key is not None
                recipe_keys.append(ChunkRef(fp=entry.existing_key, size=entry.size))
                dedup_bytes += entry.size
                return
            key = self.logical.new_key(entry.fp)
            ref = ChunkRef(fp=key, size=entry.size)
            container_id = writer.append(ref, entry.payload)
            self.index.insert(key, container_id, entry.size)
            recipe_keys.append(ref)
            stored_bytes += entry.size
            if entry.duplicate:
                rewritten_bytes += entry.size

        with self.store.disk.phase("ingest") as ph:
            for item in stream:
                if isinstance(item, Chunk):
                    fp, size, payload = item.fp, item.size, item.data
                else:
                    fp, size, payload = item.fp, item.size, None
                logical_bytes += size
                entry = IngestEntry(fp=fp, size=size, payload=payload)
                if self.dedup_enabled:
                    hit = self.logical.lookup(fp)
                    if hit is not None:
                        key, placement = hit
                        # A copy sitting in the still-open container cannot be
                        # fragmented away from this stream; treat normally.
                        entry.duplicate = True
                        entry.existing_key = key
                        entry.container_id = placement.container_id
                for decided in self.rewriting.feed(entry):
                    write_entry(decided)

            for decided in self.rewriting.flush():
                write_entry(decided)
            containers = writer.flush()
            self.rewriting.end_backup()
            ph.annotate(
                backup_id=backup_id,
                logical_bytes=logical_bytes,
                stored_bytes=stored_bytes,
                dedup_bytes=dedup_bytes,
                rewritten_bytes=rewritten_bytes,
                containers_written=len(containers),
            )

        recipe = Recipe(backup_id=backup_id, entries=tuple(recipe_keys), source=source)
        self.recipes.add(recipe)
        return IngestResult(
            backup_id=backup_id,
            logical_bytes=logical_bytes,
            num_chunks=len(recipe_keys),
            stored_bytes=stored_bytes,
            dedup_bytes=dedup_bytes,
            rewritten_bytes=rewritten_bytes,
            containers_written=len(containers),
        )
