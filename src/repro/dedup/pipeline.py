"""The deduplicating ingest pipeline (paper §2.2).

``ingest`` consumes a backup's chunk stream — either materialised
:class:`~repro.model.Chunk` objects from a real chunker or bare
:class:`~repro.model.ChunkRef` references from a trace-level workload — and:

1. probes the logical index for duplicates,
2. offers every entry to the rewriting policy (the hook where Capping/HAR/SMR
   act; the paper's workflow puts rewriting exactly here),
3. writes unique and rewrite-flagged chunks to containers,
4. records the backup's recipe over *storage keys*, pinning the exact copies
   this backup reads at restore time.

Setting ``dedup_enabled=False`` makes every occurrence a fresh copy — the
Non-dedup baseline of §3.1 — through the same code path.

Two representations, one semantics
----------------------------------

With ``columnar=True`` (the default) recipes are built as
:class:`~repro.index.columnar.ColumnarRecipe` id/size columns, and streams
that need no rewriting decisions (``NullRewriting`` — Naïve, GCCDF,
Non-dedup) take a fused batched kernel: the duplicate majority of the
stream is classified with two C-level dict probes and two array appends per
chunk, materialising no ``IngestEntry``/``ChunkRef`` objects and paying no
policy calls.  Chunks that miss (or arrive with a rewriting policy
installed) flow through the same step sequence as the legacy path, so
container contents, simulated I/O order, crash points, and every counter
are bit-identical between representations.  ``columnar=False`` keeps the
original tuple-of-``ChunkRef`` pipeline callable for benchmarking
(``repro-bench``) and A/B verification.
"""

from __future__ import annotations

from array import array
from dataclasses import asdict, dataclass
from typing import Iterable, Union

from repro.dedup.hybrid import HybridState
from repro.dedup.logical_index import LogicalIndex
from repro.dedup.rewriting.base import IngestEntry, NullRewriting, RewritingPolicy
from repro.index.columnar import ColumnarRecipe
from repro.index.fingerprint_index import FingerprintIndex
from repro.index.recipe import Recipe, RecipeStore
from repro.model import Chunk, ChunkRef
from repro.storage.store import ContainerStore
from repro.storage.writer import ContainerWriter


@dataclass(frozen=True)
class IngestResult:
    """Accounting for one ingested backup."""

    backup_id: int
    logical_bytes: int
    num_chunks: int
    #: Bytes newly written to containers (unique + rewritten copies).
    stored_bytes: int
    #: Bytes eliminated as duplicates (not counting rewritten ones).
    dedup_bytes: int
    #: Bytes that were duplicates but stored again by the rewriting policy.
    rewritten_bytes: int
    #: Containers sealed while ingesting this backup.
    containers_written: int

    def to_dict(self) -> dict:
        """Plain-scalar dict; round-trips through JSON (run cache)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "IngestResult":
        return cls(**data)


class IngestPipeline:
    """Drives backup streams through dedup + rewriting into containers."""

    def __init__(
        self,
        store: ContainerStore,
        index: FingerprintIndex,
        recipes: RecipeStore,
        rewriting: RewritingPolicy | None = None,
        dedup_enabled: bool = True,
        columnar: bool = True,
        hybrid: HybridState | None = None,
    ):
        self.store = store
        self.index = index
        self.recipes = recipes
        self.rewriting = rewriting or NullRewriting()
        self.dedup_enabled = dedup_enabled
        self.columnar = columnar
        self.hybrid = hybrid
        self.logical = LogicalIndex(index)

    def ingest(
        self,
        stream: Iterable[Union[Chunk, ChunkRef]],
        source: str = "",
    ) -> IngestResult:
        """Deduplicate and store one backup; returns its accounting."""
        if (
            self.hybrid is not None
            and self.dedup_enabled
            and type(self.rewriting) is NullRewriting
        ):
            # Hybrid classification only applies to decision-free streams:
            # rewriting policies need the full inline duplicate verdict per
            # chunk, so policy-bearing services fall back to inline dedup.
            if self.columnar:
                return self._ingest_hybrid_batched(stream, source)
            return self._ingest_hybrid_legacy(stream, source)
        if self.columnar:
            # The fused kernel assumes the policy is a decision-free
            # pass-through (exact type check: subclasses may override hooks).
            if type(self.rewriting) is NullRewriting:
                return self._ingest_batched(stream, source)
            return self._ingest_columnar_policy(stream, source)
        return self._ingest_legacy(stream, source)

    # ------------------------------------------------------------------
    # Legacy path: tuple-of-ChunkRef recipes (the pre-columnar pipeline)
    # ------------------------------------------------------------------

    def _ingest_legacy(
        self, stream: Iterable[Union[Chunk, ChunkRef]], source: str
    ) -> IngestResult:
        backup_id = self.recipes.new_backup_id()
        self.rewriting.begin_backup(backup_id)
        writer = ContainerWriter(self.store)

        recipe_keys: list[ChunkRef] = []
        logical_bytes = 0
        stored_bytes = 0
        dedup_bytes = 0
        rewritten_bytes = 0

        def write_entry(entry: IngestEntry) -> None:
            nonlocal stored_bytes, dedup_bytes, rewritten_bytes
            if entry.duplicate and not entry.rewrite:
                assert entry.existing_key is not None
                recipe_keys.append(ChunkRef(fp=entry.existing_key, size=entry.size))
                dedup_bytes += entry.size
                return
            key = self.logical.new_key(entry.fp)
            ref = ChunkRef(fp=key, size=entry.size)
            container_id = writer.append(ref, entry.payload)
            self.index.insert(key, container_id, entry.size)
            recipe_keys.append(ref)
            stored_bytes += entry.size
            if entry.duplicate:
                rewritten_bytes += entry.size

        with self.store.disk.phase("ingest") as ph:
            for item in stream:
                if isinstance(item, Chunk):
                    fp, size, payload = item.fp, item.size, item.data
                else:
                    fp, size, payload = item.fp, item.size, None
                logical_bytes += size
                entry = IngestEntry(fp=fp, size=size, payload=payload)
                if self.dedup_enabled:
                    hit = self.logical.lookup(fp)
                    if hit is not None:
                        key, placement = hit
                        # A copy sitting in the still-open container cannot be
                        # fragmented away from this stream; treat normally.
                        entry.duplicate = True
                        entry.existing_key = key
                        entry.container_id = placement.container_id
                for decided in self.rewriting.feed(entry):
                    write_entry(decided)

            for decided in self.rewriting.flush():
                write_entry(decided)
            containers = writer.flush()
            self.rewriting.end_backup()
            ph.annotate(
                backup_id=backup_id,
                logical_bytes=logical_bytes,
                stored_bytes=stored_bytes,
                dedup_bytes=dedup_bytes,
                rewritten_bytes=rewritten_bytes,
                containers_written=len(containers),
            )

        recipe = Recipe(backup_id=backup_id, entries=tuple(recipe_keys), source=source)
        self.recipes.add(recipe)
        return IngestResult(
            backup_id=backup_id,
            logical_bytes=logical_bytes,
            num_chunks=len(recipe_keys),
            stored_bytes=stored_bytes,
            dedup_bytes=dedup_bytes,
            rewritten_bytes=rewritten_bytes,
            containers_written=len(containers),
        )

    # ------------------------------------------------------------------
    # Columnar path with a rewriting policy: per-entry decisions over
    # interned id/size columns
    # ------------------------------------------------------------------

    def _ingest_columnar_policy(
        self, stream: Iterable[Union[Chunk, ChunkRef]], source: str
    ) -> IngestResult:
        """Policy-bearing ingest onto a columnar recipe.

        The policy still sees one :class:`IngestEntry` per chunk — buffered
        segment decisions (Capping/HAR/SMR) need the full entry — but the
        duplicate probe is the fused ``current``/``placements`` dict pair
        with bulk-flushed statistics (as in :meth:`_ingest_batched`), and
        accepted entries append interned ids instead of ``ChunkRef``s,
        which only the miss/rewrite minority materialises.
        """
        backup_id = self.recipes.new_backup_id()
        self.rewriting.begin_backup(backup_id)
        writer = ContainerWriter(self.store)

        ids = array("q")
        sizes = array("q")
        ids_append = ids.append
        sizes_append = sizes.append
        intern = self.recipes.interner.intern
        interned_get = self.recipes.interner.id_map().get

        index = self.index
        logical = self.logical
        current = logical.current_map()
        current_get = current.get
        placements_get = index.placements_map().get
        new_key = logical.new_key
        insert = index.insert
        writer_append = writer.append
        feed = self.rewriting.feed
        chunk_type = Chunk
        dedup_enabled = self.dedup_enabled

        logical_bytes = 0
        stored_bytes = 0
        dedup_bytes = 0
        rewritten_bytes = 0
        # Probe statistics, flushed to the index objects after the loop
        # (bulk adds of the exact per-probe increments the legacy path makes).
        log_lookups = 0
        log_hits = 0
        phys_probes = 0
        phys_hits = 0

        def write_entry(entry: IngestEntry) -> None:
            nonlocal stored_bytes, dedup_bytes, rewritten_bytes
            if entry.duplicate and not entry.rewrite:
                assert entry.existing_key is not None
                ids_append(intern(entry.existing_key))
                sizes_append(entry.size)
                dedup_bytes += entry.size
                return
            key = new_key(entry.fp)
            container_id = writer_append(ChunkRef(fp=key, size=entry.size), entry.payload)
            insert(key, container_id, entry.size)
            ids_append(intern(key))
            sizes_append(entry.size)
            stored_bytes += entry.size
            if entry.duplicate:
                rewritten_bytes += entry.size

        with self.store.disk.phase("ingest") as ph:
            for item in stream:
                if isinstance(item, chunk_type):
                    fp, size, payload = item.fp, item.size, item.data
                else:
                    fp, size, payload = item.fp, item.size, None
                logical_bytes += size
                entry = IngestEntry(fp=fp, size=size, payload=payload)
                if dedup_enabled:
                    log_lookups += 1
                    key = current_get(fp)
                    if key is not None:
                        phys_probes += 1
                        placement = placements_get(key)
                        if placement is not None:
                            phys_hits += 1
                            log_hits += 1
                            # A copy sitting in the still-open container cannot
                            # be fragmented away from this stream; treat normally.
                            entry.duplicate = True
                            entry.existing_key = key
                            entry.container_id = placement.container_id
                        else:
                            # Stale entry: the copy was reclaimed — drop it
                            # (exactly what LogicalIndex.lookup does).
                            del current[fp]
                for decided in feed(entry):
                    # Accepted duplicates are the stream majority: record
                    # them inline with a bare intern-dict probe; the
                    # miss/rewrite minority takes the full write path.
                    if decided.duplicate and not decided.rewrite:
                        existing = decided.existing_key
                        chunk_id = interned_get(existing)
                        ids_append(
                            intern(existing) if chunk_id is None else chunk_id
                        )
                        sizes_append(decided.size)
                        dedup_bytes += decided.size
                    else:
                        write_entry(decided)

            for decided in self.rewriting.flush():
                write_entry(decided)
            containers = writer.flush()
            self.rewriting.end_backup()
            ph.annotate(
                backup_id=backup_id,
                logical_bytes=logical_bytes,
                stored_bytes=stored_bytes,
                dedup_bytes=dedup_bytes,
                rewritten_bytes=rewritten_bytes,
                containers_written=len(containers),
            )

        logical.lookups += log_lookups
        logical.hits += log_hits
        index.lookups += phys_probes
        index.hits += phys_hits

        recipe = ColumnarRecipe(
            backup_id=backup_id,
            interner=self.recipes.interner,
            chunk_ids=ids,
            chunk_sizes=sizes,
            source=source,
        )
        self.recipes.add(recipe)
        return IngestResult(
            backup_id=backup_id,
            logical_bytes=logical_bytes,
            num_chunks=len(ids),
            stored_bytes=stored_bytes,
            dedup_bytes=dedup_bytes,
            rewritten_bytes=rewritten_bytes,
            containers_written=len(containers),
        )

    # ------------------------------------------------------------------
    # Batched path: decision-free streams onto columnar recipes
    # ------------------------------------------------------------------

    def _ingest_batched(
        self, stream: Iterable[Union[Chunk, ChunkRef]], source: str
    ) -> IngestResult:
        """Fused classify/record kernel for ``NullRewriting`` streams.

        Replicates ``_ingest_general`` step for step — same probe order,
        same write order, same counters — but hoists every per-chunk
        attribute lookup and method call out of the loop and batches the
        index-statistics updates, so the duplicate majority costs two dict
        probes and two array appends per occurrence.
        """
        backup_id = self.recipes.new_backup_id()
        self.rewriting.begin_backup(backup_id)
        writer = ContainerWriter(self.store)

        ids = array("q")
        sizes = array("q")
        ids_append = ids.append
        sizes_append = sizes.append
        intern = self.recipes.interner.intern

        index = self.index
        logical = self.logical
        current = logical.current_map()
        current_get = current.get
        placements = index.placements_map()
        placements_get = placements.get
        new_key = logical.new_key
        insert = index.insert
        writer_append = writer.append
        chunk_type = Chunk
        dedup_enabled = self.dedup_enabled

        logical_bytes = 0
        stored_bytes = 0
        dedup_bytes = 0
        # Probe statistics, flushed to the index objects after the loop
        # (bulk adds of the exact per-probe increments the general path makes).
        log_lookups = 0
        log_hits = 0
        phys_probes = 0
        phys_hits = 0

        with self.store.disk.phase("ingest") as ph:
            for item in stream:
                if isinstance(item, chunk_type):
                    fp, size, payload = item.fp, item.size, item.data
                else:
                    fp, size, payload = item.fp, item.size, None
                logical_bytes += size
                if dedup_enabled:
                    log_lookups += 1
                    key = current_get(fp)
                    if key is not None:
                        phys_probes += 1
                        if placements_get(key) is not None:
                            # Duplicate: reference the live current copy.
                            phys_hits += 1
                            log_hits += 1
                            ids_append(intern(key))
                            sizes_append(size)
                            dedup_bytes += size
                            continue
                        # Stale entry: the copy was reclaimed — drop it and
                        # fall through to the miss path (exactly what
                        # LogicalIndex.lookup does).
                        del current[fp]
                # Miss (or dedup disabled): store a fresh copy.
                key = new_key(fp)
                container_id = writer_append(ChunkRef(fp=key, size=size), payload)
                insert(key, container_id, size)
                ids_append(intern(key))
                sizes_append(size)
                stored_bytes += size

            containers = writer.flush()
            self.rewriting.end_backup()
            ph.annotate(
                backup_id=backup_id,
                logical_bytes=logical_bytes,
                stored_bytes=stored_bytes,
                dedup_bytes=dedup_bytes,
                rewritten_bytes=0,
                containers_written=len(containers),
            )

        logical.lookups += log_lookups
        logical.hits += log_hits
        index.lookups += phys_probes
        index.hits += phys_hits

        recipe = ColumnarRecipe(
            backup_id=backup_id,
            interner=self.recipes.interner,
            chunk_ids=ids,
            chunk_sizes=sizes,
            source=source,
        )
        self.recipes.add(recipe)
        return IngestResult(
            backup_id=backup_id,
            logical_bytes=logical_bytes,
            num_chunks=len(ids),
            stored_bytes=stored_bytes,
            dedup_bytes=dedup_bytes,
            rewritten_bytes=0,
            containers_written=len(containers),
        )

    # ------------------------------------------------------------------
    # Hybrid inline/out-of-line path: neighbor/filter classification,
    # deferred duplicates coalesced later by GC (repro.dedup.hybrid)
    # ------------------------------------------------------------------

    def _ingest_hybrid_batched(
        self, stream: Iterable[Union[Chunk, ChunkRef]], source: str
    ) -> IngestResult:
        """Fused hybrid kernel for columnar ``NullRewriting`` streams.

        Per chunk: probe the per-source neighbor window (this stream's own
        entries, then the previous backup of the same source); a neighbor
        hit dedups inline after one index ``validate`` probe.  A neighbor
        miss consults only the ingest Bloom filter: "never seen" stores a
        definitely-new chunk, "maybe seen" stores a fresh copy *and*
        records it as a deferred-duplicate candidate for GC to coalesce.
        The full fingerprint index is never probed on the miss path —
        that is the fast-path saving the mode exists for.  The logical
        index's ``lookups`` counter is untouched by design: no logical
        probe happens.
        """
        hybrid = self.hybrid
        assert hybrid is not None
        backup_id = self.recipes.new_backup_id()
        self.rewriting.begin_backup(backup_id)
        writer = ContainerWriter(self.store)

        ids = array("q")
        sizes = array("q")
        ids_append = ids.append
        sizes_append = sizes.append
        intern = self.recipes.interner.intern

        index = self.index
        logical = self.logical
        placements_get = index.placements_map().get
        new_key = logical.new_key
        insert = index.insert
        writer_append = writer.append
        chunk_type = Chunk

        hybrid.maybe_rebuild_filter(logical.current_map())
        filter_contains = hybrid.filter.__contains__
        filter_add = hybrid.filter.add
        prev = hybrid.neighbors.get(source, {})
        prev_get = prev.get
        cur: dict[bytes, bytes] = {}
        cur_get = cur.get
        candidates = hybrid.candidates
        candidates_get = candidates.get

        logical_bytes = 0
        stored_bytes = 0
        dedup_bytes = 0
        # Probe/classification statistics, flushed in bulk after the loop.
        phys_probes = 0
        phys_hits = 0
        neighbor_hits = 0
        neighbor_stale = 0
        filter_new = 0
        filter_maybe = 0
        deferred = 0
        filter_adds = 0

        with self.store.disk.phase("ingest") as ph:
            for item in stream:
                if isinstance(item, chunk_type):
                    fp, size, payload = item.fp, item.size, item.data
                else:
                    fp, size, payload = item.fp, item.size, None
                logical_bytes += size
                key = cur_get(fp)
                if key is None:
                    key = prev_get(fp)
                if key is not None:
                    phys_probes += 1
                    if placements_get(key) is not None:
                        # Neighbor hit on a live copy: inline dedup.
                        phys_hits += 1
                        neighbor_hits += 1
                        ids_append(intern(key))
                        sizes_append(size)
                        dedup_bytes += size
                        cur[fp] = key
                        refs = candidates_get(key)
                        if refs is not None:
                            refs.add(backup_id)
                        continue
                    # The neighbor copy was reclaimed (or coalesced away):
                    # drop the stale entry and classify from scratch.
                    neighbor_stale += 1
                    prev.pop(fp, None)
                    cur.pop(fp, None)
                # Neighbor miss: Bloom-only classification — the full
                # index is not probed.  Either way the chunk is stored.
                maybe_seen = filter_contains(fp)
                key = new_key(fp)
                container_id = writer_append(ChunkRef(fp=key, size=size), payload)
                insert(key, container_id, size)
                ids_append(intern(key))
                sizes_append(size)
                stored_bytes += size
                cur[fp] = key
                filter_add(fp)
                filter_adds += 1
                if maybe_seen:
                    filter_maybe += 1
                    candidates[key] = {backup_id}
                    deferred += 1
                else:
                    filter_new += 1

            containers = writer.flush()
            self.rewriting.end_backup()
            ph.annotate(
                backup_id=backup_id,
                logical_bytes=logical_bytes,
                stored_bytes=stored_bytes,
                dedup_bytes=dedup_bytes,
                rewritten_bytes=0,
                containers_written=len(containers),
                deferred=deferred,
            )

        index.lookups += phys_probes
        index.hits += phys_hits
        hybrid.neighbor_hits += neighbor_hits
        hybrid.neighbor_stale += neighbor_stale
        hybrid.filter_new += filter_new
        hybrid.filter_maybe += filter_maybe
        hybrid.deferred += deferred
        hybrid.filter_adds += filter_adds
        # Advance the window: the next backup of this source dedups
        # against exactly this backup's fp → key map.
        hybrid.neighbors[source] = cur

        recipe = ColumnarRecipe(
            backup_id=backup_id,
            interner=self.recipes.interner,
            chunk_ids=ids,
            chunk_sizes=sizes,
            source=source,
        )
        self.recipes.add(recipe)
        return IngestResult(
            backup_id=backup_id,
            logical_bytes=logical_bytes,
            num_chunks=len(ids),
            stored_bytes=stored_bytes,
            dedup_bytes=dedup_bytes,
            rewritten_bytes=0,
            containers_written=len(containers),
        )

    def _ingest_hybrid_legacy(
        self, stream: Iterable[Union[Chunk, ChunkRef]], source: str
    ) -> IngestResult:
        """Hybrid classification onto a legacy tuple recipe — the same
        probe order, classification verdicts, write order, and counters as
        :meth:`_ingest_hybrid_batched`, so the two representations stay
        A/B-identical in hybrid mode too."""
        hybrid = self.hybrid
        assert hybrid is not None
        backup_id = self.recipes.new_backup_id()
        self.rewriting.begin_backup(backup_id)
        writer = ContainerWriter(self.store)

        index = self.index
        logical = self.logical
        placements_get = index.placements_map().get
        new_key = logical.new_key
        insert = index.insert
        writer_append = writer.append
        chunk_type = Chunk

        hybrid.maybe_rebuild_filter(logical.current_map())
        filter_contains = hybrid.filter.__contains__
        filter_add = hybrid.filter.add
        prev = hybrid.neighbors.get(source, {})
        prev_get = prev.get
        cur: dict[bytes, bytes] = {}
        cur_get = cur.get
        candidates = hybrid.candidates
        candidates_get = candidates.get

        recipe_keys: list[ChunkRef] = []
        recipe_append = recipe_keys.append
        logical_bytes = 0
        stored_bytes = 0
        dedup_bytes = 0
        phys_probes = 0
        phys_hits = 0
        neighbor_hits = 0
        neighbor_stale = 0
        filter_new = 0
        filter_maybe = 0
        deferred = 0
        filter_adds = 0

        with self.store.disk.phase("ingest") as ph:
            for item in stream:
                if isinstance(item, chunk_type):
                    fp, size, payload = item.fp, item.size, item.data
                else:
                    fp, size, payload = item.fp, item.size, None
                logical_bytes += size
                key = cur_get(fp)
                if key is None:
                    key = prev_get(fp)
                if key is not None:
                    phys_probes += 1
                    if placements_get(key) is not None:
                        phys_hits += 1
                        neighbor_hits += 1
                        recipe_append(ChunkRef(fp=key, size=size))
                        dedup_bytes += size
                        cur[fp] = key
                        refs = candidates_get(key)
                        if refs is not None:
                            refs.add(backup_id)
                        continue
                    neighbor_stale += 1
                    prev.pop(fp, None)
                    cur.pop(fp, None)
                maybe_seen = filter_contains(fp)
                key = new_key(fp)
                ref = ChunkRef(fp=key, size=size)
                container_id = writer_append(ref, payload)
                insert(key, container_id, size)
                recipe_append(ref)
                stored_bytes += size
                cur[fp] = key
                filter_add(fp)
                filter_adds += 1
                if maybe_seen:
                    filter_maybe += 1
                    candidates[key] = {backup_id}
                    deferred += 1
                else:
                    filter_new += 1

            containers = writer.flush()
            self.rewriting.end_backup()
            ph.annotate(
                backup_id=backup_id,
                logical_bytes=logical_bytes,
                stored_bytes=stored_bytes,
                dedup_bytes=dedup_bytes,
                rewritten_bytes=0,
                containers_written=len(containers),
                deferred=deferred,
            )

        index.lookups += phys_probes
        index.hits += phys_hits
        hybrid.neighbor_hits += neighbor_hits
        hybrid.neighbor_stale += neighbor_stale
        hybrid.filter_new += filter_new
        hybrid.filter_maybe += filter_maybe
        hybrid.deferred += deferred
        hybrid.filter_adds += filter_adds
        hybrid.neighbors[source] = cur

        recipe = Recipe(backup_id=backup_id, entries=tuple(recipe_keys), source=source)
        self.recipes.add(recipe)
        return IngestResult(
            backup_id=backup_id,
            logical_bytes=logical_bytes,
            num_chunks=len(recipe_keys),
            stored_bytes=stored_bytes,
            dedup_bytes=dedup_bytes,
            rewritten_bytes=0,
            containers_written=len(containers),
        )
