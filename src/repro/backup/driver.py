"""The evaluation driver: the paper's §6.1 protocol, approach-agnostic.

Sequence (Fig. 11–14 methodology):

1. ingest backups until the retention window (100) is full;
2. while the dataset has more backups: logically delete the oldest
   ``turnover`` (20), run GC, ingest the next ``turnover``;
3. final round: delete the oldest ``turnover``, run GC — leaving
   ``retained − turnover`` (80) live backups;
4. restore every remaining backup and record per-backup reports.

The driver works against any :class:`~repro.backup.service.BackupService`
and any iterable of backups, so the same code runs all approaches over all
datasets (and the scaled-down test configurations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.backup.retention import RetentionPolicy
from repro.backup.service import BackupService
from repro.config import RetentionConfig
from repro.dedup.pipeline import IngestResult
from repro.gc.report import GCReport
from repro.model import ChunkRef
from repro.obs.metrics import rotation_metrics
from repro.restore.report import RestoreReport


@dataclass(frozen=True)
class BackupSpec:
    """One backup as produced by a workload: its source and chunk stream."""

    source: str
    chunks: tuple[ChunkRef, ...]

    @property
    def logical_bytes(self) -> int:
        return sum(chunk.size for chunk in self.chunks)


@dataclass
class RotationResult:
    """Everything the experiment harness reads off one protocol run."""

    approach: str
    dataset: str
    ingest_reports: list[IngestResult] = field(default_factory=list)
    gc_reports: list[GCReport] = field(default_factory=list)
    restore_reports: list[RestoreReport] = field(default_factory=list)
    dedup_ratio: float = 0.0
    physical_bytes: int = 0
    cumulative_logical_bytes: int = 0
    cumulative_stored_bytes: int = 0
    #: Aggregated per-run counters/histograms
    #: (:func:`repro.obs.metrics.rotation_metrics` form); carried through
    #: the persistent run cache, so cached runs keep their metrics.
    metrics: dict = field(default_factory=dict)

    @property
    def mean_read_amplification(self) -> float:
        """Average read-amplification factor over restored backups (Fig. 12)."""
        if not self.restore_reports:
            return 0.0
        return sum(r.read_amplification for r in self.restore_reports) / len(
            self.restore_reports
        )

    @property
    def restore_speed(self) -> float:
        """Aggregate restoration speed in bytes/simulated-second (Fig. 11)."""
        total_bytes = sum(r.logical_bytes for r in self.restore_reports)
        total_seconds = sum(r.read_seconds for r in self.restore_reports)
        if total_seconds == 0.0:
            return float("inf") if total_bytes else 0.0
        return total_bytes / total_seconds

    @property
    def gc_total_seconds(self) -> float:
        return sum(report.total_seconds for report in self.gc_reports)

    def to_dict(self) -> dict:
        """Deterministic plain-data form: every leaf is an int/float/str,
        so the dict round-trips exactly through JSON (the persistent run
        cache and the parallel matrix runner both ship results this way)."""
        return {
            "approach": self.approach,
            "dataset": self.dataset,
            "ingest_reports": [r.to_dict() for r in self.ingest_reports],
            "gc_reports": [r.to_dict() for r in self.gc_reports],
            "restore_reports": [r.to_dict() for r in self.restore_reports],
            "dedup_ratio": self.dedup_ratio,
            "physical_bytes": self.physical_bytes,
            "cumulative_logical_bytes": self.cumulative_logical_bytes,
            "cumulative_stored_bytes": self.cumulative_stored_bytes,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RotationResult":
        return cls(
            approach=data["approach"],
            dataset=data["dataset"],
            ingest_reports=[IngestResult.from_dict(d) for d in data["ingest_reports"]],
            gc_reports=[GCReport.from_dict(d) for d in data["gc_reports"]],
            restore_reports=[
                RestoreReport.from_dict(d) for d in data["restore_reports"]
            ],
            dedup_ratio=data["dedup_ratio"],
            physical_bytes=data["physical_bytes"],
            cumulative_logical_bytes=data["cumulative_logical_bytes"],
            cumulative_stored_bytes=data["cumulative_stored_bytes"],
            metrics=dict(data.get("metrics", {})),
        )


class RotationDriver:
    """Runs the ingest/rotate/GC/restore protocol over one dataset."""

    def __init__(
        self,
        service: BackupService,
        retention: RetentionConfig,
        dataset_name: str = "",
    ):
        self.service = service
        self.policy = RetentionPolicy(retention)
        self.dataset_name = dataset_name

    def run(self, backups: Iterable[BackupSpec]) -> RotationResult:
        """Execute the full protocol; returns the collected result."""
        result = RotationResult(approach=self.service.name, dataset=self.dataset_name)
        iterator: Iterator[BackupSpec] = iter(backups)
        exhausted = False

        # Phase 1: fill the retention window.
        while len(self.service.live_backup_ids()) < self.policy.retained:
            spec = next(iterator, None)
            if spec is None:
                exhausted = True
                break
            result.ingest_reports.append(
                self.service.ingest(spec.chunks, source=spec.source)
            )

        # Phase 2: turnover rounds while backups remain.
        while not exhausted:
            batch: list[BackupSpec] = []
            for _ in range(self.policy.turnover):
                spec = next(iterator, None)
                if spec is None:
                    exhausted = True
                    break
                batch.append(spec)
            if not batch and exhausted:
                break
            self.service.delete_oldest(self.policy.turnover)
            result.gc_reports.append(self.service.run_gc())
            for spec in batch:
                result.ingest_reports.append(
                    self.service.ingest(spec.chunks, source=spec.source)
                )

        # Phase 3: the paper's final round — delete, GC, no new ingest.
        if self.service.live_backup_ids():
            self.service.delete_oldest(self.policy.turnover)
            result.gc_reports.append(self.service.run_gc())

        # Phase 4: restore every retained backup.
        for backup_id in self.service.live_backup_ids():
            result.restore_reports.append(self.service.restore(backup_id))

        stats = self.service.stats()
        result.dedup_ratio = stats.dedup_ratio
        result.physical_bytes = stats.physical_bytes
        result.cumulative_logical_bytes = stats.cumulative_logical_bytes
        result.cumulative_stored_bytes = stats.cumulative_stored_bytes
        result.metrics = rotation_metrics(
            result, stats, runtime=self.service.runtime_metrics()
        )
        return result
