"""Service construction options, folded into one frozen dataclass.

:func:`~repro.backup.approaches.make_service` grew one keyword per
subsystem (tracer, faults, columnar, GC mode and budget, and now the
serve-layer cache knobs); :class:`ServiceOptions` is that surface as a
single immutable value that can be validated once, shared across a fleet
of services, and extended without touching every call-site signature.

The old keywords remain as deprecated shims on ``make_service`` — passing
one emits a :class:`DeprecationWarning` and folds it into the options
value — so external callers keep working while in-repo code migrates.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.faults.plan import FaultPlan
    from repro.gc.incremental import GCBudget
    from repro.obs.tracer import Tracer

#: Valid ``gc_mode`` values: stop-the-world per rotation, or budgeted
#: incremental cycles interleaved with traffic.
GC_MODES = ("stw", "incremental")

#: Valid ``dedup_mode`` values: full inline dedup at ingest, or the
#: hybrid inline/out-of-line mode whose deferred duplicates are coalesced
#: by the GC cycle.
DEDUP_MODES = ("inline", "hybrid")


@dataclass(frozen=True)
class ServiceOptions:
    """Cross-cutting construction options for every approach.

    ``tracer`` attaches a :class:`~repro.obs.tracer.Tracer` to the
    service's simulated disk (default: the null tracer).  ``faults`` arms
    a :class:`~repro.faults.FaultPlan` on the disk.  ``columnar`` selects
    the recipe representation (``None`` defers to the ``REPRO_HOTPATH``
    environment variable).  ``gc_mode``/``gc_budget`` select stop-the-world
    versus budgeted incremental GC.  ``dedup_mode`` selects inline
    deduplication (every chunk probes the fingerprint index at ingest)
    versus the hybrid inline/out-of-line mode (ingest classifies with a
    cheap neighbor/Bloom probe and GC coalesces deferred duplicates; see
    :mod:`repro.dedup.hybrid`).  ``read_cache_containers`` /
    ``read_cache_chunks`` size the serve layer's
    :class:`~repro.serve.cache.TieredReadCache` tiers (``None`` =
    unbounded tier).
    """

    tracer: "Tracer | None" = None
    faults: "FaultPlan | None" = None
    columnar: bool | None = None
    gc_mode: str = "stw"
    gc_budget: "GCBudget | None" = None
    dedup_mode: str = "inline"
    read_cache_containers: int | None = 8
    read_cache_chunks: int | None = 1024

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ConfigError` on invalid knobs."""
        if self.gc_mode not in GC_MODES:
            raise ConfigError(
                f"unknown gc_mode {self.gc_mode!r}; choose one of {GC_MODES}"
            )
        if self.dedup_mode not in DEDUP_MODES:
            raise ConfigError(
                f"unknown dedup_mode {self.dedup_mode!r}; choose one of "
                f"{DEDUP_MODES}"
            )
        for knob in ("read_cache_containers", "read_cache_chunks"):
            value = getattr(self, knob)
            if value is not None and value <= 0:
                raise ConfigError(f"{knob} must be positive or None, got {value!r}")

    def with_overrides(self, **changes) -> "ServiceOptions":
        """A copy with the given fields replaced (validated)."""
        valid = {f.name for f in fields(self)}
        unknown = sorted(set(changes) - valid)
        if unknown:
            raise ConfigError(
                f"unknown ServiceOptions field(s) {unknown}; valid fields: "
                f"{sorted(valid)}"
            )
        options = replace(self, **changes)
        options.validate()
        return options


#: The all-defaults options value (shared; the dataclass is frozen).
DEFAULT_OPTIONS = ServiceOptions()
