"""System facade: backup services, retention, and the evaluation driver."""

from repro.backup.service import BackupService, ServiceStats
from repro.backup.system import DedupBackupService
from repro.backup.options import ServiceOptions
from repro.backup.retention import RetentionPolicy
from repro.backup.approaches import APPROACHES, make_service, service_factory
from repro.backup.driver import RotationDriver, RotationResult

__all__ = [
    "BackupService",
    "ServiceStats",
    "ServiceOptions",
    "DedupBackupService",
    "RetentionPolicy",
    "APPROACHES",
    "make_service",
    "service_factory",
    "RotationDriver",
    "RotationResult",
]
