"""The backup-service interface every approach implements.

The evaluation driver (paper §6.1 protocol) is approach-agnostic: it only
needs ingest / delete / GC / restore plus the :meth:`BackupService.stats`
accounting below.  Container-based approaches (Naïve, Capping, HAR, SMR,
GCCDF, Non-dedup) share :class:`repro.backup.system.DedupBackupService`;
MFDedup has its own engine with a volume-based layout but speaks the same
interface.

Dedup-ratio convention (paper §6.2): *actual deduplication ratio* =
original dataset size / actual space cost — computed over the whole run as
cumulative ingested logical bytes over cumulative chunk bytes ever stored.
This makes Non-dedup exactly 1.0 and charges rewriting policies permanently
for every extra copy, matching Fig. 11's accounting.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Union

from repro.dedup.pipeline import IngestResult
from repro.gc.report import GCReport
from repro.model import Chunk, ChunkRef
from repro.restore.report import RestoreReport

ChunkStream = Iterable[Union[Chunk, ChunkRef]]


@dataclass(frozen=True)
class ServiceStats:
    """A service's whole-run space accounting, in one immutable snapshot.

    Returned by :meth:`BackupService.stats`; the individual properties on
    the service are deprecated shims over this.
    """

    #: Total pre-dedup bytes ingested over the service's lifetime.
    cumulative_logical_bytes: int
    #: Total chunk bytes ever written to backup storage.
    cumulative_stored_bytes: int
    #: Bytes currently occupied on the backup store.
    physical_bytes: int

    @property
    def dedup_ratio(self) -> float:
        """Actual deduplication ratio over the whole run (Fig. 11)."""
        if self.cumulative_stored_bytes == 0:
            return float("inf") if self.cumulative_logical_bytes else 1.0
        return self.cumulative_logical_bytes / self.cumulative_stored_bytes

    def to_dict(self) -> dict:
        """Plain-scalar dict (metrics payloads, JSON-exact)."""
        return {
            "cumulative_logical_bytes": self.cumulative_logical_bytes,
            "cumulative_stored_bytes": self.cumulative_stored_bytes,
            "physical_bytes": self.physical_bytes,
            "dedup_ratio": self.dedup_ratio,
        }


class BackupService(ABC):
    """Common facade over all evaluated approaches."""

    #: Approach name as used in the paper's figures ('naive', 'gccdf', ...).
    name: str = "abstract"

    @abstractmethod
    def ingest(self, stream: ChunkStream, source: str = "") -> IngestResult:
        """Deduplicate and store one backup; returns ingest accounting."""

    @abstractmethod
    def delete_backup(self, backup_id: int) -> None:
        """Logically delete one backup (space returns at the next GC)."""

    @abstractmethod
    def run_gc(self) -> GCReport:
        """Run one garbage collection; returns the round's report."""

    @abstractmethod
    def restore(self, backup_id: int) -> RestoreReport:
        """Restore one backup; returns restore accounting."""

    @abstractmethod
    def live_backup_ids(self) -> list[int]:
        """Ids of live (restorable) backups, oldest first."""

    @abstractmethod
    def stats(self) -> ServiceStats:
        """The service's whole-run space accounting (one snapshot)."""

    def runtime_metrics(self) -> dict[str, int | float]:
        """Hot-path execution counters (index probes, guard skip rates…)
        merged into the run's metrics payload under ``runtime.*``.
        Approaches without such counters return the default empty dict."""
        return {}

    def open_backup(self, backup_id: int):
        """Open a live backup for random-access reads; returns a
        :class:`~repro.serve.reader.BackupReader`.

        All shipped approaches implement this; the default raises for
        third-party services that predate the serving layer."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support read serving"
        )

    # ------------------------------------------------------------------
    # Deprecated accounting shims (use :meth:`stats` instead).
    # ------------------------------------------------------------------

    @property
    def cumulative_logical_bytes(self) -> int:
        """Deprecated: read ``stats().cumulative_logical_bytes``."""
        return self.stats().cumulative_logical_bytes

    @property
    def cumulative_stored_bytes(self) -> int:
        """Deprecated: read ``stats().cumulative_stored_bytes``."""
        return self.stats().cumulative_stored_bytes

    @property
    def physical_bytes(self) -> int:
        """Deprecated: read ``stats().physical_bytes``."""
        return self.stats().physical_bytes

    @property
    def dedup_ratio(self) -> float:
        """Deprecated: read ``stats().dedup_ratio``."""
        return self.stats().dedup_ratio

    def delete_oldest(self, count: int) -> list[int]:
        """Logically delete the ``count`` oldest live backups (§6.1 rotation);
        returns their ids."""
        victims = self.live_backup_ids()[:count]
        for backup_id in victims:
            self.delete_backup(backup_id)
        return victims
