"""The container-based backup service.

Wires together every substrate — simulated disk, container store, fingerprint
index, recipes, ingest pipeline (with a rewriting policy), restore engine and
mark–sweep GC (with a migration strategy) — into the facade the evaluation
driver consumes.  All six container-based configurations of the paper's §6.1
are instances of this class differing only in two plugins:

=============  ===================  =========================
approach       rewriting policy     migration strategy
=============  ===================  =========================
Non-dedup      (dedup disabled)     NaiveMigration
Naïve          none                 NaiveMigration
Capping        CappingRewriting     NaiveMigration
HAR            HARRewriting         NaiveMigration
SMR            SMRRewriting         NaiveMigration
GCCDF          none                 GCCDFMigration
=============  ===================  =========================
"""

from __future__ import annotations

from repro.backup.options import DEDUP_MODES, GC_MODES
from repro.backup.service import BackupService, ChunkStream, ServiceStats
from repro.config import SystemConfig
from repro.dedup.hybrid import HybridState
from repro.dedup.pipeline import IngestPipeline, IngestResult
from repro.dedup.rewriting.base import RewritingPolicy
from repro.errors import BackupAlreadyDeletedError, ConfigError
from repro.gc.engine import MarkSweepGC
from repro.gc.incremental import GCBudget, IncrementalGC
from repro.gc.migration import MigrationStrategy
from repro.gc.report import GCReport
from repro.index.fingerprint_index import FingerprintIndex
from repro.index.recipe import RecipeStore
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.restore.engine import RestoreEngine
from repro.restore.report import RestoreReport
from repro.serve.cache import TieredReadCache
from repro.serve.reader import BackupReader, ContainerReadStrategy
from repro.simio.disk import DiskModel
from repro.storage.store import ContainerStore


class DedupBackupService(BackupService):
    """Container-based deduplicating backup storage."""

    def __init__(
        self,
        config: SystemConfig | None = None,
        rewriting: RewritingPolicy | None = None,
        migration: MigrationStrategy | None = None,
        dedup_enabled: bool = True,
        name: str = "naive",
        tracer: Tracer | None = None,
        columnar: bool = True,
        gc_mode: str = "stw",
        gc_budget: GCBudget | None = None,
        dedup_mode: str = "inline",
        read_cache_containers: int | None = 8,
        read_cache_chunks: int | None = 1024,
    ):
        self.config = config or SystemConfig.scaled()
        self.config.validate()
        if gc_mode not in GC_MODES:
            raise ConfigError(f"unknown gc_mode {gc_mode!r}; choose one of {GC_MODES}")
        if dedup_mode not in DEDUP_MODES:
            raise ConfigError(
                f"unknown dedup_mode {dedup_mode!r}; choose one of {DEDUP_MODES}"
            )
        self.name = name
        # Explicit None test: an empty TraceRecorder is falsy (len == 0).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.disk = DiskModel(self.config.disk, tracer=self.tracer)
        self.store = ContainerStore(self.config.container_size, self.disk)
        # The Bloom negative-lookup guard fronts duplicate-detection probes;
        # it never changes a lookup's result (no false negatives), only
        # skips map accesses for keys that were never inserted.
        self.index = FingerprintIndex(negative_guard=True)
        self.recipes = RecipeStore()
        if columnar:
            # Columnar sweep: sealed containers carry an interned-id
            # manifest over the same id space as the recipes, so GC
            # validity partitioning runs as set algebra.  Legacy services
            # skip the bind and keep manifest-free containers.
            self.store.bind_interner(self.recipes.interner)
        # Hybrid dedup state exists only when the mode can actually take
        # effect: it needs dedup and is bypassed by rewriting policies (the
        # pipeline dispatch falls back to inline for those), so non-dedup
        # services simply never defer.
        self.dedup_mode = dedup_mode
        self.hybrid = (
            HybridState() if dedup_mode == "hybrid" and dedup_enabled else None
        )
        self.pipeline = IngestPipeline(
            store=self.store,
            index=self.index,
            recipes=self.recipes,
            rewriting=rewriting,
            dedup_enabled=dedup_enabled,
            columnar=columnar,
            hybrid=self.hybrid,
        )
        self.restorer = RestoreEngine(
            store=self.store,
            index=self.index,
            recipes=self.recipes,
            disk=self.disk,
            cache_containers=self.config.restore_cache_containers,
        )
        self.gc_mode = gc_mode
        gc_cls = IncrementalGC if gc_mode == "incremental" else MarkSweepGC
        gc_kwargs = {"budget": gc_budget} if gc_mode == "incremental" else {}
        self.gc = gc_cls(
            config=self.config,
            store=self.store,
            index=self.index,
            recipes=self.recipes,
            disk=self.disk,
            migration=migration,
            hybrid=self.hybrid,
            **gc_kwargs,
        )
        self._cumulative_logical = 0
        self._cumulative_stored = 0
        self.ingest_history: list[IngestResult] = []
        # The serve layer's tiered cache, shared by every reader of this
        # service; built lazily so services that never serve reads keep
        # their runtime metrics (and golden outputs) untouched.
        self._read_cache_containers = read_cache_containers
        self._read_cache_chunks = read_cache_chunks
        self._read_cache: TieredReadCache | None = None

    # ------------------------------------------------------------------
    # BackupService interface
    # ------------------------------------------------------------------

    def ingest(self, stream: ChunkStream, source: str = "") -> IngestResult:
        result = self.pipeline.ingest(stream, source=source)
        self._cumulative_logical += result.logical_bytes
        self._cumulative_stored += result.stored_bytes
        self.ingest_history.append(result)
        if self.gc_mode == "incremental":
            # Live-reference barrier: a cycle in flight must never sweep a
            # chunk this new backup just deduplicated against.
            self.gc.note_live_references(
                self.recipes.get(result.backup_id).unique_fingerprints()
            )
        return result

    def delete_backup(self, backup_id: int) -> None:
        self.recipes.mark_deleted(backup_id)

    def run_gc(self) -> GCReport:
        return self.gc.collect()

    def restore(self, backup_id: int) -> RestoreReport:
        return self.restorer.restore(backup_id)

    def restore_bytes(self, backup_id: int) -> tuple[RestoreReport, bytes]:
        """Byte-level restore (requires payload-carrying ingest)."""
        return self.restorer.restore_bytes(backup_id)

    def recover(self):
        """Repair after a :class:`~repro.errors.SimulatedCrash` by rolling
        the store's incomplete journal intents back or forward; returns a
        :class:`~repro.faults.RecoveryReport`."""
        from repro.faults.recovery import recover

        return recover(self.store, self.index, self.recipes, hybrid=self.hybrid)

    @property
    def read_cache(self) -> TieredReadCache:
        """The shared tiered read cache (created on first use)."""
        cache = self._read_cache
        if cache is None:
            cache = self._read_cache = TieredReadCache(
                self.store,
                container_capacity=self._read_cache_containers,
                chunk_capacity=self._read_cache_chunks,
            )
        return cache

    def open_backup(self, backup_id: int) -> BackupReader:
        """Open a live backup for random-access reads."""
        if self.recipes.is_deleted(backup_id):
            raise BackupAlreadyDeletedError(
                f"backup {backup_id} is deleted and cannot be opened"
            )
        recipe = self.recipes.get(backup_id)
        return BackupReader(
            backup_id=backup_id,
            recipe=recipe,
            strategy=ContainerReadStrategy(self.index, self.read_cache),
            disk=self.disk,
            restore=lambda: self.restorer.restore(backup_id),
        )

    def live_backup_ids(self) -> list[int]:
        return self.recipes.live_ids()

    def stats(self) -> ServiceStats:
        return ServiceStats(
            cumulative_logical_bytes=self._cumulative_logical,
            cumulative_stored_bytes=self._cumulative_stored,
            physical_bytes=self.store.stored_bytes,
        )

    def runtime_metrics(self) -> dict[str, int | float]:
        """Hot-path execution counters (index probes, Bloom-guard skip
        rate, interner population) for the run's metrics payload."""
        index = self.index
        metrics: dict[str, int | float] = {
            "index.lookups": index.lookups,
            "index.hits": index.hits,
            "interner.chunks": len(self.recipes.interner),
        }
        if index.guard_enabled:
            metrics["index.guard_probes"] = index.guard_probes
            metrics["index.guard_skips"] = index.guard_skips
            metrics["index.guard_skip_rate"] = index.guard_skip_rate
        if self.hybrid is not None:
            metrics.update(self.hybrid.counters())
        if self._read_cache is not None:
            metrics.update(self._read_cache.counters())
        return metrics

    # ------------------------------------------------------------------
    # Introspection helpers used by examples and tests
    # ------------------------------------------------------------------

    @property
    def gc_history(self) -> list[GCReport]:
        return self.gc.history

    def describe(self) -> str:
        """One-line status summary."""
        return (
            f"{self.name}: {len(self.recipes)} live backups, "
            f"{len(self.store)} containers, dedup ratio {self.dedup_ratio:.2f}"
        )
