"""Whole-system consistency verification.

A deduplicating store with copy-forward GC has several metadata structures
that must stay mutually consistent — the fingerprint index, the container
store, and every live recipe.  :func:`verify_system` walks all of them and
returns a :class:`VerificationReport`; :func:`assert_consistent` raises
:class:`~repro.errors.IntegrityError` with the full finding list otherwise.

Checked invariants:

1. every live recipe entry's storage key resolves through the index;
2. each resolved placement names a live container that actually holds the
   key, with the recorded size;
3. every index entry points into a live container holding its key (no
   dangling placements after GC relocation);
4. containers contain no duplicate storage keys;
5. container ``used_bytes`` equals the sum of its entry sizes;
6. with an exact-VC system, no container holds a key that neither the index
   nor any live recipe knows (garbage the last GC should have reclaimed is
   reported as a *warning*, since it may legitimately await the next GC).

:func:`verify_mfdedup` audits the volume layout the same way (volume size
accounting, intra-volume key uniqueness, lifecycle-range sanity, and every
live recipe restorable from its covering volumes); :func:`verify_service`
dispatches on the service's storage layout.  The fault-injection suite
leans on these: after any injected crash, ``recover → verify`` must come
back with zero errors.

The property-based suite runs this after every generated operation
sequence; operators can call it after any GC as a cheap audit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backup.service import BackupService
from repro.backup.system import DedupBackupService
from repro.errors import IntegrityError, UnknownChunkError, UnknownContainerError


@dataclass
class VerificationReport:
    """Findings from one verification pass."""

    #: Hard inconsistencies: the system is corrupt if any exist.
    errors: list[str] = field(default_factory=list)
    #: Benign observations (e.g. reclaimable garbage awaiting the next GC).
    warnings: list[str] = field(default_factory=list)
    #: Statistics gathered during the walk.
    live_recipes: int = 0
    recipe_entries: int = 0
    index_entries: int = 0
    containers: int = 0
    container_chunks: int = 0

    @property
    def consistent(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        status = "CONSISTENT" if self.consistent else f"{len(self.errors)} ERRORS"
        return (
            f"verification: {status} — {self.live_recipes} recipes / "
            f"{self.recipe_entries} entries, {self.index_entries} index keys, "
            f"{self.containers} containers / {self.container_chunks} chunks, "
            f"{len(self.warnings)} warnings"
        )


def verify_system(service: DedupBackupService) -> VerificationReport:
    """Audit a container-based backup service; never raises."""
    report = VerificationReport()
    index = service.index
    store = service.store
    recipes = service.recipes

    # --- container-side structure (invariants 4, 5) -------------------
    container_keys: dict[bytes, int] = {}
    for container in store.containers():
        report.containers += 1
        seen: set[bytes] = set()
        total = 0
        for entry in container.entries:
            report.container_chunks += 1
            total += entry.size
            if entry.fp in seen:
                report.errors.append(
                    f"container {container.container_id} holds duplicate key "
                    f"{entry.fp.hex()[:12]}…"
                )
            seen.add(entry.fp)
            container_keys[entry.fp] = container.container_id
        if total != container.used_bytes:
            report.errors.append(
                f"container {container.container_id} used_bytes={container.used_bytes} "
                f"but entries sum to {total}"
            )

    # --- index side (invariant 3) -------------------------------------
    for key, placement in index.items():
        report.index_entries += 1
        try:
            container = store.peek(placement.container_id)
        except UnknownContainerError:
            report.errors.append(
                f"index key {key.hex()[:12]}… points at dead container "
                f"{placement.container_id}"
            )
            continue
        if container_keys.get(key) != placement.container_id:
            report.errors.append(
                f"index key {key.hex()[:12]}… claims container "
                f"{placement.container_id}, which does not hold it"
            )

    # --- recipe side (invariants 1, 2) ---------------------------------
    referenced: set[bytes] = set()
    for recipe in recipes.live_recipes():
        report.live_recipes += 1
        for entry in recipe.entries:
            report.recipe_entries += 1
            referenced.add(entry.fp)
            try:
                placement = index.get(entry.fp)
            except UnknownChunkError:
                report.errors.append(
                    f"backup {recipe.backup_id} references key "
                    f"{entry.fp.hex()[:12]}… missing from the index"
                )
                continue
            if placement.size != entry.size:
                report.errors.append(
                    f"backup {recipe.backup_id} key {entry.fp.hex()[:12]}… size "
                    f"{entry.size} != indexed size {placement.size}"
                )
            if container_keys.get(entry.fp) != placement.container_id:
                report.errors.append(
                    f"backup {recipe.backup_id} key {entry.fp.hex()[:12]}… not "
                    f"present in its placement container {placement.container_id}"
                )

    # --- unreferenced residue (invariant 6, warning only) --------------
    # Keys may legitimately linger between a deletion and the next GC, or
    # be retained by a Bloom VC table's false positives.
    unreferenced = set(container_keys) - referenced
    deleted_refs: set[bytes] = set()
    for recipe in recipes.deleted_recipes():
        deleted_refs.update(entry.fp for entry in recipe.entries)
    stray = unreferenced - deleted_refs
    if stray:
        report.warnings.append(
            f"{len(stray)} stored keys referenced by no recipe "
            "(awaiting GC, or Bloom-VC retained)"
        )
    return report


def verify_mfdedup(service) -> VerificationReport:
    """Audit an MFDedup service's volume layout; never raises.

    Reuses :class:`VerificationReport` with volumes standing in for
    containers: ``containers`` counts volumes, ``container_chunks`` their
    chunk refs, ``index_entries`` stays zero (MFDedup keeps no fingerprint
    index — placement *is* the lifecycle range).
    """
    report = VerificationReport()
    volumes = service.volumes
    recipes = service.recipes

    # --- volume-side structure ----------------------------------------
    for volume in volumes:
        report.containers += 1
        if volume.first > volume.last:
            report.errors.append(
                f"volume {volume.first}..{volume.last} has an inverted lifecycle range"
            )
        seen: set[bytes] = set()
        total = 0
        for ref in volume.chunks:
            report.container_chunks += 1
            total += ref.size
            if ref.fp in seen:
                report.errors.append(
                    f"volume {volume.first}..{volume.last} holds duplicate key "
                    f"{ref.fp.hex()[:12]}…"
                )
            seen.add(ref.fp)
        if total != volume.size_bytes:
            report.errors.append(
                f"volume {volume.first}..{volume.last} size_bytes={volume.size_bytes} "
                f"but chunks sum to {total}"
            )

    # --- recipe side: every live backup restorable from its cover ------
    live_ids = recipes.live_ids()
    for recipe in recipes.live_recipes():
        report.live_recipes += 1
        available: dict[bytes, int] = {}
        for volume in volumes.volumes_covering(recipe.backup_id):
            for ref in volume.chunks:
                available[ref.fp] = ref.size
        for entry in recipe.entries:
            report.recipe_entries += 1
            size = available.get(entry.fp)
            if size is None:
                report.errors.append(
                    f"backup {recipe.backup_id} references key "
                    f"{entry.fp.hex()[:12]}… absent from its covering volumes"
                )
            elif size != entry.size:
                report.errors.append(
                    f"backup {recipe.backup_id} key {entry.fp.hex()[:12]}… size "
                    f"{entry.size} != stored size {size}"
                )

    # --- expired residue (warning only) --------------------------------
    if live_ids:
        expired = sum(1 for volume in volumes if volume.last < live_ids[0])
        if expired:
            report.warnings.append(
                f"{expired} volumes wholly older than the oldest live backup "
                "(awaiting the next reorg)"
            )
    return report


def verify_service(service: BackupService) -> VerificationReport:
    """Audit any backup service, dispatching on its storage layout."""
    if hasattr(service, "volumes"):
        return verify_mfdedup(service)
    return verify_system(service)


def assert_consistent(service: BackupService) -> VerificationReport:
    """Run :func:`verify_service`; raise IntegrityError on any hard finding."""
    report = verify_service(service)
    if not report.consistent:
        details = "\n  ".join(report.errors[:20])
        raise IntegrityError(
            f"backup system inconsistent ({len(report.errors)} errors):\n  {details}"
        )
    return report
