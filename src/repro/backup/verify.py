"""Whole-system consistency verification.

A deduplicating store with copy-forward GC has several metadata structures
that must stay mutually consistent — the fingerprint index, the container
store, and every live recipe.  :func:`verify_system` walks all of them and
returns a :class:`VerificationReport`; :func:`assert_consistent` raises
:class:`~repro.errors.IntegrityError` with the full finding list otherwise.

Checked invariants:

1. every live recipe entry's storage key resolves through the index;
2. each resolved placement names a live container that actually holds the
   key, with the recorded size;
3. every index entry points into a live container holding its key (no
   dangling placements after GC relocation);
4. containers contain no duplicate storage keys;
5. container ``used_bytes`` equals the sum of its entry sizes;
6. with an exact-VC system, no container holds a key that neither the index
   nor any live recipe knows (garbage the last GC should have reclaimed is
   reported as a *warning*, since it may legitimately await the next GC).

The property-based suite runs this after every generated operation
sequence; operators can call it after any GC as a cheap audit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backup.system import DedupBackupService
from repro.errors import IntegrityError, UnknownChunkError, UnknownContainerError


@dataclass
class VerificationReport:
    """Findings from one verification pass."""

    #: Hard inconsistencies: the system is corrupt if any exist.
    errors: list[str] = field(default_factory=list)
    #: Benign observations (e.g. reclaimable garbage awaiting the next GC).
    warnings: list[str] = field(default_factory=list)
    #: Statistics gathered during the walk.
    live_recipes: int = 0
    recipe_entries: int = 0
    index_entries: int = 0
    containers: int = 0
    container_chunks: int = 0

    @property
    def consistent(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        status = "CONSISTENT" if self.consistent else f"{len(self.errors)} ERRORS"
        return (
            f"verification: {status} — {self.live_recipes} recipes / "
            f"{self.recipe_entries} entries, {self.index_entries} index keys, "
            f"{self.containers} containers / {self.container_chunks} chunks, "
            f"{len(self.warnings)} warnings"
        )


def verify_system(service: DedupBackupService) -> VerificationReport:
    """Audit a container-based backup service; never raises."""
    report = VerificationReport()
    index = service.index
    store = service.store
    recipes = service.recipes

    # --- container-side structure (invariants 4, 5) -------------------
    container_keys: dict[bytes, int] = {}
    for container in store.containers():
        report.containers += 1
        seen: set[bytes] = set()
        total = 0
        for entry in container.entries:
            report.container_chunks += 1
            total += entry.size
            if entry.fp in seen:
                report.errors.append(
                    f"container {container.container_id} holds duplicate key "
                    f"{entry.fp.hex()[:12]}…"
                )
            seen.add(entry.fp)
            container_keys[entry.fp] = container.container_id
        if total != container.used_bytes:
            report.errors.append(
                f"container {container.container_id} used_bytes={container.used_bytes} "
                f"but entries sum to {total}"
            )

    # --- index side (invariant 3) -------------------------------------
    for key, placement in index.items():
        report.index_entries += 1
        try:
            container = store.peek(placement.container_id)
        except UnknownContainerError:
            report.errors.append(
                f"index key {key.hex()[:12]}… points at dead container "
                f"{placement.container_id}"
            )
            continue
        if container_keys.get(key) != placement.container_id:
            report.errors.append(
                f"index key {key.hex()[:12]}… claims container "
                f"{placement.container_id}, which does not hold it"
            )

    # --- recipe side (invariants 1, 2) ---------------------------------
    referenced: set[bytes] = set()
    for recipe in recipes.live_recipes():
        report.live_recipes += 1
        for entry in recipe.entries:
            report.recipe_entries += 1
            referenced.add(entry.fp)
            try:
                placement = index.get(entry.fp)
            except UnknownChunkError:
                report.errors.append(
                    f"backup {recipe.backup_id} references key "
                    f"{entry.fp.hex()[:12]}… missing from the index"
                )
                continue
            if placement.size != entry.size:
                report.errors.append(
                    f"backup {recipe.backup_id} key {entry.fp.hex()[:12]}… size "
                    f"{entry.size} != indexed size {placement.size}"
                )
            if container_keys.get(entry.fp) != placement.container_id:
                report.errors.append(
                    f"backup {recipe.backup_id} key {entry.fp.hex()[:12]}… not "
                    f"present in its placement container {placement.container_id}"
                )

    # --- unreferenced residue (invariant 6, warning only) --------------
    # Keys may legitimately linger between a deletion and the next GC, or
    # be retained by a Bloom VC table's false positives.
    unreferenced = set(container_keys) - referenced
    deleted_refs: set[bytes] = set()
    for recipe in recipes.deleted_recipes():
        deleted_refs.update(entry.fp for entry in recipe.entries)
    stray = unreferenced - deleted_refs
    if stray:
        report.warnings.append(
            f"{len(stray)} stored keys referenced by no recipe "
            "(awaiting GC, or Bloom-VC retained)"
        )
    return report


def assert_consistent(service: DedupBackupService) -> VerificationReport:
    """Run :func:`verify_system`; raise IntegrityError on any hard finding."""
    report = verify_system(service)
    if not report.consistent:
        details = "\n  ".join(report.errors[:20])
        raise IntegrityError(
            f"backup system inconsistent ({len(report.errors)} errors):\n  {details}"
        )
    return report
