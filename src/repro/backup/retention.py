"""Retention policy: the paper's rotation rule (§6.1).

"The backup storage always retains the 100 most recent backups, deletes the
earliest 20 backups in each round, and then runs GC."  The policy object
answers, given the current live count, whether a turnover round is due and
how many backups to delete.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import RetentionConfig


@dataclass(frozen=True)
class RetentionPolicy:
    """Keep-`retained` / delete-`turnover` rotation."""

    config: RetentionConfig

    @property
    def retained(self) -> int:
        return self.config.retained

    @property
    def turnover(self) -> int:
        return self.config.turnover

    def round_due(self, live_count: int) -> bool:
        """A turnover round triggers once the retained window is full."""
        return live_count >= self.config.retained

    def victims(self, live_ids: list[int]) -> list[int]:
        """The oldest ``turnover`` backups, the round's deletion set."""
        return live_ids[: self.config.turnover]
