"""Factory for the six evaluated approaches (paper §6.1 and artifact §A.2).

==========  =============================================================
name        configuration
==========  =============================================================
nondedup    dedup disabled (every chunk stored), classic GC
naive       full dedup, no rewriting, classic GC
capping     Capping rewriting + classic GC
har         HAR rewriting + classic GC
smr         SMR rewriting + classic GC
gccdf       full dedup, no rewriting, GCCDF-powered GC
mfdedup     MFDedup engine (neighbor dedup, volumes, deletion-only GC)
==========  =============================================================
"""

from __future__ import annotations

import os

from repro.backup.service import BackupService
from repro.backup.system import DedupBackupService
from repro.config import SystemConfig
from repro.core.gccdf import GCCDFMigration
from repro.dedup.rewriting import make_rewriting
from repro.faults.plan import FaultPlan
from repro.gc.migration import NaiveMigration
from repro.mfdedup.engine import MFDedupService
from repro.obs.tracer import Tracer

#: Approaches in the order the paper's figures list them.
APPROACHES = ("nondedup", "naive", "capping", "har", "smr", "mfdedup", "gccdf")


def make_service(
    approach: str,
    config: SystemConfig | None = None,
    seed: int = 0,
    tracer: Tracer | None = None,
    faults: FaultPlan | None = None,
    columnar: bool | None = None,
    gc_mode: str = "stw",
    gc_budget=None,
    **policy_kwargs,
) -> BackupService:
    """Build a backup service for one approach.

    ``policy_kwargs`` are forwarded to the rewriting policy (e.g.
    ``cap=20`` for capping, ``utilization_threshold=0.5`` for HAR).
    ``tracer`` attaches a :class:`~repro.obs.tracer.Tracer` to the
    service's simulated disk; the default is the null tracer (no events,
    unmeasurable overhead).  ``faults`` arms a
    :class:`~repro.faults.FaultPlan` on the service's disk — the run then
    raises :class:`~repro.errors.SimulatedCrash` at the armed point, after
    which ``service.recover()`` repairs the system.  ``columnar`` selects
    the recipe representation (interned id/size columns versus the legacy
    ``ChunkRef`` tuples — outputs are identical; only speed differs);
    ``None`` defers to the ``REPRO_HOTPATH`` environment variable
    (``legacy`` forces the tuple path, anything else the default columns).
    ``gc_mode="incremental"`` swaps the stop-the-world GC for the budgeted
    :class:`~repro.gc.incremental.IncrementalGC` (``gc_budget`` sizes its
    increments); a drained incremental cycle is counter-identical to one
    stop-the-world ``run_gc``.
    """
    config = config or SystemConfig.scaled()
    if columnar is None:
        columnar = os.environ.get("REPRO_HOTPATH", "").lower() != "legacy"
    service = _build_service(
        approach, config, seed, tracer, columnar, gc_mode, gc_budget, **policy_kwargs
    )
    if faults is not None:
        service.disk.faults = faults
    return service


def service_factory(
    approach: str,
    config: SystemConfig | None = None,
    columnar: bool | None = None,
    gc_mode: str = "stw",
    gc_budget=None,
    **policy_kwargs,
):
    """Bind an approach and config once; build instances on demand.

    Returns ``build(seed=0, tracer=None) -> BackupService``.  Multi-service
    hosts (the fleet's shard runner builds one service per shard or per
    tenant) resolve the approach and validate the config a single time, then
    stamp out services that differ only in their seed (GCCDF's migration
    RNG) and attached tracer.
    """
    if approach not in APPROACHES:
        raise ValueError(f"unknown approach {approach!r}; choose from {APPROACHES}")
    config = config or SystemConfig.scaled()
    config.validate()

    def build(seed: int = 0, tracer: Tracer | None = None) -> BackupService:
        return make_service(
            approach,
            config,
            seed=seed,
            tracer=tracer,
            columnar=columnar,
            gc_mode=gc_mode,
            gc_budget=gc_budget,
            **policy_kwargs,
        )

    return build


def _build_service(
    approach: str,
    config: SystemConfig,
    seed: int,
    tracer: Tracer | None,
    columnar: bool,
    gc_mode: str = "stw",
    gc_budget=None,
    **policy_kwargs,
) -> BackupService:
    gc_kwargs = {"gc_mode": gc_mode, "gc_budget": gc_budget}
    if approach == "mfdedup":
        return MFDedupService(
            config=config, tracer=tracer, columnar=columnar, **gc_kwargs
        )
    if approach == "nondedup":
        return DedupBackupService(
            config=config,
            dedup_enabled=False,
            migration=NaiveMigration(),
            name="nondedup",
            tracer=tracer,
            columnar=columnar,
            **gc_kwargs,
        )
    if approach == "gccdf":
        return DedupBackupService(
            config=config,
            migration=GCCDFMigration(seed=seed),
            name="gccdf",
            tracer=tracer,
            columnar=columnar,
            **gc_kwargs,
        )
    if approach in ("naive", "capping", "har", "smr"):
        service = DedupBackupService(
            config=config,
            migration=NaiveMigration(),
            name=approach,
            tracer=tracer,
            columnar=columnar,
            **gc_kwargs,
        )
        if approach != "naive":
            service.pipeline.rewriting = make_rewriting(
                approach, store=service.store, **policy_kwargs
            )
        return service
    raise ValueError(f"unknown approach {approach!r}; choose from {APPROACHES}")
