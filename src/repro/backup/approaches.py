"""Factory for the six evaluated approaches (paper §6.1 and artifact §A.2).

==========  =============================================================
name        configuration
==========  =============================================================
nondedup    dedup disabled (every chunk stored), classic GC
naive       full dedup, no rewriting, classic GC
capping     Capping rewriting + classic GC
har         HAR rewriting + classic GC
smr         SMR rewriting + classic GC
gccdf       full dedup, no rewriting, GCCDF-powered GC
mfdedup     MFDedup engine (neighbor dedup, volumes, deletion-only GC)
==========  =============================================================

Cross-cutting construction knobs travel in one frozen
:class:`~repro.backup.options.ServiceOptions` value; the individual
keywords (``tracer``, ``faults``, ``columnar``, ``gc_mode``,
``gc_budget``) remain as deprecated shims that fold into it.
"""

from __future__ import annotations

import os
import warnings

from repro.backup.options import DEFAULT_OPTIONS, ServiceOptions
from repro.backup.service import BackupService
from repro.backup.system import DedupBackupService
from repro.config import SystemConfig
from repro.core.gccdf import GCCDFMigration
from repro.dedup.rewriting import make_rewriting
from repro.errors import ConfigError
from repro.gc.migration import NaiveMigration
from repro.mfdedup.engine import MFDedupService
from repro.obs.tracer import Tracer

#: Approaches in the order the paper's figures list them.
APPROACHES = ("nondedup", "naive", "capping", "har", "smr", "mfdedup", "gccdf")

#: Valid ``**policy_kwargs`` per approach; approaches without a rewriting
#: policy accept none.
POLICY_KNOBS: dict[str, tuple[str, ...]] = {
    "capping": ("cap", "segment_containers"),
    "har": ("utilization_threshold",),
    "smr": ("utility_threshold", "rewrite_budget", "segment_containers"),
}

#: Sentinel distinguishing "keyword not passed" from an explicit value for
#: the deprecated make_service keywords.
_UNSET = object()


def _validate_policy_kwargs(approach: str, policy_kwargs: dict) -> None:
    """Reject policy kwargs the approach's rewriting policy does not take.

    Mirrors the unknown-preset :class:`~repro.errors.ConfigError`
    treatment: the error names the approach and its valid knobs, instead
    of silently dropping the kwarg (nondedup/naive/gccdf/mfdedup
    historically ignored them — a typo'd ``cap=`` simply vanished).
    """
    if not policy_kwargs:
        return
    valid = POLICY_KNOBS.get(approach, ())
    unknown = sorted(set(policy_kwargs) - set(valid))
    if not unknown:
        return
    if valid:
        raise ConfigError(
            f"unknown policy kwarg(s) {unknown} for approach {approach!r}; "
            f"valid knobs: {sorted(valid)}"
        )
    raise ConfigError(
        f"approach {approach!r} takes no policy kwargs, got {unknown}"
    )


def _fold_deprecated_keywords(options: ServiceOptions, legacy: dict) -> ServiceOptions:
    """Fold deprecated per-keyword options into a ``ServiceOptions`` value."""
    passed = {name: value for name, value in legacy.items() if value is not _UNSET}
    if not passed:
        return options
    warnings.warn(
        f"make_service keyword(s) {sorted(passed)} are deprecated; pass "
        f"options=ServiceOptions(...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return options.with_overrides(**passed)


def make_service(
    approach: str,
    config: SystemConfig | None = None,
    options: ServiceOptions | None = None,
    seed: int = 0,
    *,
    tracer=_UNSET,
    faults=_UNSET,
    columnar=_UNSET,
    gc_mode=_UNSET,
    gc_budget=_UNSET,
    **policy_kwargs,
) -> BackupService:
    """Build a backup service for one approach.

    ``options`` carries every cross-cutting knob (see
    :class:`~repro.backup.options.ServiceOptions`): the attached tracer,
    an armed fault plan, the recipe representation, the GC mode/budget,
    and the serve layer's read-cache capacities.  ``policy_kwargs`` are
    forwarded to the approach's rewriting policy (e.g. ``cap=20`` for
    capping, ``utilization_threshold=0.5`` for HAR); unknown policy
    kwargs raise :class:`~repro.errors.ConfigError` naming the approach
    and its valid knobs.  ``seed`` feeds GCCDF's migration RNG.

    The keywords ``tracer``/``faults``/``columnar``/``gc_mode``/
    ``gc_budget`` are deprecated shims: passing one emits a
    :class:`DeprecationWarning` and overrides the corresponding
    ``options`` field.
    """
    config = config or SystemConfig.scaled()
    options = options if options is not None else DEFAULT_OPTIONS
    options = _fold_deprecated_keywords(
        options,
        {
            "tracer": tracer,
            "faults": faults,
            "columnar": columnar,
            "gc_mode": gc_mode,
            "gc_budget": gc_budget,
        },
    )
    options.validate()
    _validate_policy_kwargs(approach, policy_kwargs)
    resolved_columnar = options.columnar
    if resolved_columnar is None:
        resolved_columnar = os.environ.get("REPRO_HOTPATH", "").lower() != "legacy"
    service = _build_service(
        approach, config, seed, options, resolved_columnar, **policy_kwargs
    )
    if options.faults is not None:
        service.disk.faults = options.faults
    return service


def service_factory(
    approach: str,
    config: SystemConfig | None = None,
    options: ServiceOptions | None = None,
    *,
    columnar=_UNSET,
    gc_mode=_UNSET,
    gc_budget=_UNSET,
    **policy_kwargs,
):
    """Bind an approach, config, and options once; build instances on demand.

    Returns ``build(seed=0, tracer=None) -> BackupService``.  Multi-service
    hosts (the fleet's shard runner builds one service per shard or per
    tenant) resolve the approach and validate the config a single time, then
    stamp out services that differ only in their seed (GCCDF's migration
    RNG) and attached tracer.  The ``columnar``/``gc_mode``/``gc_budget``
    keywords are deprecated shims, exactly as on :func:`make_service`.
    """
    if approach not in APPROACHES:
        raise ValueError(f"unknown approach {approach!r}; choose from {APPROACHES}")
    config = config or SystemConfig.scaled()
    config.validate()
    base = options if options is not None else DEFAULT_OPTIONS
    base = _fold_deprecated_keywords(
        base, {"columnar": columnar, "gc_mode": gc_mode, "gc_budget": gc_budget}
    )
    base.validate()
    _validate_policy_kwargs(approach, policy_kwargs)

    def build(seed: int = 0, tracer: Tracer | None = None) -> BackupService:
        built = base if tracer is None else base.with_overrides(tracer=tracer)
        return make_service(approach, config, built, seed=seed, **policy_kwargs)

    return build


def _build_service(
    approach: str,
    config: SystemConfig,
    seed: int,
    options: ServiceOptions,
    columnar: bool,
    **policy_kwargs,
) -> BackupService:
    tracer = options.tracer
    gc_kwargs = {"gc_mode": options.gc_mode, "gc_budget": options.gc_budget}
    if approach == "mfdedup":
        # MFDedup brings its own neighbor-dedup engine; the hybrid
        # inline/out-of-line split does not apply (dedup_mode is accepted
        # on the options for a uniform CLI surface and ignored here).
        return MFDedupService(
            config=config,
            tracer=tracer,
            columnar=columnar,
            read_cache_chunks=options.read_cache_chunks,
            **gc_kwargs,
        )
    gc_kwargs["dedup_mode"] = options.dedup_mode
    serve_kwargs = {
        "read_cache_containers": options.read_cache_containers,
        "read_cache_chunks": options.read_cache_chunks,
    }
    if approach == "nondedup":
        return DedupBackupService(
            config=config,
            dedup_enabled=False,
            migration=NaiveMigration(),
            name="nondedup",
            tracer=tracer,
            columnar=columnar,
            **gc_kwargs,
            **serve_kwargs,
        )
    if approach == "gccdf":
        return DedupBackupService(
            config=config,
            migration=GCCDFMigration(seed=seed),
            name="gccdf",
            tracer=tracer,
            columnar=columnar,
            **gc_kwargs,
            **serve_kwargs,
        )
    if approach in ("naive", "capping", "har", "smr"):
        service = DedupBackupService(
            config=config,
            migration=NaiveMigration(),
            name=approach,
            tracer=tracer,
            columnar=columnar,
            **gc_kwargs,
            **serve_kwargs,
        )
        if approach != "naive":
            service.pipeline.rewriting = make_rewriting(
                approach, store=service.store, **policy_kwargs
            )
        return service
    raise ValueError(f"unknown approach {approach!r}; choose from {APPROACHES}")
